"""Typed row helpers shared by the storage modules.

Small conversion functions between sqlite rows and core model values, so
the repository and enforcement layers never hand raw tuples around.
"""

from __future__ import annotations

import sqlite3

from ..core.tuples import PrivacyTuple


def connect(path: str) -> sqlite3.Connection:
    """Open a connection with the library's standard pragmas.

    Foreign keys are enforced and rows come back as :class:`sqlite3.Row`
    so columns are addressable by name.
    """
    connection = sqlite3.connect(path)
    connection.row_factory = sqlite3.Row
    connection.execute("PRAGMA foreign_keys = ON")
    return connection


def tuple_from_row(row: sqlite3.Row) -> PrivacyTuple:
    """Build a :class:`PrivacyTuple` from a policy/preference row."""
    return PrivacyTuple(
        purpose=row["purpose"],
        visibility=row["visibility"],
        granularity=row["granularity"],
        retention=row["retention"],
    )


def tuple_params(privacy_tuple: PrivacyTuple) -> tuple[str, int, int, int]:
    """The tuple's four columns in insertion order."""
    return (
        privacy_tuple.purpose,
        privacy_tuple.visibility,
        privacy_tuple.granularity,
        privacy_tuple.retention,
    )

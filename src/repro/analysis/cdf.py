"""The empirical default CDF (Section 10's proposed estimator).

The paper's future-work section proposes constructing "a cumulative
distribution function of the number of defaults as the house expands its
privacy policies", to be estimated from long-term observation.  A widening
sweep *is* that observation performed in silico: each step is an expansion
level, each step's default count the observed response.

:class:`DefaultCDF` wraps the resulting step function with the queries a
house planner needs: how many defaults a given widening causes, the widest
policy staying under a default budget, and monotonicity checks (the CDF
must be non-decreasing — a property test guards it).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass

from .._validation import check_probability
from ..exceptions import ValidationError
from ..simulation.scenario import ExpansionSweep


@dataclass(frozen=True)
class DefaultCDF:
    """Cumulative defaults (absolute and as a fraction) per widening step."""

    steps: tuple[int, ...]
    cumulative_defaults: tuple[int, ...]
    population_size: int

    def __post_init__(self) -> None:
        if len(self.steps) != len(self.cumulative_defaults):
            raise ValidationError("steps and cumulative_defaults must align")
        if any(
            later < earlier
            for earlier, later in zip(
                self.cumulative_defaults, self.cumulative_defaults[1:]
            )
        ):
            raise ValidationError("a default CDF must be non-decreasing")

    def defaults_at(self, step: int) -> int:
        """Cumulative defaults at widening level *step* (step-function)."""
        index = bisect_right(self.steps, step) - 1
        if index < 0:
            return 0
        return self.cumulative_defaults[index]

    def fraction_at(self, step: int) -> float:
        """Cumulative default *fraction* at widening level *step*."""
        if self.population_size == 0:
            return 0.0
        return self.defaults_at(step) / self.population_size

    def widest_step_within(self, budget_fraction: float) -> int:
        """The widest step whose default fraction stays within budget.

        A budget landing exactly on a step's fraction admits that step:
        fractions are computed by float division, so an exact-boundary
        budget (say ``1/3`` against 5 of 15 providers) may differ from
        the stored fraction by one ulp and must not be rejected by a
        strict comparison.

        Returns 0 when even the first widening exceeds the budget (the
        base policy is step 0 and, by Section 9's setup, defaults nobody).
        """
        budget_fraction = check_probability(budget_fraction, "budget_fraction")
        best = 0
        for step, defaults in zip(self.steps, self.cumulative_defaults):
            if self.population_size:
                fraction = defaults / self.population_size
                within = fraction <= budget_fraction or math.isclose(
                    fraction, budget_fraction, rel_tol=1e-9
                )
                if not within:
                    break
            best = step
        return best

    def is_saturated(self) -> bool:
        """True when the last two steps added no further defaults."""
        if len(self.cumulative_defaults) < 2:
            return False
        return self.cumulative_defaults[-1] == self.cumulative_defaults[-2]


def default_cdf_from_sweep(sweep: ExpansionSweep) -> DefaultCDF:
    """Build the CDF from a widening sweep's rows.

    Cumulative counts are anchored to the *baseline* population
    (``rows[0].n_current``), not each row's own ``n_current``: rows built
    over a shrinking population (multi-phase or resumed sweeps) carry
    per-row ``n_current`` values, and differencing within each row would
    yield incremental rather than cumulative defaults.
    """
    if not sweep.rows:
        raise ValidationError("cannot build a CDF from an empty sweep")
    baseline = sweep.rows[0].n_current
    steps = tuple(row.step for row in sweep.rows)
    cumulative = tuple(baseline - row.n_future for row in sweep.rows)
    return DefaultCDF(
        steps=steps,
        cumulative_defaults=cumulative,
        population_size=baseline,
    )

"""Shared fixtures: the paper's worked example and small scenario instances.

Also installs a global per-test timeout (``REPRO_TEST_TIMEOUT`` seconds,
default 120) via ``SIGALRM``, so a hung test — a deadlocked retry loop, a
fault plan that never releases — fails loudly instead of wedging CI.
Implemented locally because the environment has no ``pytest-timeout``.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.datasets import (
    crm_scenario,
    healthcare_scenario,
    paper_example_policy,
    paper_example_population,
    social_network_scenario,
)
from repro.taxonomy import standard_taxonomy

#: Per-test wall-clock budget in seconds (0 disables the alarm).
TEST_TIMEOUT_SECONDS = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))

_ALARMS_USABLE = hasattr(signal, "SIGALRM")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_protocol(item, nextitem):
    if (
        not _ALARMS_USABLE
        or TEST_TIMEOUT_SECONDS <= 0
        or threading.current_thread() is not threading.main_thread()
    ):
        return (yield)

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_SECONDS}s global timeout "
            f"(REPRO_TEST_TIMEOUT)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(TEST_TIMEOUT_SECONDS)
    try:
        return (yield)
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def paper_policy() -> HousePolicy:
    """Section 8's house policy."""
    return paper_example_policy()


@pytest.fixture()
def paper_population() -> Population:
    """Alice, Ted, and Bob."""
    return paper_example_population()


@pytest.fixture()
def paper_engine(paper_policy, paper_population) -> ViolationEngine:
    """The engine evaluating the worked example."""
    return ViolationEngine(paper_policy, paper_population)


@pytest.fixture()
def simple_taxonomy():
    """The canonical taxonomy with two purposes."""
    return standard_taxonomy(["billing", "research"])


@pytest.fixture()
def single_provider_population() -> Population:
    """One provider with one preference, for minimal-case tests."""
    prefs = ProviderPreferences(
        "solo", [("weight", PrivacyTuple("billing", 2, 2, 2))]
    )
    return Population([Provider(preferences=prefs, threshold=10.0)])


@pytest.fixture(scope="session")
def small_healthcare():
    """A small, deterministic healthcare scenario (session-cached)."""
    return healthcare_scenario(60, seed=42)


@pytest.fixture(scope="session")
def small_crm():
    """A small, deterministic CRM scenario (session-cached)."""
    return crm_scenario(60, seed=42)


@pytest.fixture(scope="session")
def small_social():
    """A small, deterministic social-network scenario (session-cached)."""
    return social_network_scenario(60, seed=42)

"""Social-network scenario: a profile-hosting site and its members.

The paper's ref [23] (Wu et al., EDBT 2010 workshops) applied the
taxonomy to social-network privacy policies; the introduction names
"frequently changing privacy policies on social networking sites" as the
canonical frustration the violation model makes auditable.  This scenario
models a site whose baseline policy already exposes some profile fields to
third parties — a *wider* starting point than the clinic's — so it is the
dataset of choice for demonstrating non-zero baseline ``P(W)``.
"""

from __future__ import annotations

from ..core.policy import HousePolicy
from ..simulation.population import (
    PopulationSpec,
    WestinSegment,
    generate_population,
)
from ..taxonomy.builder import Taxonomy, standard_taxonomy
from .scenario import Scenario

#: Attribute -> social sensitivity (location and messages most sensitive).
SOCIAL_ATTRIBUTES: dict[str, float] = {
    "display_name": 1.0,
    "birthday": 2.0,
    "location": 4.0,
    "friend_list": 3.0,
    "private_messages": 5.0,
}

#: Purposes a social site collects for.
SOCIAL_PURPOSES: tuple[str, ...] = ("service", "advertising", "analytics")


def social_network_taxonomy() -> Taxonomy:
    """The canonical taxonomy with the site's purposes."""
    return standard_taxonomy(SOCIAL_PURPOSES)


def social_network_policy(taxonomy: Taxonomy | None = None) -> HousePolicy:
    """The site's baseline policy — already third-party-leaning."""
    taxonomy = taxonomy if taxonomy is not None else social_network_taxonomy()
    entries = []
    for attribute in ("display_name", "birthday", "location", "friend_list"):
        entries.append(
            (
                attribute,
                taxonomy.tuple("service", "all", "specific", "long-term"),
            )
        )
        entries.append(
            (
                attribute,
                taxonomy.tuple(
                    "advertising", "third-party", "partial", "long-term"
                ),
            )
        )
    entries.append(
        (
            "private_messages",
            taxonomy.tuple("service", "house", "specific", "indefinite"),
        )
    )
    entries.append(
        (
            "private_messages",
            taxonomy.tuple("analytics", "house", "partial", "long-term"),
        )
    )
    return HousePolicy(entries, name="social-site-baseline")


def social_network_segments() -> tuple[WestinSegment, ...]:
    """Segments skewed young-and-unconcerned relative to the standard mix."""
    return (
        WestinSegment(
            name="fundamentalist",
            fraction=0.15,
            tightness=0.75,
            value_sensitivity=(2.0, 4.0),
            dimension_sensitivity=(2.0, 5.0),
            threshold=(300.0, 1100.0),
            headroom=(0, 0),
        ),
        WestinSegment(
            name="pragmatist",
            fraction=0.55,
            tightness=0.35,
            value_sensitivity=(1.0, 2.5),
            dimension_sensitivity=(1.0, 3.0),
            threshold=(250.0, 1500.0),
            headroom=(0, 1),
        ),
        WestinSegment(
            name="unconcerned",
            fraction=0.30,
            tightness=0.05,
            value_sensitivity=(0.5, 1.0),
            dimension_sensitivity=(0.5, 1.5),
            threshold=(200.0, 1200.0),
            headroom=(1, 3),
        ),
    )


def social_network_scenario(
    n_providers: int = 400, *, seed: int = 11
) -> Scenario:
    """A full social-network scenario with the skewed segment mix."""
    taxonomy = social_network_taxonomy()
    policy = social_network_policy(taxonomy)
    # Members joined when only the "service" purpose existed; the later
    # advertising/analytics entries are NOT anchored, so the baseline policy
    # already violates part of the membership (a realistic policy drift).
    service_only = HousePolicy(policy.for_purpose("service"), name="service-only")
    spec = PopulationSpec(
        taxonomy=taxonomy,
        attributes=SOCIAL_ATTRIBUTES,
        n_providers=n_providers,
        segments=social_network_segments(),
        seed=seed,
        id_prefix="member-",
        anchor_policy=service_only,
    )
    return Scenario(
        name="social-network",
        taxonomy=taxonomy,
        policy=policy,
        population=generate_population(spec),
        per_provider_utility=2.0,
        extra_utility_per_step=0.5,
    )

"""Property-based round-trips for the taxonomy and population documents."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import Population, PrivacyTuple, Provider, ProviderPreferences
from repro.policy_lang import (
    parse_population,
    parse_taxonomy,
    population_to_dict,
    taxonomy_to_dict,
)
from repro.taxonomy import TaxonomyBuilder

level_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
).filter(lambda s: s.strip("-"))


@st.composite
def ladders(draw):
    n = draw(st.integers(2, 6))
    names = draw(
        st.lists(level_names, min_size=n, max_size=n, unique=True)
    )
    return names


@st.composite
def taxonomies(draw):
    purposes = draw(
        st.lists(level_names, min_size=1, max_size=4, unique=True)
    )
    builder = TaxonomyBuilder().with_purposes(purposes)
    builder.with_visibility(draw(ladders()))
    builder.with_granularity(draw(ladders()))
    if draw(st.booleans()):
        builder.with_retention_unbounded()
    else:
        builder.with_retention(draw(ladders()))
    return builder.build()


class TestTaxonomyDocumentProperties:
    @given(taxonomy=taxonomies())
    @settings(max_examples=100)
    def test_round_trip_is_fixed_point(self, taxonomy):
        document = taxonomy_to_dict(taxonomy)
        again = parse_taxonomy(document)
        assert taxonomy_to_dict(again) == document


@st.composite
def populations(draw, taxonomy):
    purposes = sorted(taxonomy.purposes.purposes)
    from repro.core.dimensions import Dimension

    def max_rank(dim):
        top = taxonomy.domain(dim).max_rank
        return 8 if top is None else top

    n = draw(st.integers(1, 4))
    providers = []
    for index in range(n):
        entries = []
        for _ in range(draw(st.integers(1, 3))):
            entries.append(
                (
                    draw(st.sampled_from(["a1", "a2"])),
                    PrivacyTuple(
                        draw(st.sampled_from(purposes)),
                        draw(st.integers(0, max_rank(Dimension.VISIBILITY))),
                        draw(st.integers(0, max_rank(Dimension.GRANULARITY))),
                        draw(st.integers(0, max_rank(Dimension.RETENTION))),
                    ),
                )
            )
        providers.append(
            Provider(
                preferences=ProviderPreferences(f"u{index}", entries),
                threshold=draw(
                    st.one_of(
                        st.just(float("inf")),
                        st.floats(0, 100, allow_nan=False),
                    )
                ),
                segment=draw(
                    st.one_of(st.none(), st.sampled_from(["s1", "s2"]))
                ),
            )
        )
    return Population(providers, {"a1": draw(st.floats(0, 5, allow_nan=False))})


class TestPopulationDocumentProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_model(self, data):
        taxonomy = data.draw(taxonomies())
        population = data.draw(populations(taxonomy))
        document = population_to_dict(population, taxonomy)
        again = parse_population(document, taxonomy)
        assert again.ids() == population.ids()
        for provider in population:
            restored = again.get(provider.provider_id)
            assert restored.preferences == provider.preferences
            assert restored.threshold == provider.threshold
            assert restored.segment == provider.segment
        assert (
            again.attribute_sensitivities
            == population.attribute_sensitivities
        )

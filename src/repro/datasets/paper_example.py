"""Section 8's worked example: Alice, Ted, and Bob (paper Table 1).

The paper leaves the house's Weight tuple at symbolic values
``<pr, v, g, r>`` and expresses the providers' preferences as offsets from
it.  We pin ``(v, g, r) = (2, 2, 2)`` — the smallest ranks for which every
offset in Table 1 stays non-negative — and keep everything else exactly as
printed:

========= ========================== ================ ===== ===
provider  Weight preference          sigma (s,V,G,R)  v_i   w_i
========= ========================== ================ ===== ===
Alice     ``<pr, v+2, g+1, r+3>``    1, 1, 2, 1       10    0
Ted       ``<pr, v+2, g-1, r+2>``    3, 1, 5, 2       50    1
Bob       ``<pr, v,   g-1, r-1>``    4, 1, 3, 2       100   1
========= ========================== ================ ===== ===

with attribute sensitivity ``Sigma^Weight = 4``.  The paper's Eq. 20-24
results — conflicts 0 / 60 / 80, defaults 0 / 1 / 0, ``P(Default) = 1/3``
— are recorded in :data:`PAPER_EXPECTATIONS` and asserted exactly by the
Table 1 benchmark and the test suite.

The example also involves an ``Age`` attribute whose policy "does not
violate anyone's preferences"; we include it (policy at ranks ``(1,1,1)``,
every preference at ``(2,2,2)``) so the fixture exercises the
multi-attribute code path the paper describes rather than a single-column
shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from ..core.policy import HousePolicy
from ..core.population import Population, Provider
from ..core.preferences import ProviderPreferences
from ..core.sensitivity import DimensionSensitivity
from ..core.tuples import PrivacyTuple
from ..taxonomy.builder import Taxonomy, TaxonomyBuilder
from .scenario import Scenario

#: The purpose shared by every tuple in the example (the paper's ``pr``).
PURPOSE = "pr"

#: The pinned base ranks for the house's Weight tuple ``<pr, v, g, r>``.
BASE_V, BASE_G, BASE_R = 2, 2, 2

#: ``Sigma^Weight = 4`` (Section 8).
WEIGHT_ATTRIBUTE_SENSITIVITY = 4.0


@dataclass(frozen=True, slots=True)
class PaperExampleExpectations:
    """The ground-truth numbers of Section 8 (Eqs. 20-24)."""

    conflicts: Mapping[str, float]
    indicators: Mapping[str, int]
    defaults: Mapping[str, int]
    thresholds: Mapping[str, float]
    violation_probability: float
    default_probability: float
    total_violations: float


PAPER_EXPECTATIONS = PaperExampleExpectations(
    conflicts=MappingProxyType({"Alice": 0.0, "Ted": 60.0, "Bob": 80.0}),
    indicators=MappingProxyType({"Alice": 0, "Ted": 1, "Bob": 1}),
    defaults=MappingProxyType({"Alice": 0, "Ted": 1, "Bob": 0}),
    thresholds=MappingProxyType({"Alice": 10.0, "Ted": 50.0, "Bob": 100.0}),
    violation_probability=2.0 / 3.0,
    default_probability=1.0 / 3.0,
    total_violations=140.0,
)


def paper_example_policy() -> HousePolicy:
    """The house policy: ``HP = {<Weight, pr, v, g, r>, <Age, ...>}``."""
    return HousePolicy(
        [
            (
                "Weight",
                PrivacyTuple(PURPOSE, BASE_V, BASE_G, BASE_R),
            ),
            ("Age", PrivacyTuple(PURPOSE, 1, 1, 1)),
        ],
        name="section-8-example",
    )


def _provider(
    name: str,
    weight_pref: PrivacyTuple,
    weight_sensitivity: tuple[float, float, float, float],
    threshold: float,
) -> Provider:
    """Assemble one Table 1 row as a :class:`Provider`."""
    preferences = ProviderPreferences(
        name,
        [
            ("Weight", weight_pref),
            ("Age", PrivacyTuple(PURPOSE, 2, 2, 2)),
        ],
    )
    return Provider(
        preferences=preferences,
        sensitivity={
            "Weight": DimensionSensitivity.from_sequence(weight_sensitivity),
        },
        threshold=threshold,
    )


def paper_example_population() -> Population:
    """Alice, Ted, and Bob exactly as in Table 1."""
    alice = _provider(
        "Alice",
        PrivacyTuple(PURPOSE, BASE_V + 2, BASE_G + 1, BASE_R + 3),
        (1.0, 1.0, 2.0, 1.0),
        threshold=10.0,
    )
    ted = _provider(
        "Ted",
        PrivacyTuple(PURPOSE, BASE_V + 2, BASE_G - 1, BASE_R + 2),
        (3.0, 1.0, 5.0, 2.0),
        threshold=50.0,
    )
    bob = _provider(
        "Bob",
        PrivacyTuple(PURPOSE, BASE_V, BASE_G - 1, BASE_R - 1),
        (4.0, 1.0, 3.0, 2.0),
        threshold=100.0,
    )
    return Population(
        [alice, ted, bob],
        attribute_sensitivities={
            "Weight": WEIGHT_ATTRIBUTE_SENSITIVITY,
            "Age": 1.0,
        },
    )


def paper_example_taxonomy() -> Taxonomy:
    """A vocabulary wide enough for every rank Table 1 uses.

    The paper works with symbolic ranks, so any ladder covering
    ``BASE + 3`` (the largest offset, Alice's retention) is faithful.
    Seven rungs per dimension leave the same widening runway as the
    domain scenarios.
    """
    levels = [f"level-{rank}" for rank in range(7)]
    return (
        TaxonomyBuilder()
        .with_purposes([PURPOSE])
        .with_visibility(levels)
        .with_granularity(levels)
        .with_retention(levels)
        .build()
    )


def paper_example_scenario() -> Scenario:
    """Section 8 packaged as a :class:`~repro.datasets.scenario.Scenario`.

    Gives the worked example the same shape as the domain scenarios so
    dataset-generic tooling (document export, lint sweeps, benchmarks)
    can treat all five bundles uniformly.
    """
    return Scenario(
        name="paper_example",
        taxonomy=paper_example_taxonomy(),
        policy=paper_example_policy(),
        population=paper_example_population(),
    )

"""Orchestration: raw documents in, :class:`LintReport` out.

:func:`lint_documents` is the linter's one entry point.  It parses the
supplied documents structurally (structural breakage is a hard
:class:`~repro.exceptions.PolicyDocumentError` — there is nothing
meaningful to lint), runs the document-layer rules on the ASTs, attempts
to lower each document onto the core model, and runs the model and
economics layers over whatever lowered successfully.  A document that
fails semantic lowering silently disables the deeper layers that need it;
the document-layer diagnostics explain why.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import PrivacyModelError
from ..policy_lang.ast import PolicyDocument, PreferenceDocument
from ..policy_lang.parser import parse_policy, policy_document
from ..policy_lang.population_doc import parse_population, preference_documents
from ..taxonomy.builder import Taxonomy
from .registry import LintConfig, LintContext, run_rules
from .report import LintReport


def build_context(
    taxonomy: Taxonomy,
    *,
    policy: Mapping | PolicyDocument | None = None,
    population: Mapping | None = None,
    candidate: Mapping | PolicyDocument | None = None,
    config: LintConfig | None = None,
) -> LintContext:
    """Parse/lower the documents into the context the rules consume."""
    policy_doc = _as_policy_doc(policy)
    candidate_doc = _as_policy_doc(candidate)
    preference_docs: tuple[PreferenceDocument, ...] = ()
    attribute_sensitivities: dict[str, float] = {}
    if population is not None:
        preference_docs = preference_documents(population)
        attribute_sensitivities = dict(
            population.get("attribute_sensitivities", {})
        )
    lowered_policy = _lower_policy(policy_doc, taxonomy)
    lowered_candidate = _lower_policy(candidate_doc, taxonomy)
    lowered_population = _lower_population(population, taxonomy)
    return LintContext(
        taxonomy=taxonomy,
        policy_doc=policy_doc,
        preference_docs=preference_docs,
        candidate_doc=candidate_doc,
        policy=lowered_policy,
        population=lowered_population,
        candidate=lowered_candidate,
        attribute_sensitivities=attribute_sensitivities,
        config=config if config is not None else LintConfig(),
    )


def lint_documents(
    taxonomy: Taxonomy,
    *,
    policy: Mapping | PolicyDocument | None = None,
    population: Mapping | None = None,
    candidate: Mapping | PolicyDocument | None = None,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintReport:
    """Run the full rule catalogue over the documents.

    Parameters
    ----------
    taxonomy:
        The deployment vocabulary (already parsed).
    policy, population, candidate:
        Raw document dicts (or pre-parsed policy ASTs).  All optional;
        rules needing an absent document stay silent.
    config:
        Analysis parameters (``alpha``, ``utility``, ``max_extra_utility``).
    select, ignore:
        Restrict the run to these codes / suppress these codes.
    """
    context = build_context(
        taxonomy,
        policy=policy,
        population=population,
        candidate=candidate,
        config=config,
    )
    return LintReport(run_rules(context, select=select, ignore=ignore))


def _as_policy_doc(
    raw: Mapping | PolicyDocument | None,
) -> PolicyDocument | None:
    if raw is None or isinstance(raw, PolicyDocument):
        return raw
    return policy_document(raw)


def _lower_policy(
    document: PolicyDocument | None, taxonomy: Taxonomy
) -> HousePolicy | None:
    if document is None:
        return None
    try:
        return parse_policy(document, taxonomy)
    except PrivacyModelError:
        return None  # the document layer reports the cause


def _lower_population(
    raw: Mapping | None, taxonomy: Taxonomy
) -> Population | None:
    if raw is None:
        return None
    try:
        return parse_population(raw, taxonomy)
    except PrivacyModelError:
        return None  # the document layer reports the cause

"""Row-level CRUD over the privacy schema.

The repository speaks core model objects on one side and SQL on the other.
It owns no connection lifecycle — :class:`~repro.storage.database.PrivacyDatabase`
opens/closes and wraps operations in transactions; the repository receives
the live connection.
"""

from __future__ import annotations

import math
import sqlite3

from ..core.dimensions import Dimension
from ..core.policy import HousePolicy
from ..core.population import Population, Provider
from ..core.preferences import ProviderPreferences
from ..core.sensitivity import DimensionSensitivity
from ..exceptions import (
    StorageError,
    UnknownAttributeError,
    UnknownProviderError,
)
from .queries import tuple_from_row, tuple_params


class Repository:
    """CRUD for providers, data, policies, preferences, and sensitivities."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self._connection = connection

    # -- vocabulary ------------------------------------------------------

    def ensure_attribute(self, name: str, sensitivity: float | None = None) -> None:
        """Register an attribute (idempotent).

        With *sensitivity* given, ``Sigma^a`` is set (insert or update);
        without it, the attribute is created with the neutral weight only
        when missing — an existing weight is never clobbered.
        """
        if sensitivity is None:
            self._connection.execute(
                "INSERT OR IGNORE INTO attributes (name) VALUES (?)", (name,)
            )
        else:
            self._connection.execute(
                """
                INSERT INTO attributes (name, sensitivity) VALUES (?, ?)
                ON CONFLICT(name) DO UPDATE SET sensitivity = excluded.sensitivity
                """,
                (name, float(sensitivity)),
            )

    def ensure_purpose(self, name: str) -> None:
        """Register a purpose (idempotent)."""
        self._connection.execute(
            "INSERT OR IGNORE INTO purposes (name) VALUES (?)", (name,)
        )

    def attributes(self) -> dict[str, float]:
        """All attributes with their ``Sigma^a``."""
        rows = self._connection.execute(
            "SELECT name, sensitivity FROM attributes ORDER BY name"
        )
        return {row["name"]: row["sensitivity"] for row in rows}

    def purposes(self) -> tuple[str, ...]:
        """All registered purposes, sorted."""
        rows = self._connection.execute("SELECT name FROM purposes ORDER BY name")
        return tuple(row["name"] for row in rows)

    # -- providers -------------------------------------------------------

    def add_provider(
        self,
        provider_id: str,
        *,
        segment: str | None = None,
        threshold: float | None = None,
    ) -> None:
        """Insert a provider row; ``threshold=None`` means never defaults."""
        try:
            self._connection.execute(
                "INSERT INTO providers (provider_id, segment, threshold) "
                "VALUES (?, ?, ?)",
                (provider_id, segment, threshold),
            )
        except sqlite3.IntegrityError as error:
            raise StorageError(
                f"provider {provider_id!r} already exists"
            ) from error

    def provider_ids(self) -> tuple[str, ...]:
        """All provider ids, sorted."""
        rows = self._connection.execute(
            "SELECT provider_id FROM providers ORDER BY provider_id"
        )
        return tuple(row["provider_id"] for row in rows)

    def remove_provider(self, provider_id: str) -> None:
        """Delete a provider and (by cascade) their data/preferences.

        This is the storage-level realisation of a default: the provider
        leaves and stops contributing data.
        """
        cursor = self._connection.execute(
            "DELETE FROM providers WHERE provider_id = ?", (provider_id,)
        )
        if cursor.rowcount == 0:
            raise UnknownProviderError(provider_id)

    # -- private data ----------------------------------------------------

    def put_datum(self, provider_id: str, attribute: str, value: object) -> None:
        """Store (or replace) one datum ``t_i^j``."""
        self._require_provider(provider_id)
        self._require_attribute(attribute)
        self._connection.execute(
            """
            INSERT INTO data (provider_id, attribute, value) VALUES (?, ?, ?)
            ON CONFLICT(provider_id, attribute) DO UPDATE SET value = excluded.value
            """,
            (provider_id, attribute, None if value is None else str(value)),
        )

    def get_datum(self, provider_id: str, attribute: str) -> str | None:
        """One stored datum, or ``None`` when absent."""
        row = self._connection.execute(
            "SELECT value FROM data WHERE provider_id = ? AND attribute = ?",
            (provider_id, attribute),
        ).fetchone()
        return None if row is None else row["value"]

    def data_for_attribute(self, attribute: str) -> dict[str, str | None]:
        """All stored values for one attribute, keyed by provider."""
        rows = self._connection.execute(
            "SELECT provider_id, value FROM data WHERE attribute = ? "
            "ORDER BY provider_id",
            (attribute,),
        )
        return {row["provider_id"]: row["value"] for row in rows}

    # -- policy ----------------------------------------------------------

    def replace_policy(self, policy: HousePolicy) -> None:
        """Overwrite the stored house policy with *policy*."""
        self._connection.execute("DELETE FROM policy")
        for entry in policy:
            self._require_attribute(entry.attribute)
            self.ensure_purpose(entry.purpose)
            self._connection.execute(
                "INSERT INTO policy (attribute, purpose, visibility, "
                "granularity, retention) VALUES (?, ?, ?, ?, ?)",
                (entry.attribute, *tuple_params(entry.tuple)),
            )
        self._connection.execute(
            """
            INSERT INTO meta (key, value) VALUES ('policy_name', ?)
            ON CONFLICT(key) DO UPDATE SET value = excluded.value
            """,
            (policy.name,),
        )

    def load_policy(self) -> HousePolicy:
        """The stored house policy (empty policy when none was stored)."""
        name_row = self._connection.execute(
            "SELECT value FROM meta WHERE key = 'policy_name'"
        ).fetchone()
        name = name_row["value"] if name_row is not None else "house-policy"
        rows = self._connection.execute(
            "SELECT attribute, purpose, visibility, granularity, retention "
            "FROM policy ORDER BY id"
        )
        return HousePolicy(
            [(row["attribute"], tuple_from_row(row)) for row in rows],
            name=name,
        )

    # -- preferences -----------------------------------------------------

    def add_preferences(self, preferences: ProviderPreferences) -> None:
        """Store one provider's explicit preference tuples."""
        provider_id = str(preferences.provider_id)
        self._require_provider(provider_id)
        for entry in preferences:
            self._require_attribute(entry.attribute)
            self.ensure_purpose(entry.purpose)
            self._connection.execute(
                "INSERT OR IGNORE INTO preferences (provider_id, attribute, "
                "purpose, visibility, granularity, retention) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (provider_id, entry.attribute, *tuple_params(entry.tuple)),
            )

    def load_preferences(self, provider_id: str) -> ProviderPreferences:
        """One provider's stored preferences.

        ``attributes_provided`` is the union of attributes with stored data
        and attributes with stored preferences, matching the model's "the
        implicit rule applies to supplied attributes" semantics.
        """
        self._require_provider(provider_id)
        rows = self._connection.execute(
            "SELECT attribute, purpose, visibility, granularity, retention "
            "FROM preferences WHERE provider_id = ? ORDER BY id",
            (provider_id,),
        ).fetchall()
        data_rows = self._connection.execute(
            "SELECT attribute FROM data WHERE provider_id = ?", (provider_id,)
        ).fetchall()
        provided = {row["attribute"] for row in rows} | {
            row["attribute"] for row in data_rows
        }
        return ProviderPreferences(
            provider_id,
            [(row["attribute"], tuple_from_row(row)) for row in rows],
            attributes_provided=provided,
        )

    # -- sensitivities ---------------------------------------------------

    def put_sensitivity(
        self, provider_id: str, attribute: str, record: DimensionSensitivity
    ) -> None:
        """Store (or replace) one per-datum sensitivity record."""
        self._require_provider(provider_id)
        self._require_attribute(attribute)
        self._connection.execute(
            """
            INSERT INTO sensitivities (provider_id, attribute, value,
                visibility, granularity, retention)
            VALUES (?, ?, ?, ?, ?, ?)
            ON CONFLICT(provider_id, attribute) DO UPDATE SET
                value = excluded.value,
                visibility = excluded.visibility,
                granularity = excluded.granularity,
                retention = excluded.retention
            """,
            (
                provider_id,
                attribute,
                record.value,
                record.dimension_weight(Dimension.VISIBILITY),
                record.dimension_weight(Dimension.GRANULARITY),
                record.dimension_weight(Dimension.RETENTION),
            ),
        )

    def load_sensitivities(
        self, provider_id: str
    ) -> dict[str, DimensionSensitivity]:
        """One provider's stored sensitivity records, keyed by attribute."""
        rows = self._connection.execute(
            "SELECT attribute, value, visibility, granularity, retention "
            "FROM sensitivities WHERE provider_id = ? ORDER BY attribute",
            (provider_id,),
        )
        return {
            row["attribute"]: DimensionSensitivity(
                value=row["value"],
                visibility=row["visibility"],
                granularity=row["granularity"],
                retention=row["retention"],
            )
            for row in rows
        }

    # -- population assembly ---------------------------------------------

    def store_population(self, population: Population) -> None:
        """Store a whole population: providers, preferences, sensitivities."""
        for attribute, weight in population.attribute_sensitivities.as_dict().items():
            self.ensure_attribute(attribute, weight)
        for provider in population:
            threshold = (
                None if math.isinf(provider.threshold) else provider.threshold
            )
            self.add_provider(
                str(provider.provider_id),
                segment=provider.segment,
                threshold=threshold,
            )
            for attribute in provider.preferences.attributes_provided:
                self.ensure_attribute(attribute)
            self.add_preferences(provider.preferences)
            for attribute, record in provider.sensitivity.items():
                self.put_sensitivity(str(provider.provider_id), attribute, record)

    def load_population(self) -> Population:
        """Reassemble the stored population as a core :class:`Population`."""
        rows = self._connection.execute(
            "SELECT provider_id, segment, threshold FROM providers "
            "ORDER BY provider_id"
        ).fetchall()
        providers = []
        for row in rows:
            provider_id = row["provider_id"]
            threshold = (
                math.inf if row["threshold"] is None else row["threshold"]
            )
            providers.append(
                Provider(
                    preferences=self.load_preferences(provider_id),
                    sensitivity=self.load_sensitivities(provider_id),
                    threshold=threshold,
                    segment=row["segment"],
                )
            )
        return Population(providers, attribute_sensitivities=self.attributes())

    # -- internals --------------------------------------------------------

    def _require_provider(self, provider_id: str) -> None:
        row = self._connection.execute(
            "SELECT 1 FROM providers WHERE provider_id = ?", (provider_id,)
        ).fetchone()
        if row is None:
            raise UnknownProviderError(provider_id)

    def _require_attribute(self, attribute: str) -> None:
        row = self._connection.execute(
            "SELECT 1 FROM attributes WHERE name = ?", (attribute,)
        ).fetchone()
        if row is None:
            raise UnknownAttributeError(attribute)

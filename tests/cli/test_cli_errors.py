"""The CLI's operational-error contract: exit 2, one coded line, no traceback.

Every subcommand, fed a missing file, malformed JSON, a structurally
wrong document, a corrupt database, or a bad journal, must exit with
code 2 and print exactly one ``error[PVL9xx]: ...`` line on stderr.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

from .test_cli import POLICY, POPULATION, TAXONOMY


@pytest.fixture()
def documents(tmp_path):
    paths = {}
    for name, payload in (
        ("taxonomy", TAXONOMY),
        ("policy", POLICY),
        ("population", POPULATION),
    ):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(payload))
        paths[name] = str(path)
    return paths


def _one_coded_line(capsys, code):
    captured = capsys.readouterr()
    lines = captured.err.strip().splitlines()
    assert len(lines) == 1, f"expected one stderr line, got: {captured.err!r}"
    assert lines[0].startswith(f"error[{code}]: ")
    assert "Traceback" not in captured.err
    return lines[0]


MISSING = "/nonexistent/never.json"

SUBCOMMAND_ARGS = {
    "evaluate": lambda d: [
        "evaluate", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
        "--population", d["population"],
    ],
    "certify": lambda d: [
        "certify", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
        "--population", d["population"], "--alpha", "0.5",
    ],
    "sweep": lambda d: [
        "sweep", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
        "--population", d["population"], "--steps", "2",
    ],
    "whatif": lambda d: [
        "whatif", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
        "--population", d["population"], "--candidate", d["policy"],
    ],
    "forecast": lambda d: [
        "forecast", "--taxonomy", d["taxonomy"],
        "--population", d["population"], "--history", d["policy"],
        "--candidate", d["policy"],
    ],
    "validate": lambda d: [
        "validate", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
    ],
    "lint": lambda d: [
        "lint", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
    ],
    "init-db": lambda d: [
        "init-db", "--taxonomy", d["taxonomy"], "--policy", d["policy"],
        "--population", d["population"], "--database", d["database"],
    ],
}


class TestMissingFiles:
    @pytest.mark.parametrize("command", sorted(SUBCOMMAND_ARGS))
    def test_missing_taxonomy_is_coded_io_error(
        self, command, documents, tmp_path, capsys
    ):
        documents["taxonomy"] = MISSING
        documents["database"] = str(tmp_path / "db.sqlite")
        assert main(SUBCOMMAND_ARGS[command](documents)) == 2
        _one_coded_line(capsys, "PVL901")

    def test_db_report_missing_database(self, capsys):
        assert main(["db-report", MISSING]) == 2
        # PrivacyDatabase.open on a missing path: sqlite cannot create it
        # read-only... it creates an empty db -> schema error is PVL904,
        # unless the directory is missing -> unable to open (also 904/901).
        captured = capsys.readouterr()
        assert captured.err.startswith("error[PVL9")


class TestMalformedJson:
    @pytest.mark.parametrize("command", sorted(SUBCOMMAND_ARGS))
    def test_invalid_json_is_coded(self, command, documents, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{definitely not json")
        documents["taxonomy"] = str(bad)
        documents["database"] = str(tmp_path / "db.sqlite")
        assert main(SUBCOMMAND_ARGS[command](documents)) == 2
        _one_coded_line(capsys, "PVL902")


class TestMalformedDocuments:
    def test_wrong_shape_population(self, documents, tmp_path, capsys):
        args = SUBCOMMAND_ARGS["evaluate"](documents)
        bad = str(tmp_path / "badpop.json")
        with open(bad, "w", encoding="utf-8") as handle:
            json.dump({"providers": 42}, handle)
        args[args.index(documents["population"])] = bad
        assert main(args) == 2
        line = _one_coded_line(capsys, "PVL903")
        assert "population" in line

    def test_policy_missing_rules(self, documents, tmp_path, capsys):
        bad = str(tmp_path / "badpol.json")
        with open(bad, "w", encoding="utf-8") as handle:
            json.dump({"name": "x"}, handle)
        args = SUBCOMMAND_ARGS["certify"](documents)
        args[args.index(documents["policy"])] = bad
        assert main(args) == 2
        _one_coded_line(capsys, "PVL903")

    def test_document_wrong_top_level_type(self, documents, tmp_path, capsys):
        bad = str(tmp_path / "badtax.json")
        with open(bad, "w", encoding="utf-8") as handle:
            json.dump(["not", "an", "object"], handle)
        args = SUBCOMMAND_ARGS["evaluate"](documents)
        args[args.index(documents["taxonomy"])] = bad
        assert main(args) == 2
        _one_coded_line(capsys, "PVL903")


class TestStorageErrors:
    def test_garbage_database_is_coded_storage_error(self, tmp_path, capsys):
        path = str(tmp_path / "garbage.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"x" * 4096)
        assert main(["db-report", path]) == 2
        _one_coded_line(capsys, "PVL904")


class TestJournalErrors:
    def test_journal_subcommand_missing_path(self, capsys, tmp_path):
        assert main(["journal", str(tmp_path / "absent.journal")]) == 2
        _one_coded_line(capsys, "PVL905")

    def test_journal_subcommand_garbage_file(self, capsys, tmp_path):
        path = tmp_path / "garbage.journal"
        path.write_bytes(b"not a journal")
        assert main(["journal", str(path)]) == 2
        _one_coded_line(capsys, "PVL905")

    def test_sweep_existing_journal_without_resume(
        self, documents, tmp_path, capsys
    ):
        journal = str(tmp_path / "run.journal")
        args = SUBCOMMAND_ARGS["sweep"](documents) + ["--journal", journal]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        line = _one_coded_line(capsys, "PVL905")
        assert "--resume" in line

    def test_sweep_resume_without_journal_flag(self, documents, capsys):
        args = SUBCOMMAND_ARGS["sweep"](documents) + ["--resume"]
        assert main(args) == 2
        _one_coded_line(capsys, "PVL905")

    def test_sweep_resume_missing_journal(self, documents, tmp_path, capsys):
        args = SUBCOMMAND_ARGS["sweep"](documents) + [
            "--journal", str(tmp_path / "absent.journal"), "--resume",
        ]
        assert main(args) == 2
        _one_coded_line(capsys, "PVL905")


class TestResumeRoundTrip:
    def test_sweep_journal_then_resume_gives_identical_output(
        self, documents, tmp_path, capsys
    ):
        plain = SUBCOMMAND_ARGS["sweep"](documents) + ["--json"]
        assert main(plain) == 0
        expected = capsys.readouterr().out

        journal = str(tmp_path / "run.journal")
        journaled = plain + ["--journal", journal]
        assert main(journaled) == 0
        assert capsys.readouterr().out == expected

        resumed = journaled + ["--resume"]
        assert main(resumed) == 0
        assert capsys.readouterr().out == expected

    def test_journal_subcommand_reports_progress(
        self, documents, tmp_path, capsys
    ):
        journal = str(tmp_path / "run.journal")
        assert (
            main(SUBCOMMAND_ARGS["sweep"](documents) + ["--journal", journal])
            == 0
        )
        capsys.readouterr()
        assert main(["journal", journal, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "sweep"
        assert payload["steps"] == 3  # --steps 2 -> levels 0..2
        assert payload["verified"] is True


class TestAtomicOutput:
    def test_output_written_atomically(self, documents, tmp_path, capsys):
        out = str(tmp_path / "ledger.json")
        args = SUBCOMMAND_ARGS["sweep"](documents) + ["--output", out]
        assert main(args) == 0
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert [row["step"] for row in payload] == [0, 1, 2]

    def test_evaluate_output_matches_json_mode(self, documents, tmp_path, capsys):
        out = str(tmp_path / "report.json")
        args = SUBCOMMAND_ARGS["evaluate"](documents)
        assert main(args + ["--json", "--output", out]) == 0
        printed = json.loads(capsys.readouterr().out)
        with open(out, encoding="utf-8") as handle:
            assert json.load(handle) == printed

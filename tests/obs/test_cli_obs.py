"""End-to-end observability through the CLI.

Drives ``main(argv)`` with the Section 8 documents, the global
``--metrics``/``--trace``/``-v`` flags, injected faults, and the
``repro obs`` renderer over the written snapshot.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import active_observer
from repro.resilience import FaultPlan, FaultSpec

from tests.cli.test_cli import POLICY, POPULATION, TAXONOMY, _base_args


@pytest.fixture()
def documents(tmp_path):
    paths = {}
    for name, payload in (
        ("taxonomy", TAXONOMY),
        ("policy", POLICY),
        ("population", POPULATION),
    ):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(payload))
        paths[name] = str(path)
    return paths


def _counters(snapshot: dict) -> dict[str, float]:
    totals: dict[str, float] = {}
    for entry in snapshot["counters"]:
        totals[entry["name"]] = totals.get(entry["name"], 0.0) + entry["value"]
    return totals


class TestMetricsFlag:
    def test_sweep_writes_a_snapshot(self, documents, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "sweep",
                *_base_args(documents),
                "--steps",
                "2",
                "--json",
                "--metrics",
                str(metrics),
            ]
        )
        assert code == 0
        snapshot = json.loads(metrics.read_text())
        counters = _counters(snapshot)
        assert counters["sweep.steps"] == 3.0
        assert counters["perf.compilations"] == 1.0
        assert counters["widening.applications"] >= 2.0
        timer_names = {entry["name"] for entry in snapshot["timers"]}
        assert "sweep.step_seconds" in timer_names
        assert "engine.batch.evaluate_seconds" in timer_names
        assert [root["name"] for root in snapshot["spans"]] == ["sweep.run"]

    def test_snapshot_is_key_sorted_and_stable(self, documents, tmp_path, capsys):
        paths = [tmp_path / "m1.json", tmp_path / "m2.json"]
        for path in paths:
            main(
                [
                    "evaluate",
                    *_base_args(documents),
                    "--json",
                    "--metrics",
                    str(path),
                ]
            )
            capsys.readouterr()
        first = json.loads(paths[0].read_text())
        second = json.loads(paths[1].read_text())
        assert [c["name"] for c in first["counters"]] == [
            c["name"] for c in second["counters"]
        ]
        assert first["counters"] == second["counters"]

    def test_observer_disabled_after_command(self, documents, tmp_path, capsys):
        main(
            [
                "evaluate",
                *_base_args(documents),
                "--json",
                "--metrics",
                str(tmp_path / "m.json"),
            ]
        )
        assert active_observer() is None

    def test_no_flags_means_no_observer(self, documents, capsys):
        assert main(["evaluate", *_base_args(documents), "--json"]) == 0
        assert active_observer() is None


class TestFaultCountersEndToEnd:
    def test_injected_faults_surface_in_the_snapshot(
        self, documents, tmp_path, capsys
    ):
        """A chaos sweep's full story lands in one snapshot.

        The nan fault poisons the batch severities (PVL302), degrading
        the guarded engine to the reference oracle; the locked fault
        forces one connect-time retry.  Engine, storage-retry, guardrail,
        fault, journal, and resume counters must all be present.
        """
        metrics = tmp_path / "metrics.json"
        journal = tmp_path / "run.journal"
        plan = FaultPlan(
            [
                FaultSpec(site="engine.violations", kind="nan", at=0),
                FaultSpec(site="db.connect", kind="locked", at=0),
            ]
        )
        with plan.activate():
            code = main(
                [
                    "sweep",
                    *_base_args(documents),
                    "--steps",
                    "2",
                    "--json",
                    "--journal",
                    str(journal),
                    "--guarded",
                    "--metrics",
                    str(metrics),
                ]
            )
        assert code == 0
        assert plan.fired  # both faults actually fired
        counters = _counters(json.loads(metrics.read_text()))
        # fault layer
        assert counters["faults.fired"] == 2.0
        # storage layer: the locked connect was retried
        assert counters["storage.locked_retries"] >= 1.0
        assert counters["storage.connections"] >= 1.0
        # guardrail: the poisoned report degraded the run
        assert counters["guardrail.checks"] >= 1.0
        assert counters["guardrail.failures"] == 1.0
        assert counters["guardrail.degradations"] == 1.0
        assert counters["guardrail.reference_evaluations"] >= 1.0
        # degraded evaluations run the reference engine
        assert counters["engine.reference.evaluations"] >= 1.0
        # journal + resume layers recorded the live steps
        assert counters["journal.steps_recorded"] == 3.0
        assert counters["resume.live_steps"] == 3.0

    def test_fault_labels_recorded(self, documents, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        journal = tmp_path / "run.journal"
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="nan", at=0)]
        )
        with plan.activate():
            main(
                [
                    "sweep",
                    *_base_args(documents),
                    "--steps",
                    "1",
                    "--json",
                    "--journal",
                    str(journal),
                    "--guarded",
                    "--metrics",
                    str(metrics),
                ]
            )
        snapshot = json.loads(metrics.read_text())
        [fired] = [
            entry
            for entry in snapshot["counters"]
            if entry["name"] == "faults.fired"
        ]
        assert fired["labels"] == {
            "site": "engine.violations",
            "kind": "nan",
        }


class TestTraceAndVerbose:
    def test_trace_prints_span_tree(self, documents, capsys):
        code = main(
            ["sweep", *_base_args(documents), "--steps", "1", "--json", "--trace"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "sweep.run" in err

    def test_trace_without_spans_says_so(self, documents, capsys):
        code = main(["validate", "--taxonomy", documents["taxonomy"], "--trace"])
        assert code == 0
        assert "no spans recorded" in capsys.readouterr().err


class TestObsSubcommand:
    def _snapshot(self, documents, tmp_path, capsys) -> str:
        metrics = tmp_path / "metrics.json"
        main(
            [
                "sweep",
                *_base_args(documents),
                "--steps",
                "1",
                "--json",
                "--metrics",
                str(metrics),
            ]
        )
        capsys.readouterr()
        return str(metrics)

    def test_text_render(self, documents, tmp_path, capsys):
        path = self._snapshot(documents, tmp_path, capsys)
        assert main(["obs", path]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot:" in out
        assert "sweep.steps" in out

    def test_prometheus_render(self, documents, tmp_path, capsys):
        path = self._snapshot(documents, tmp_path, capsys)
        assert main(["obs", path, "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_sweep_steps_total counter" in out

    def test_json_render_round_trips(self, documents, tmp_path, capsys):
        path = self._snapshot(documents, tmp_path, capsys)
        assert main(["obs", path, "--format", "json"]) == 0
        rendered = json.loads(capsys.readouterr().out)
        assert rendered == json.loads(open(path).read())

    def test_non_snapshot_document_rejected(self, documents, capsys):
        code = main(["obs", documents["policy"]])
        assert code == 2
        assert "error[PVL9" in capsys.readouterr().err

    def test_missing_file_is_coded_io_error(self, tmp_path, capsys):
        code = main(["obs", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error[PVL9" in capsys.readouterr().err


class TestOutputByteStability:
    """``--output`` exports must be byte-for-byte stable across runs."""

    @pytest.mark.parametrize(
        "command, extra",
        [
            ("evaluate", []),
            ("sweep", ["--steps", "2"]),
            ("certify", ["--alpha", "0.7"]),
        ],
    )
    def test_two_runs_identical(
        self, documents, tmp_path, capsys, command, extra
    ):
        outputs = [tmp_path / "first.json", tmp_path / "second.json"]
        for path in outputs:
            code = main(
                [command, *_base_args(documents), *extra, "--output", str(path)]
            )
            assert code in (0, 1)
            capsys.readouterr()
        assert outputs[0].read_bytes() == outputs[1].read_bytes()

    def test_output_keys_sorted(self, documents, tmp_path, capsys):
        path = tmp_path / "report.json"
        main(["evaluate", *_base_args(documents), "--output", str(path)])
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert list(payload) == sorted(payload)

"""Regression: multi-round churn workloads compile exactly once.

The bug this pins down: ``run_dynamics`` (and ``play_widening_game``)
used to rebuild the whole engine — full recompile, and under
``workers=N`` a pool re-fork plus shared-memory re-export — on every
round with departures.  The incremental engine tombstones departures in
place, so the acceptance scenario (2000 providers, 40 rounds of real
churn) performs **exactly one** full compilation, asserted through the
``perf.compilations`` counter, while remaining bit-for-bit identical to
the rebuild path under ``workers`` of 1 and 4.
"""

from __future__ import annotations

import pytest

from repro.core.dimensions import Dimension
from repro.obs import observed
from repro.perf import make_batch_engine
from repro.simulation import run_dynamics
from repro.simulation.dynamics import build_round_outcome, round_policy
from repro.simulation.widening import WideningStep

N_PROVIDERS = 2000
ROUNDS = 40
# Widening visibility only keeps total churn well under the 50%
# compaction threshold (~23% of the population departs over the run),
# so every round's departures stay pure tombstones.
STEP = WideningStep.along(Dimension.VISIBILITY, 1)


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import healthcare_scenario

    return healthcare_scenario(N_PROVIDERS, seed=9)


def _rebuild_path_dynamics(scenario, *, workers: int = 1):
    """The pre-incremental behaviour: recompile after every departure.

    Uses ``mutable=False`` engines and rebuilds on each round with
    defaults — the loop :func:`run_dynamics` ran before the incremental
    engine existed.  This is the oracle the incremental path must match
    bit for bit.
    """
    outcomes = []
    current_population = scenario.population
    current_policy = round_policy(
        scenario.policy, scenario.policy.name, STEP, scenario.taxonomy, 0
    )
    engine = make_batch_engine(
        current_population, workers=workers, mutable=False
    )
    try:
        for round_index in range(ROUNDS):
            if len(current_population) == 0:
                break
            if round_index > 0:
                current_policy = round_policy(
                    current_policy,
                    scenario.policy.name,
                    STEP,
                    scenario.taxonomy,
                    round_index,
                )
            report = engine.evaluate(current_policy)
            outcome = build_round_outcome(
                report,
                round_index=round_index,
                per_provider_utility=1.0,
                extra_utility_per_round=0.25,
            )
            outcomes.append(outcome)
            if outcome.defaulted_providers:
                current_population = current_population.without(
                    outcome.defaulted_providers
                )
                engine.close()
                engine = make_batch_engine(
                    current_population, workers=workers, mutable=False
                )
    finally:
        engine.close()
    return outcomes


@pytest.fixture(scope="module")
def rebuild_outcomes(scenario):
    return _rebuild_path_dynamics(scenario)


def _counters(snapshot):
    return {c["name"]: c["value"] for c in snapshot["counters"]}


def test_churn_scenario_actually_churns(rebuild_outcomes):
    """Guard the fixture: a no-default scenario would make the
    exactly-one-compile assertion vacuous."""
    departed = sum(o.n_defaulted for o in rebuild_outcomes)
    rounds_with_departures = sum(
        1 for o in rebuild_outcomes if o.n_defaulted
    )
    assert len(rebuild_outcomes) == ROUNDS
    assert departed >= N_PROVIDERS // 10
    assert rounds_with_departures >= 3
    # ... but below the compaction threshold, so tombstones suffice.
    assert departed < N_PROVIDERS // 2


def test_run_dynamics_compiles_exactly_once(scenario, rebuild_outcomes):
    with observed() as obs:
        outcomes = run_dynamics(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            rounds=ROUNDS,
            step=STEP,
        )
        counters = _counters(obs.snapshot())
    assert counters["perf.compilations"] == 1.0
    assert counters.get("delta.compactions", 0.0) == 0.0
    assert counters["delta.removals"] == float(
        sum(o.n_defaulted for o in rebuild_outcomes)
    )
    assert counters["delta.reused"] > 0.0
    assert outcomes == rebuild_outcomes


def test_incremental_matches_rebuild_workers_4(scenario, rebuild_outcomes):
    with observed() as obs:
        outcomes = run_dynamics(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            rounds=ROUNDS,
            step=STEP,
            workers=4,
        )
        counters = _counters(obs.snapshot())
    assert counters["perf.compilations"] == 1.0
    assert outcomes == rebuild_outcomes


def test_widening_game_compiles_exactly_once(scenario):
    from repro.game import FixedWidening, play_widening_game

    strategy = FixedWidening(STEP, 8)
    with observed() as obs:
        trace = play_widening_game(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            strategy,
        )
        counters = _counters(obs.snapshot())
    assert counters["perf.compilations"] == 1.0
    assert any(r.n_defaulted for r in trace.rounds)

"""The purpose-aware access gate.

Every read of stored private data is phrased as an :class:`AccessRequest`:
*which attribute*, *for which purpose*, and at what visibility /
granularity / retention the caller intends to use the result.  The gate
compares the request against the stored preferences of every provider
whose datum would be touched — the same ``diff``/``comp`` arithmetic as
the offline model — and produces an :class:`AccessDecision`.

Two modes, matching the paper's framing that quantification and
transparency matter even when blocking is impossible:

* ``EnforcementMode.ENFORCE`` — violating requests raise
  :class:`~repro.exceptions.AccessDeniedError` and nothing is returned;
* ``EnforcementMode.AUDIT`` — violating requests succeed but the
  violation (with its full findings) is written to the audit log, making
  the house's practice-vs-policy gap measurable after the fact.

Either way every decision is logged, so ``P(W)`` over *actual accesses*
can be estimated from the log alone.
"""

from __future__ import annotations

import enum
import json
import sqlite3
from dataclasses import dataclass
from typing import Hashable

from collections.abc import Mapping

from ..core.dimensions import Dimension
from ..core.tuples import PrivacyTuple
from ..core.violation import exceeded_dimensions
from ..exceptions import AccessDeniedError, ValidationError
from .granularity import ValueDegrader
from .queries import tuple_from_row
from .repository import Repository


class EnforcementMode(enum.Enum):
    """What the gate does when a request violates preferences."""

    ENFORCE = "enforce"
    AUDIT = "audit"


@dataclass(frozen=True, slots=True)
class AccessRequest:
    """One intended use of stored data.

    ``provider_id=None`` means "all providers' data for this attribute"
    (the common analytical query); a concrete id scopes the request to one
    provider's datum.
    """

    attribute: str
    tuple: PrivacyTuple
    provider_id: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.tuple, PrivacyTuple):
            raise ValidationError(
                f"request tuple must be a PrivacyTuple, got "
                f"{type(self.tuple).__name__}"
            )

    @property
    def purpose(self) -> str:
        """The purpose the data would be used for."""
        return self.tuple.purpose


@dataclass(frozen=True, slots=True)
class RequestFinding:
    """One provider/dimension exceedance caused by an access request."""

    provider_id: Hashable
    dimension: Dimension
    preference_value: int
    requested_value: int

    @property
    def amount(self) -> int:
        """The rank exceedance."""
        return self.requested_value - self.preference_value


@dataclass(frozen=True, slots=True)
class AccessDecision:
    """The gate's verdict on one request."""

    request: AccessRequest
    allowed: bool
    mode: EnforcementMode
    violated_providers: tuple[Hashable, ...]
    findings: tuple[RequestFinding, ...]
    values: dict[str, str | None] | None

    @property
    def violates(self) -> bool:
        """Whether the request exceeded at least one provider's preferences."""
        return bool(self.findings)


class AccessGate:
    """Evaluate and log access requests against stored preferences.

    Parameters
    ----------
    connection:
        A live connection to a privacy database.
    mode:
        Enforcement mode (see module docstring).
    implicit_zero:
        Apply the implicit-zero rule: a provider who supplied the
        attribute but never mentioned the request's purpose is treated as
        preferring ``(0, 0, 0)``, so any such access violates them.
    degraders:
        Optional per-attribute :class:`~repro.storage.granularity.ValueDegrader`
        records.  When present, returned values are rendered at the
        request's granularity rank (ranges, existence markers, or the raw
        value) instead of always raw.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        *,
        mode: EnforcementMode = EnforcementMode.ENFORCE,
        implicit_zero: bool = True,
        degraders: Mapping[str, "ValueDegrader"] | None = None,
    ) -> None:
        if not isinstance(mode, EnforcementMode):
            raise ValidationError(f"mode must be an EnforcementMode, got {mode!r}")
        self._connection = connection
        self._repository = Repository(connection)
        self._mode = mode
        self._implicit_zero = bool(implicit_zero)
        self._degraders = dict(degraders or {})

    @property
    def mode(self) -> EnforcementMode:
        """The gate's enforcement mode."""
        return self._mode

    def request(self, request: AccessRequest) -> AccessDecision:
        """Evaluate *request*, log the decision, and return it.

        Raises
        ------
        AccessDeniedError
            In ``ENFORCE`` mode, when the request violates any touched
            provider's preferences.  The raised error carries the decision.
        """
        findings = self._evaluate(request)
        violated = tuple(
            sorted({finding.provider_id for finding in findings}, key=repr)
        )
        allowed = not findings or self._mode is EnforcementMode.AUDIT
        values = self._fetch_values(request) if allowed else None
        decision = AccessDecision(
            request=request,
            allowed=allowed,
            mode=self._mode,
            violated_providers=violated,
            findings=tuple(findings),
            values=values,
        )
        self._log(decision)
        if not allowed:
            raise AccessDeniedError(
                f"access to {request.attribute!r} for purpose "
                f"{request.purpose!r} violates {len(violated)} provider(s)",
                decision=decision,
            )
        return decision

    # -- internals --------------------------------------------------------

    def _touched_providers(self, request: AccessRequest) -> list[str]:
        """Providers whose stored datum the request would read."""
        if request.provider_id is not None:
            row = self._connection.execute(
                "SELECT 1 FROM data WHERE provider_id = ? AND attribute = ?",
                (request.provider_id, request.attribute),
            ).fetchone()
            return [request.provider_id] if row is not None else []
        rows = self._connection.execute(
            "SELECT provider_id FROM data WHERE attribute = ? "
            "ORDER BY provider_id",
            (request.attribute,),
        )
        return [row["provider_id"] for row in rows]

    def _evaluate(self, request: AccessRequest) -> list[RequestFinding]:
        """All per-provider exceedances the request would cause."""
        findings: list[RequestFinding] = []
        for provider_id in self._touched_providers(request):
            rows = self._connection.execute(
                "SELECT purpose, visibility, granularity, retention "
                "FROM preferences WHERE provider_id = ? AND attribute = ? "
                "ORDER BY id",
                (provider_id, request.attribute),
            ).fetchall()
            matching = [
                tuple_from_row(row)
                for row in rows
                if row["purpose"] == request.purpose
            ]
            if not matching:
                if not self._implicit_zero:
                    continue
                matching = [PrivacyTuple.zero(request.purpose)]
            for preference in matching:
                for dimension in exceeded_dimensions(preference, request.tuple):
                    findings.append(
                        RequestFinding(
                            provider_id=provider_id,
                            dimension=dimension,
                            preference_value=preference.rank(dimension),
                            requested_value=request.tuple.rank(dimension),
                        )
                    )
        return findings

    def _fetch_values(self, request: AccessRequest) -> dict[str, str | None]:
        """The values an allowed request reads, at the granted granularity."""
        if request.provider_id is not None:
            values = {
                request.provider_id: self._repository.get_datum(
                    request.provider_id, request.attribute
                )
            }
        else:
            values = self._repository.data_for_attribute(request.attribute)
        degrader = self._degraders.get(request.attribute)
        if degrader is None:
            return values
        rank = request.tuple.granularity
        return {
            provider_id: degrader.degrade(value, rank)
            for provider_id, value in values.items()
        }

    def _log(self, decision: AccessDecision) -> None:
        """Append the decision to the audit log."""
        request = decision.request
        if decision.allowed:
            event = "violation-logged" if decision.violates else "access-granted"
        else:
            event = "access-denied"
        detail = json.dumps(
            {
                "mode": decision.mode.value,
                "violated_providers": [str(p) for p in decision.violated_providers],
                "findings": [
                    {
                        "provider": str(finding.provider_id),
                        "dimension": finding.dimension.value,
                        "preference": finding.preference_value,
                        "requested": finding.requested_value,
                    }
                    for finding in decision.findings
                ],
            },
            sort_keys=True,
        )
        self._connection.execute(
            "INSERT INTO audit_log (event, provider_id, attribute, purpose, "
            "visibility, granularity, retention, detail) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                event,
                request.provider_id,
                request.attribute,
                request.purpose,
                request.tuple.visibility,
                request.tuple.granularity,
                request.tuple.retention,
                detail,
            ),
        )
        # The gate owns this write; commit so audit entries survive even if
        # the caller never commits their own transaction.
        self._connection.commit()

"""Quickstart: the paper's worked example in ~40 lines of API.

Builds the Section 8 scenario (Alice, Ted, Bob) from scratch with the
public API, evaluates it, and prints Table 1 plus the aggregate
probabilities — the numbers in the paper, reproduced exactly.

Run:  python examples/quickstart.py
"""

from repro import (
    AttributeSensitivities,
    DimensionSensitivity,
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.analysis import format_table

# --- the house policy: one tuple per attribute, purpose "pr" -------------
# Ranks are positions on ordered ladders (bigger = more exposure).
policy = HousePolicy(
    [
        ("Weight", PrivacyTuple("pr", visibility=2, granularity=2, retention=2)),
        ("Age", PrivacyTuple("pr", visibility=1, granularity=1, retention=1)),
    ],
    name="section-8-example",
)

# --- three providers with preferences, sensitivities, and thresholds -----
def provider(name, weight_pref, sigma, threshold):
    prefs = ProviderPreferences(
        name,
        [("Weight", weight_pref), ("Age", PrivacyTuple("pr", 2, 2, 2))],
    )
    return Provider(
        preferences=prefs,
        sensitivity={"Weight": DimensionSensitivity.from_sequence(sigma)},
        threshold=threshold,
    )


population = Population(
    [
        # Table 1, row by row: <s, s[V], s[G], s[R]> and v_i.
        provider("Alice", PrivacyTuple("pr", 4, 3, 5), (1, 1, 2, 1), 10.0),
        provider("Ted", PrivacyTuple("pr", 4, 1, 4), (3, 1, 5, 2), 50.0),
        provider("Bob", PrivacyTuple("pr", 2, 1, 1), (4, 1, 3, 2), 100.0),
    ],
    attribute_sensitivities=AttributeSensitivities({"Weight": 4.0, "Age": 1.0}),
)

# --- evaluate the whole model in one pass ---------------------------------
engine = ViolationEngine(policy, population)
report = engine.report()

print(
    format_table(
        ["provider", "w_i", "Violation_i", "v_i", "default_i"],
        [
            [
                str(o.provider_id),
                int(o.violated),
                o.violation,
                o.threshold,
                int(o.defaulted),
            ]
            for o in report.outcomes
        ],
        title="Table 1 (reproduced)",
    )
)
print()
print(f"P(W)        = {report.violation_probability:.4f}   (paper: 2/3)")
print(f"P(Default)  = {report.default_probability:.4f}   (paper: 1/3)")
print(f"Violations  = {report.total_violations:g}      (paper: 60 + 80 = 140)")

# --- alpha-PPDB check (Definition 3) --------------------------------------
for alpha in (0.5, 0.7):
    print(engine.certify(alpha))

# --- why did Ted leave? The findings explain every exceedance. ------------
print()
print("Ted's findings:")
for finding in engine.outcome("Ted").findings:
    print(f"  {finding}")

"""The engine guardrail: detection, degradation, and correctness after."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import healthcare_scenario
from repro.perf import BatchViolationEngine
from repro.resilience import FaultPlan, FaultSpec, GuardedBatchEngine


@pytest.fixture(scope="module")
def scenario():
    return healthcare_scenario(40, seed=11)


@pytest.fixture(scope="module")
def reference_report(scenario):
    return BatchViolationEngine(scenario.population).evaluate(scenario.policy)


class TestCleanPath:
    def test_matches_batch_engine_exactly(self, scenario, reference_report):
        guarded = GuardedBatchEngine(scenario.population)
        report = guarded.evaluate(scenario.policy)
        assert not guarded.degraded
        assert guarded.diagnostics == ()
        assert np.array_equal(report.violations, reference_report.violations)
        assert report.total_violations == reference_report.total_violations

    def test_certify_matches_batch(self, scenario):
        guarded = GuardedBatchEngine(scenario.population)
        batch = BatchViolationEngine(scenario.population)
        for alpha in (0.0, 0.25, 1.0):
            assert guarded.certify(scenario.policy, alpha) == batch.certify(
                scenario.policy, alpha
            )

    def test_sampling_is_deterministic(self, scenario):
        a = GuardedBatchEngine(scenario.population, seed=9)
        b = GuardedBatchEngine(scenario.population, seed=9)
        a.evaluate(scenario.policy)
        b.evaluate(scenario.policy)
        assert a._rng.getstate() == b._rng.getstate()


class TestDegradation:
    def test_nan_poisoning_caught_and_corrected(self, scenario, reference_report):
        guarded = GuardedBatchEngine(scenario.population)
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="nan", at=0)]
        )
        with plan.activate():
            report = guarded.evaluate(scenario.policy)
        assert guarded.degraded
        assert [d.code for d in guarded.diagnostics] == ["PVL302", "PVL303"]
        # The served report carries the reference numbers, not the NaN.
        assert np.isfinite(report.violations).all()
        assert np.array_equal(report.violations, reference_report.violations)

    def test_scale_divergence_caught_by_sampling(
        self, scenario, reference_report
    ):
        # Sample every provider so the single poisoned element is found.
        guarded = GuardedBatchEngine(
            scenario.population, sample_size=len(scenario.population)
        )
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="scale", at=0)]
        )
        with plan.activate():
            report = guarded.evaluate(scenario.policy)
        assert guarded.degraded
        codes = [d.code for d in guarded.diagnostics]
        assert codes == ["PVL301", "PVL303"]
        assert np.array_equal(report.violations, reference_report.violations)

    def test_degraded_mode_persists_and_stays_correct(
        self, scenario, reference_report
    ):
        guarded = GuardedBatchEngine(scenario.population)
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="nan", at=0)]
        )
        with plan.activate():
            guarded.evaluate(scenario.policy)
        assert guarded.degraded
        # Later evaluations — fault long gone — still use the oracle and
        # still agree with the batch engine's correct output.
        again = guarded.evaluate(scenario.policy)
        assert np.array_equal(again.violations, reference_report.violations)
        assert len(guarded.diagnostics) == 2

    def test_certify_after_degradation_matches_reference(self, scenario):
        guarded = GuardedBatchEngine(scenario.population)
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="nan", at=0)]
        )
        with plan.activate():
            certificate = guarded.certify(scenario.policy, 0.5)
        reference = BatchViolationEngine(scenario.population).certify(
            scenario.policy, 0.5
        )
        assert guarded.degraded
        assert certificate == reference

    def test_divergence_diagnostic_payload_names_provider(self, scenario):
        guarded = GuardedBatchEngine(
            scenario.population, sample_size=len(scenario.population)
        )
        plan = FaultPlan(
            [FaultSpec(site="engine.violations", kind="scale", at=0)]
        )
        with plan.activate():
            guarded.evaluate(scenario.policy)
        divergence = guarded.diagnostics[0]
        assert divergence.code == "PVL301"
        assert "provider" in divergence.payload
        assert divergence.payload["batch_violation"] != pytest.approx(
            divergence.payload["reference_violation"]
        )

"""Unit tests for the seeded samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Dimension
from repro.exceptions import SimulationError
from repro.simulation import (
    sample_dimension_sensitivity,
    sample_preference_tuple,
    sample_threshold,
)
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing"])


class TestPreferenceSampler:
    def test_tightness_one_pins_at_zero(self, taxonomy):
        rng = np.random.default_rng(0)
        for _ in range(20):
            t = sample_preference_tuple(rng, taxonomy, "billing", 1.0)
            assert (t.visibility, t.granularity, t.retention) == (0, 0, 0)

    def test_tightness_zero_spans_full_ladder(self, taxonomy):
        rng = np.random.default_rng(0)
        seen_v = {
            sample_preference_tuple(rng, taxonomy, "billing", 0.0).visibility
            for _ in range(300)
        }
        assert seen_v == set(range(5))

    def test_ranks_within_domain(self, taxonomy):
        rng = np.random.default_rng(1)
        for tightness in (0.0, 0.3, 0.7, 1.0):
            for _ in range(50):
                t = sample_preference_tuple(rng, taxonomy, "billing", tightness)
                assert 0 <= t.visibility <= 4
                assert 0 <= t.granularity <= 3
                assert 0 <= t.retention <= 4

    def test_purpose_carried(self, taxonomy):
        rng = np.random.default_rng(2)
        t = sample_preference_tuple(rng, taxonomy, "billing", 0.5)
        assert t.purpose == "billing"

    def test_deterministic_given_seed(self, taxonomy):
        a = sample_preference_tuple(
            np.random.default_rng(7), taxonomy, "billing", 0.5
        )
        b = sample_preference_tuple(
            np.random.default_rng(7), taxonomy, "billing", 0.5
        )
        assert a == b

    def test_tightness_above_one_rejected(self, taxonomy):
        with pytest.raises(SimulationError):
            sample_preference_tuple(
                np.random.default_rng(0), taxonomy, "billing", 1.5
            )


class TestSensitivitySampler:
    def test_within_bounds(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            s = sample_dimension_sensitivity(rng, (1.0, 3.0), (0.5, 2.0))
            assert 1.0 <= s.value <= 3.0
            for dim in (
                Dimension.VISIBILITY,
                Dimension.GRANULARITY,
                Dimension.RETENTION,
            ):
                assert 0.5 <= s.dimension_weight(dim) <= 2.0

    def test_degenerate_range(self):
        rng = np.random.default_rng(4)
        s = sample_dimension_sensitivity(rng, (2.0, 2.0), (1.0, 1.0))
        assert s.value == 2.0

    def test_inverted_range_rejected(self):
        with pytest.raises(SimulationError):
            sample_dimension_sensitivity(
                np.random.default_rng(0), (3.0, 1.0), (1.0, 2.0)
            )
        with pytest.raises(SimulationError):
            sample_dimension_sensitivity(
                np.random.default_rng(0), (1.0, 3.0), (2.0, 1.0)
            )


class TestThresholdSampler:
    def test_within_bounds(self):
        rng = np.random.default_rng(5)
        for _ in range(50):
            assert 10.0 <= sample_threshold(rng, (10.0, 20.0)) <= 20.0

    def test_negative_range_rejected(self):
        with pytest.raises(SimulationError):
            sample_threshold(np.random.default_rng(0), (-1.0, 2.0))

"""Unit tests for Westin population synthesis."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core import HousePolicy, PrivacyTuple, ViolationEngine
from repro.exceptions import SimulationError
from repro.simulation import (
    PopulationSpec,
    WestinSegment,
    generate_population,
    standard_segments,
)
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing", "research"])


def _spec(taxonomy, **overrides):
    kwargs = dict(
        taxonomy=taxonomy,
        attributes={"weight": 2.0, "age": 1.0},
        n_providers=60,
        seed=13,
    )
    kwargs.update(overrides)
    return PopulationSpec(**kwargs)


class TestSegments:
    def test_standard_fractions_sum_to_one(self):
        assert sum(s.fraction for s in standard_segments()) == pytest.approx(1.0)

    def test_fundamentalists_have_no_headroom(self):
        segments = {s.name: s for s in standard_segments()}
        assert segments["fundamentalist"].headroom == (0, 0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(SimulationError):
            WestinSegment(name="x", fraction=1.5, tightness=0.5)

    def test_invalid_tightness_rejected(self):
        with pytest.raises(SimulationError):
            WestinSegment(name="x", fraction=0.5, tightness=2.0)

    def test_invalid_headroom_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            WestinSegment(name="x", fraction=0.5, tightness=0.5, headroom=(2, 1))


class TestSpecValidation:
    def test_fractions_must_sum_to_one(self, taxonomy):
        bad = (
            WestinSegment(name="a", fraction=0.5, tightness=0.5),
            WestinSegment(name="b", fraction=0.1, tightness=0.5),
        )
        with pytest.raises(SimulationError):
            _spec(taxonomy, segments=bad)

    def test_empty_attributes_rejected(self, taxonomy):
        with pytest.raises(SimulationError):
            _spec(taxonomy, attributes={})

    def test_unknown_purpose_rejected(self, taxonomy):
        from repro.exceptions import UnknownPurposeError

        with pytest.raises(UnknownPurposeError):
            _spec(taxonomy, purposes=["resale"])

    def test_effective_purposes_default_all(self, taxonomy):
        spec = _spec(taxonomy)
        assert set(spec.effective_purposes()) == {"billing", "research"}


class TestGeneration:
    def test_population_size(self, taxonomy):
        population = generate_population(_spec(taxonomy))
        assert len(population) == 60

    def test_deterministic_given_seed(self, taxonomy):
        a = generate_population(_spec(taxonomy))
        b = generate_population(_spec(taxonomy))
        for provider_a, provider_b in zip(a, b):
            assert provider_a.preferences == provider_b.preferences
            assert provider_a.threshold == provider_b.threshold
            assert provider_a.segment == provider_b.segment

    def test_different_seeds_differ(self, taxonomy):
        a = generate_population(_spec(taxonomy, seed=1))
        b = generate_population(_spec(taxonomy, seed=2))
        assert any(
            pa.preferences != pb.preferences for pa, pb in zip(a, b)
        )

    def test_segment_quota_exact(self, taxonomy):
        population = generate_population(_spec(taxonomy, n_providers=100))
        counts = Counter(p.segment for p in population)
        assert counts["fundamentalist"] == 25
        assert counts["pragmatist"] == 57
        assert counts["unconcerned"] == 18

    def test_every_provider_covers_all_attribute_purpose_pairs(self, taxonomy):
        population = generate_population(_spec(taxonomy, n_providers=10))
        for provider in population:
            pairs = {
                (e.attribute, e.purpose) for e in provider.preferences
            }
            assert pairs == {
                (a, p)
                for a in ("weight", "age")
                for p in ("billing", "research")
            }

    def test_attribute_sensitivities_transferred(self, taxonomy):
        population = generate_population(_spec(taxonomy))
        assert population.attribute_sensitivities.weight("weight") == 2.0

    def test_ids_use_prefix(self, taxonomy):
        population = generate_population(_spec(taxonomy, id_prefix="user-"))
        assert all(str(p.provider_id).startswith("user-") for p in population)

    def test_thresholds_within_segment_bounds(self, taxonomy):
        population = generate_population(_spec(taxonomy, n_providers=50))
        bounds = {s.name: s.threshold for s in standard_segments()}
        for provider in population:
            low, high = bounds[provider.segment]
            assert low <= provider.threshold <= high


class TestAnchoredGeneration:
    def test_anchored_population_has_zero_baseline_violations(self, taxonomy):
        policy = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 2, 2, 2)),
                ("age", PrivacyTuple("billing", 1, 1, 1)),
            ]
        )
        spec = _spec(
            taxonomy,
            purposes=["billing"],
            anchor_policy=policy,
            n_providers=40,
        )
        population = generate_population(spec)
        report = ViolationEngine(policy, population).report()
        assert report.n_violated == 0
        assert report.total_violations == 0.0

    def test_unanchored_purposes_still_sampled_by_tightness(self, taxonomy):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
        spec = _spec(taxonomy, anchor_policy=policy, n_providers=40)
        population = generate_population(spec)
        # 'research' pairs are not anchored; the policy says nothing about
        # them so the baseline still causes no violations.
        report = ViolationEngine(policy, population).report()
        assert report.n_violated == 0

    def test_anchored_preferences_dominate_policy(self, taxonomy):
        policy = HousePolicy(
            [("weight", PrivacyTuple("billing", 2, 1, 2))]
        )
        spec = _spec(taxonomy, purposes=["billing"], anchor_policy=policy)
        population = generate_population(spec)
        for provider in population:
            for entry in provider.preferences.for_attribute("weight"):
                assert entry.tuple.dominates(
                    PrivacyTuple("billing", 2, 1, 2)
                )

    def test_widening_violates_zero_headroom_segment(self, taxonomy):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 1, 1, 1))])
        spec = _spec(taxonomy, purposes=["billing"], anchor_policy=policy)
        population = generate_population(spec)
        widened = HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
        engine = ViolationEngine(widened, population)
        for outcome in engine.outcomes():
            if outcome.segment == "fundamentalist":
                assert outcome.violated

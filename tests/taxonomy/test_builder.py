"""Unit tests for Taxonomy and TaxonomyBuilder."""

from __future__ import annotations

import pytest

from repro.core import Dimension, PrivacyTuple
from repro.core.dimensions import OrderedDomain, UnboundedRetention
from repro.core.purpose import chain
from repro.exceptions import DomainError, UnknownPurposeError, ValidationError
from repro.taxonomy import Taxonomy, TaxonomyBuilder, standard_taxonomy


@pytest.fixture()
def taxonomy() -> Taxonomy:
    return standard_taxonomy(["billing", "research"])


class TestStandardTaxonomy:
    def test_tuple_from_names(self, taxonomy):
        t = taxonomy.tuple("billing", "house", "partial", "short-term")
        assert t == PrivacyTuple("billing", 2, 2, 2)

    def test_tuple_from_ranks(self, taxonomy):
        t = taxonomy.tuple("billing", 2, 2, 2)
        assert t.visibility == 2

    def test_tuple_mixed_names_and_ranks(self, taxonomy):
        t = taxonomy.tuple("billing", "all", 0, "indefinite")
        assert (t.visibility, t.granularity, t.retention) == (4, 0, 4)

    def test_unknown_purpose_rejected(self, taxonomy):
        with pytest.raises(UnknownPurposeError):
            taxonomy.tuple("resale", 0, 0, 0)

    def test_unknown_level_rejected(self, taxonomy):
        with pytest.raises(DomainError):
            taxonomy.tuple("billing", "galaxy", 0, 0)

    def test_out_of_range_rank_rejected(self, taxonomy):
        with pytest.raises(DomainError):
            taxonomy.tuple("billing", 99, 0, 0)

    def test_describe_round_trips(self, taxonomy):
        t = taxonomy.tuple("billing", "house", "partial", "short-term")
        described = taxonomy.describe(t)
        assert described == {
            "purpose": "billing",
            "visibility": "house",
            "granularity": "partial",
            "retention": "short-term",
        }
        assert taxonomy.tuple(**described) == t

    def test_validate_tuple_accepts_in_range(self, taxonomy):
        t = PrivacyTuple("billing", 4, 3, 4)
        assert taxonomy.validate_tuple(t) is t

    def test_validate_tuple_rejects_out_of_range(self, taxonomy):
        with pytest.raises(DomainError):
            taxonomy.validate_tuple(PrivacyTuple("billing", 5, 0, 0))

    def test_validate_tuple_rejects_unknown_purpose(self, taxonomy):
        with pytest.raises(UnknownPurposeError):
            taxonomy.validate_tuple(PrivacyTuple("resale", 0, 0, 0))

    def test_domain_accessor(self, taxonomy):
        assert taxonomy.domain(Dimension.VISIBILITY).max_rank == 4

    def test_domain_rejects_purpose(self, taxonomy):
        with pytest.raises(ValidationError):
            taxonomy.domain(Dimension.PURPOSE)

    def test_with_purposes_extends(self, taxonomy):
        extended = taxonomy.with_purposes(["marketing"])
        assert "marketing" in extended.purposes
        assert "billing" in extended.purposes
        assert "marketing" not in taxonomy.purposes


class TestTaxonomyConstruction:
    def test_missing_domain_rejected(self):
        from repro.taxonomy.levels import visibility_domain

        with pytest.raises(ValidationError):
            Taxonomy(["p"], {Dimension.VISIBILITY: visibility_domain()})

    def test_mismatched_domain_dimension_rejected(self):
        from repro.taxonomy.levels import (
            granularity_domain,
            retention_domain,
            visibility_domain,
        )

        with pytest.raises(ValidationError):
            Taxonomy(
                ["p"],
                {
                    Dimension.VISIBILITY: granularity_domain(),  # wrong axis
                    Dimension.GRANULARITY: granularity_domain(),
                    Dimension.RETENTION: retention_domain(),
                },
            )

    def test_lattice_purposes_must_match_registry(self):
        from repro.taxonomy.levels import (
            granularity_domain,
            retention_domain,
            visibility_domain,
        )

        lattice = chain(["a", "b"])
        with pytest.raises(ValidationError):
            Taxonomy(
                ["a", "b", "c"],
                {
                    Dimension.VISIBILITY: visibility_domain(),
                    Dimension.GRANULARITY: granularity_domain(),
                    Dimension.RETENTION: retention_domain(),
                },
                purpose_lattice=lattice,
            )


class TestTaxonomyBuilder:
    def test_defaults_to_canonical_ladders(self):
        taxonomy = TaxonomyBuilder().with_purposes(["p"]).build()
        assert taxonomy.domain(Dimension.VISIBILITY).max_rank == 4

    def test_custom_ladders(self):
        taxonomy = (
            TaxonomyBuilder()
            .with_purposes(["p"])
            .with_visibility(["none", "clinic", "public"])
            .with_granularity(["none", "exact"])
            .with_retention(["none", "forever"])
            .build()
        )
        assert taxonomy.domain(Dimension.VISIBILITY).max_rank == 2
        assert taxonomy.tuple("p", "clinic", "exact", "forever") == PrivacyTuple(
            "p", 1, 1, 1
        )

    def test_unbounded_retention(self):
        taxonomy = (
            TaxonomyBuilder()
            .with_purposes(["p"])
            .with_retention_unbounded()
            .build()
        )
        domain = taxonomy.domain(Dimension.RETENTION)
        assert isinstance(domain, UnboundedRetention)
        t = taxonomy.tuple("p", 0, 0, 9999)
        assert t.retention == 9999

    def test_purpose_lattice_sets_purposes(self):
        lattice = chain(["narrow", "wide"])
        taxonomy = TaxonomyBuilder().with_purpose_lattice(lattice).build()
        assert set(taxonomy.purposes.purposes) == {"narrow", "wide"}
        assert taxonomy.purpose_lattice is lattice

"""Property-based tests on the violation model's invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    AttributeSensitivities,
    DimensionSensitivity,
    HousePolicy,
    PolicyEntry,
    PreferenceEntry,
    PrivacyTuple,
    ProviderPreferences,
    ProviderSensitivity,
    SensitivityModel,
    comp,
    conf,
    diff,
    exceeded_dimensions,
    find_violations,
    provider_violation,
    violation_indicator,
)

ranks = st.integers(min_value=0, max_value=8)
purposes = st.sampled_from(["p1", "p2", "p3"])
attributes = st.sampled_from(["a1", "a2", "a3"])


@st.composite
def privacy_tuples(draw, purpose=None):
    return PrivacyTuple(
        purpose=draw(purposes) if purpose is None else purpose,
        visibility=draw(ranks),
        granularity=draw(ranks),
        retention=draw(ranks),
    )


@st.composite
def sensitivity_models(draw):
    weights = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    attribute_weights = {
        attribute: draw(weights) for attribute in ("a1", "a2", "a3")
    }
    record = DimensionSensitivity(
        value=draw(weights),
        visibility=draw(weights),
        granularity=draw(weights),
        retention=draw(weights),
    )
    return SensitivityModel(
        AttributeSensitivities(attribute_weights),
        {"i": ProviderSensitivity("i", {"a1": record})},
    )


class TestDiffProperties:
    @given(p=ranks, capital_p=ranks)
    def test_diff_non_negative(self, p, capital_p):
        assert diff(p, capital_p) >= 0

    @given(p=ranks, capital_p=ranks)
    def test_diff_positive_iff_strict_exceedance(self, p, capital_p):
        assert (diff(p, capital_p) > 0) == (capital_p > p)

    @given(p=ranks, capital_p=ranks, shift=st.integers(0, 5))
    def test_diff_monotone_in_policy(self, p, capital_p, shift):
        assert diff(p, capital_p + shift) >= diff(p, capital_p)

    @given(p=ranks, capital_p=ranks, shift=st.integers(0, 5))
    def test_diff_antitone_in_preference(self, p, capital_p, shift):
        assert diff(p + shift, capital_p) <= diff(p, capital_p)


class TestExceededDimensionsProperties:
    @given(pref=privacy_tuples(), pol=privacy_tuples())
    def test_exceeded_iff_not_dominating(self, pref, pol):
        if pref.purpose == pol.purpose:
            assert (exceeded_dimensions(pref, pol) == ()) == pref.dominates(pol)
        else:
            assert exceeded_dimensions(pref, pol) == ()

    @given(t=privacy_tuples())
    def test_never_exceeds_itself(self, t):
        assert exceeded_dimensions(t, t) == ()

    @given(pref=privacy_tuples(purpose="p"), pol=privacy_tuples(purpose="p"))
    def test_exceedance_antisymmetric_per_dimension(self, pref, pol):
        forward = set(exceeded_dimensions(pref, pol))
        backward = set(exceeded_dimensions(pol, pref))
        assert not forward & backward


class TestConfProperties:
    @given(
        pref=privacy_tuples(purpose="p"),
        pol=privacy_tuples(purpose="p"),
        model=sensitivity_models(),
    )
    def test_conf_non_negative(self, pref, pol, model):
        preference = PreferenceEntry("i", "a1", pref)
        policy = PolicyEntry("a1", pol)
        assert conf(preference, policy, model) >= 0.0

    @given(pref=privacy_tuples(purpose="p"), pol=privacy_tuples(purpose="p"))
    def test_conf_zero_iff_no_exceedance_when_weights_positive(self, pref, pol):
        preference = PreferenceEntry("i", "a1", pref)
        policy = PolicyEntry("a1", pol)
        # Neutral model: all weights 1 (strictly positive).
        value = conf(preference, policy)
        assert (value == 0.0) == (exceeded_dimensions(pref, pol) == ())

    @given(
        pref=privacy_tuples(purpose="p"),
        pol=privacy_tuples(purpose="p"),
        model=sensitivity_models(),
    )
    def test_incomparable_conf_is_zero(self, pref, pol, model):
        preference = PreferenceEntry("i", "a2", pref)
        policy = PolicyEntry("a1", pol)
        assert comp(preference, policy) == 0
        assert conf(preference, policy, model) == 0.0


@st.composite
def preference_sets(draw):
    n = draw(st.integers(1, 4))
    entries = [
        (draw(attributes), draw(privacy_tuples())) for _ in range(n)
    ]
    return ProviderPreferences("i", entries)


@st.composite
def house_policies(draw):
    n = draw(st.integers(0, 4))
    entries = [
        (draw(attributes), draw(privacy_tuples())) for _ in range(n)
    ]
    return HousePolicy(entries)


class TestIndicatorProperties:
    @given(prefs=preference_sets(), policy=house_policies())
    @settings(max_examples=200)
    def test_indicator_agrees_with_findings(self, prefs, policy):
        findings = find_violations(prefs, policy)
        indicator = violation_indicator(prefs, policy)
        assert indicator == (1 if findings else 0)

    @given(prefs=preference_sets(), policy=house_policies())
    def test_severity_positive_implies_indicator(self, prefs, policy):
        severity = provider_violation(prefs, policy)
        if severity > 0:
            assert violation_indicator(prefs, policy) == 1

    @given(prefs=preference_sets())
    def test_empty_policy_never_violates(self, prefs):
        assert violation_indicator(prefs, HousePolicy([])) == 0

    @given(prefs=preference_sets(), policy=house_policies())
    def test_widening_never_removes_violation(self, prefs, policy):
        """Monotonicity: widening the policy can only add violations."""
        from repro.core import Dimension

        before = violation_indicator(prefs, policy)
        widened = policy.widened(
            {
                Dimension.VISIBILITY: 1,
                Dimension.GRANULARITY: 1,
                Dimension.RETENTION: 1,
            }
        )
        after = violation_indicator(prefs, widened)
        assert after >= before

    @given(prefs=preference_sets(), policy=house_policies())
    def test_severity_monotone_under_widening(self, prefs, policy):
        from repro.core import Dimension

        before = provider_violation(prefs, policy)
        widened = policy.widened({Dimension.RETENTION: 2})
        after = provider_violation(prefs, widened)
        assert after >= before

    @given(prefs=preference_sets(), policy=house_policies())
    def test_implicit_zero_only_adds_violations(self, prefs, policy):
        with_rule = violation_indicator(prefs, policy, implicit_zero=True)
        without_rule = violation_indicator(prefs, policy, implicit_zero=False)
        assert with_rule >= without_rule

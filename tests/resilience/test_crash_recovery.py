"""Crash-recovery properties: kill after round k, resume, equal bit-for-bit.

The acceptance bar for the resilience layer: for every workload and every
kill point, an interrupted-then-resumed run must produce *exactly* the
result of an uninterrupted run — same floats, same provider tuples, same
ordering — and injected storage faults must either be retried through or
surface as coded errors, never as a silently different answer.
"""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.datasets import healthcare_scenario
from repro.estimation import (
    ThresholdEstimator,
    forecast_defaults,
    observe_widening_history,
)
from repro.exceptions import JournalMismatchError, ProcessKilled
from repro.resilience import (
    FaultPlan,
    FaultSpec,
    RunJournal,
    resumable_dynamics,
    resumable_forecast,
    resumable_sweep,
)
from repro.simulation import WideningStep, run_dynamics, run_expansion_sweep
from repro.simulation.widening import widening_path

MAX_STEPS = 4
ROUNDS = 4


@pytest.fixture(scope="module")
def scenario():
    # Enough providers and widening room that defaults happen mid-path.
    return healthcare_scenario(50, seed=23)


@pytest.fixture(scope="module")
def uninterrupted_sweep(scenario):
    return run_expansion_sweep(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        max_steps=MAX_STEPS,
    )


@pytest.fixture(scope="module")
def history(scenario):
    return [
        policy
        for _, policy in widening_path(
            scenario.policy,
            WideningStep.uniform(1),
            scenario.taxonomy,
            3,
        )
    ]


class TestSweepRecovery:
    @pytest.mark.parametrize("kill_after", range(MAX_STEPS + 1))
    def test_kill_at_every_step_then_resume(
        self, tmp_path, scenario, uninterrupted_sweep, kill_after
    ):
        path = str(tmp_path / "sweep.journal")
        plan = FaultPlan(
            [FaultSpec(site="sweep.step", kind="kill", at=kill_after)]
        )
        with plan.activate():
            with pytest.raises(ProcessKilled):
                resumable_sweep(
                    scenario.population,
                    scenario.policy,
                    scenario.taxonomy,
                    journal_path=path,
                    max_steps=MAX_STEPS,
                )
        resumed = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=MAX_STEPS,
        )
        assert resumed.rows == uninterrupted_sweep.rows

    def test_double_interruption(self, tmp_path, scenario, uninterrupted_sweep):
        path = str(tmp_path / "sweep.journal")
        for kill_after in (1, 3):
            plan = FaultPlan(
                [FaultSpec(site="sweep.step", kind="kill", at=0)]
            )
            # at=0 relative to *this* process: each resume dies on the
            # first live step it attempts, making progress one step at
            # a time — the worst crash-loop shape.
            del kill_after
            with plan.activate():
                with pytest.raises(ProcessKilled):
                    resumable_sweep(
                        scenario.population,
                        scenario.policy,
                        scenario.taxonomy,
                        journal_path=path,
                        max_steps=MAX_STEPS,
                    )
        resumed = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=MAX_STEPS,
        )
        assert resumed.rows == uninterrupted_sweep.rows

    def test_uninterrupted_journaled_run_matches(
        self, tmp_path, scenario, uninterrupted_sweep
    ):
        resumed = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=str(tmp_path / "sweep.journal"),
            max_steps=MAX_STEPS,
        )
        assert resumed.rows == uninterrupted_sweep.rows

    def test_resume_against_different_population_refused(
        self, tmp_path, scenario
    ):
        path = str(tmp_path / "sweep.journal")
        resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=2,
        )
        other = healthcare_scenario(50, seed=99)
        with pytest.raises(JournalMismatchError):
            resumable_sweep(
                other.population,
                scenario.policy,
                scenario.taxonomy,
                journal_path=path,
                max_steps=2,
            )

    def test_locked_database_during_checkpoint_is_retried(
        self, tmp_path, scenario, uninterrupted_sweep
    ):
        # Two consecutive locked errors on every commit site visit index
        # 0 — within the retry budget, so the run completes untouched.
        plan = FaultPlan(
            [FaultSpec(site="db.commit", kind="locked", at=1, count=2)]
        )
        with plan.activate():
            swept = resumable_sweep(
                scenario.population,
                scenario.policy,
                scenario.taxonomy,
                journal_path=str(tmp_path / "sweep.journal"),
                max_steps=MAX_STEPS,
            )
        assert ("db.commit", 1, "locked") in plan.fired
        assert swept.rows == uninterrupted_sweep.rows

    def test_disk_full_fails_loudly_without_corrupting(
        self, tmp_path, scenario, uninterrupted_sweep
    ):
        path = str(tmp_path / "sweep.journal")
        plan = FaultPlan(
            [
                FaultSpec(
                    site="db.commit", kind="disk_full", at=2, count=999
                )
            ]
        )
        with plan.activate():
            with pytest.raises(sqlite3.OperationalError, match="disk is full"):
                resumable_sweep(
                    scenario.population,
                    scenario.policy,
                    scenario.taxonomy,
                    journal_path=path,
                    max_steps=MAX_STEPS,
                )
        # The journal still opens clean and the run resumes to the
        # bit-identical result once space is back.
        with RunJournal.open(path) as journal:
            assert journal.n_steps >= 1
        resumed = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=MAX_STEPS,
        )
        assert resumed.rows == uninterrupted_sweep.rows


class TestParallelSweepRecovery:
    """``--journal`` + ``--workers``: every kill shape still converges."""

    def test_parallel_journaled_sweep_matches_serial(
        self, tmp_path, scenario, uninterrupted_sweep
    ):
        swept = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=str(tmp_path / "sweep.journal"),
            max_steps=MAX_STEPS,
            workers=2,
        )
        assert swept.rows == uninterrupted_sweep.rows

    @pytest.mark.parametrize("kill_after", [0, 2, MAX_STEPS])
    def test_parent_kill_then_resume_under_any_worker_count(
        self, tmp_path, scenario, uninterrupted_sweep, kill_after
    ):
        path = str(tmp_path / "sweep.journal")
        plan = FaultPlan(
            [FaultSpec(site="sweep.step", kind="kill", at=kill_after)]
        )
        with plan.activate():
            with pytest.raises(ProcessKilled):
                resumable_sweep(
                    scenario.population,
                    scenario.policy,
                    scenario.taxonomy,
                    journal_path=path,
                    max_steps=MAX_STEPS,
                    workers=2,
                )
        # The worker count is not journaled: resume serially.
        resumed = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=MAX_STEPS,
            workers=1,
        )
        assert resumed.rows == uninterrupted_sweep.rows

    def test_worker_sigkill_mid_sweep_degrades_and_still_converges(
        self, tmp_path, scenario, uninterrupted_sweep
    ):
        """A SIGKILLed worker costs a respawn, never a different ledger."""
        from repro.perf.parallel import TASK_FAULT_SITE

        swept = resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=str(tmp_path / "sweep.journal"),
            max_steps=MAX_STEPS,
            workers=2,
            worker_faults=(
                FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0),
            ),
            fault_seed=7,
        )
        assert swept.rows == uninterrupted_sweep.rows


class TestDynamicsRecovery:
    @pytest.mark.parametrize("kill_after", range(ROUNDS))
    def test_kill_at_every_round_then_resume(
        self, tmp_path, scenario, kill_after
    ):
        expected = run_dynamics(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            rounds=ROUNDS,
        )
        path = str(tmp_path / "dynamics.journal")
        plan = FaultPlan(
            [FaultSpec(site="dynamics.round", kind="kill", at=kill_after)]
        )
        with plan.activate():
            with pytest.raises(ProcessKilled):
                resumable_dynamics(
                    scenario.population,
                    scenario.policy,
                    scenario.taxonomy,
                    journal_path=path,
                    rounds=ROUNDS,
                )
        resumed = resumable_dynamics(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            rounds=ROUNDS,
        )
        assert resumed == expected


class TestForecastRecovery:
    @pytest.mark.parametrize("kill_after", range(3))
    def test_kill_at_every_observation_then_resume(
        self, tmp_path, scenario, history, kill_after
    ):
        estimator = ThresholdEstimator(
            observe_widening_history(scenario.population, history)
        )
        expected = forecast_defaults(
            estimator,
            scenario.population,
            history[-1],
            per_provider_utility=1.0,
            implicit_zero=True,
        )
        path = str(tmp_path / "forecast.journal")
        plan = FaultPlan(
            [FaultSpec(site="forecast.observe", kind="kill", at=kill_after)]
        )
        with plan.activate():
            with pytest.raises(ProcessKilled):
                resumable_forecast(
                    scenario.population,
                    history,
                    history[-1],
                    journal_path=path,
                )
        resumed = resumable_forecast(
            scenario.population,
            history,
            history[-1],
            journal_path=path,
        )
        assert resumed == expected


class TestJournalHygiene:
    def test_journal_survives_on_disk_between_runs(self, tmp_path, scenario):
        path = str(tmp_path / "sweep.journal")
        resumable_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            max_steps=2,
        )
        assert os.path.exists(path)
        with RunJournal.open(path) as journal:
            assert journal.kind == "sweep"
            assert journal.n_steps == 3  # steps 0..2 inclusive

"""Government registry: when providers cannot leave, only transparency bites.

Section 9's brake on policy widening is economic: defaults shrink the
population.  A government registry with a captive population (most
citizens cannot opt out) weakens that brake — widening stays "justified"
by Eq. 31 long after an equivalent voluntary population would have
collapsed.  What remains is exactly the paper's transparency agenda:
``P(W)`` and the severity ledger keep quantifying the violations, and the
alpha-PPDB certificate keeps failing, whether or not anyone can leave.

Run:  python examples/government_captive.py
"""

from repro.analysis import format_table
from repro.core import ViolationEngine
from repro.datasets import government_scenario
from repro.simulation import WideningStep, run_expansion_sweep, widen

captive = government_scenario(n_providers=300, captive_fraction=0.7, seed=31)
voluntary = government_scenario(n_providers=300, captive_fraction=0.0, seed=31)
print(f"registry: {captive} (70% captive) vs voluntary twin")
print()

kwargs = dict(
    max_steps=4,
    per_provider_utility=captive.per_provider_utility,
    extra_utility_per_step=captive.extra_utility_per_step,
)
captive_sweep = run_expansion_sweep(
    captive.population, captive.policy, captive.taxonomy, **kwargs
)
voluntary_sweep = run_expansion_sweep(
    voluntary.population, voluntary.policy, voluntary.taxonomy, **kwargs
)

rows = []
for c_row, v_row in zip(captive_sweep.rows, voluntary_sweep.rows):
    rows.append(
        [
            c_row.step,
            round(c_row.violation_probability, 3),
            c_row.n_current - c_row.n_future,
            v_row.n_current - v_row.n_future,
            c_row.utility_future,
            v_row.utility_future,
        ]
    )
print(
    format_table(
        [
            "step",
            "P(W)",
            "defaults (captive)",
            "defaults (voluntary)",
            "U_fut (captive)",
            "U_fut (voluntary)",
        ],
        rows,
        title="the weakened feedback loop",
    )
)
final_captive = captive_sweep.rows[-1]
final_voluntary = voluntary_sweep.rows[-1]
print()
print(
    f"at step {final_captive.step} the captive registry keeps "
    f"{final_captive.n_future - final_voluntary.n_future} more citizens and "
    f"extracts {final_captive.utility_future - final_voluntary.utility_future:g} "
    f"more utility than its voluntary twin — the economic brake barely bites."
)
print()

# Transparency still works: the violations are identical either way.
engine = ViolationEngine(captive.policy, captive.population)
certificate_base = engine.certify(0.05)
print(f"baseline:       {certificate_base}")
widened_policy = widen(
    captive.policy, WideningStep.uniform(2), captive.taxonomy, name="widened+2"
)
certificate_wide = engine.with_policy(widened_policy).certify(0.05)
print(f"after widening: {certificate_wide}")
print()
print(
    "conclusion: with a captive population the economic brake fails "
    "(defaults cannot happen), but P(W) and the certificate expose the "
    "violations all the same — the auditable-transparency case the paper "
    "argues for."
)

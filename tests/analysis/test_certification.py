"""Unit tests for certification documents."""

from __future__ import annotations

import json

import pytest

from repro.analysis import certification_document


class TestCertificationDocument:
    def test_document_fields(self, paper_engine):
        document = certification_document(paper_engine, alpha=0.5)
        payload = document.as_dict()
        assert payload["claim"] == "alpha-PPDB(alpha=0.5)"
        assert payload["satisfied"] is False
        assert payload["violation_probability"] == pytest.approx(2 / 3)
        assert payload["violated_providers"] == ["Ted", "Bob"]
        assert payload["default_probability"] == pytest.approx(1 / 3)
        assert payload["total_violations"] == 140.0

    def test_json_round_trip(self, paper_engine):
        document = certification_document(paper_engine, alpha=0.7)
        decoded = json.loads(document.to_json())
        assert decoded["satisfied"] is True

    def test_verify_accepts_honest_document(self, paper_engine):
        assert certification_document(paper_engine, alpha=0.5).verify()
        assert certification_document(paper_engine, alpha=0.9).verify()

    def test_verify_rejects_tampered_probability(self, paper_engine):
        from dataclasses import replace

        document = certification_document(paper_engine, alpha=0.5)
        tampered = replace(
            document,
            certificate=replace(
                document.certificate, violation_probability=0.1
            ),
        )
        assert not tampered.verify()

    def test_verify_rejects_tampered_verdict(self, paper_engine):
        from dataclasses import replace

        document = certification_document(paper_engine, alpha=0.5)
        tampered = replace(
            document,
            certificate=replace(document.certificate, satisfied=True),
        )
        assert not tampered.verify()

    def test_margin_in_document(self, paper_engine):
        payload = certification_document(paper_engine, alpha=0.5).as_dict()
        assert payload["margin"] == pytest.approx(0.5 - 2 / 3)

"""Unit tests for the empirical default CDF."""

from __future__ import annotations

import pytest

from repro.analysis import DefaultCDF, default_cdf_from_sweep
from repro.exceptions import ValidationError
from repro.simulation import run_expansion_sweep
from repro.simulation.scenario import ExpansionSweep, SweepRow


@pytest.fixture(scope="module")
def sweep():
    from repro.datasets import healthcare_scenario

    scenario = healthcare_scenario(80, seed=5)
    return run_expansion_sweep(
        scenario.population, scenario.policy, scenario.taxonomy, max_steps=5
    )


@pytest.fixture(scope="module")
def cdf(sweep):
    return default_cdf_from_sweep(sweep)


class TestConstruction:
    def test_from_sweep(self, cdf, sweep):
        assert cdf.population_size == sweep.rows[0].n_current
        assert len(cdf.steps) == len(sweep.rows)

    def test_non_decreasing_enforced(self):
        with pytest.raises(ValidationError):
            DefaultCDF(steps=(0, 1), cumulative_defaults=(5, 3), population_size=10)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            DefaultCDF(steps=(0,), cumulative_defaults=(0, 1), population_size=10)


class TestQueries:
    def test_defaults_at_known_steps(self, cdf, sweep):
        for row, expected in zip(sweep.rows, cdf.cumulative_defaults):
            assert cdf.defaults_at(row.step) == expected

    def test_defaults_before_first_step_zero(self, cdf):
        assert cdf.defaults_at(-1) == 0

    def test_defaults_beyond_last_step_saturates(self, cdf):
        assert cdf.defaults_at(999) == cdf.cumulative_defaults[-1]

    def test_fraction_at(self, cdf):
        for step in cdf.steps:
            assert cdf.fraction_at(step) == pytest.approx(
                cdf.defaults_at(step) / cdf.population_size
            )

    def test_step_zero_is_zero_defaults(self, cdf):
        # Anchored scenario: the base policy defaults nobody.
        assert cdf.defaults_at(0) == 0

    def test_widest_step_within_budget_zero(self, cdf):
        assert cdf.widest_step_within(0.0) == 0

    def test_widest_step_within_full_budget(self, cdf):
        assert cdf.widest_step_within(1.0) == cdf.steps[-1]

    def test_widest_step_monotone_in_budget(self, cdf):
        budgets = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]
        widths = [cdf.widest_step_within(b) for b in budgets]
        assert widths == sorted(widths)

    def test_widest_step_respects_budget(self, cdf):
        step = cdf.widest_step_within(0.3)
        assert cdf.fraction_at(step) <= 0.3

    def test_invalid_budget_rejected(self, cdf):
        with pytest.raises(ValidationError):
            cdf.widest_step_within(1.5)

    def test_saturation_detected(self):
        saturated = DefaultCDF(
            steps=(0, 1, 2), cumulative_defaults=(0, 5, 5), population_size=10
        )
        growing = DefaultCDF(
            steps=(0, 1, 2), cumulative_defaults=(0, 2, 5), population_size=10
        )
        assert saturated.is_saturated()
        assert not growing.is_saturated()


class TestExactBoundaryBudget:
    """Regression: a budget landing exactly on a step's fraction admits it.

    The fraction is ``defaults / population_size`` in floats, so a budget
    that is mathematically equal can differ by one ulp; the old strict
    ``>`` comparison then rejected the boundary step.
    """

    @pytest.fixture()
    def boundary_cdf(self) -> DefaultCDF:
        return DefaultCDF(
            steps=(0, 1, 2),
            cumulative_defaults=(0, 3, 7),
            population_size=10,
        )

    def test_budget_one_ulp_below_fraction_admitted(self, boundary_cdf):
        # 0.7 - 0.4 == 0.29999999999999993, one ulp below 3/10; it is
        # mathematically 0.3 and must admit step 1.
        assert (0.7 - 0.4) < 0.3
        assert boundary_cdf.widest_step_within(0.7 - 0.4) == 1

    def test_exact_float_budget_admitted(self, boundary_cdf):
        assert boundary_cdf.widest_step_within(0.3) == 1

    def test_budget_clearly_below_still_rejected(self, boundary_cdf):
        assert boundary_cdf.widest_step_within(0.29) == 0

    def test_budget_clearly_above_admits_next_step(self, boundary_cdf):
        assert boundary_cdf.widest_step_within(0.7) == 2


def _phase_row(step: int, n_current: int, n_future: int) -> SweepRow:
    return SweepRow(
        step=step,
        policy_name=f"base+{step}",
        n_current=n_current,
        n_future=n_future,
        n_violated=n_current - n_future,
        violation_probability=0.0,
        default_probability=0.0,
        total_violations=0.0,
        extra_utility=0.0,
        utility_current=float(n_current),
        utility_future=float(n_future),
        break_even_extra_utility=0.0,
        justified=False,
        defaulted_providers=(),
    )


class TestBaselineAnchoring:
    """Regression: cumulative defaults anchor to the baseline population.

    Rows produced over a shrinking population carry per-row ``n_current``
    values; differencing within each row yields *incremental* counts
    (0, 2, 3 below), not the cumulative CDF (0, 2, 5).
    """

    @pytest.fixture()
    def shrinking_sweep(self) -> ExpansionSweep:
        return ExpansionSweep(
            scenario_name="multi-phase",
            per_provider_utility=1.0,
            extra_utility_per_step=0.0,
            rows=(
                _phase_row(0, 10, 10),
                _phase_row(1, 10, 8),
                _phase_row(2, 8, 5),
            ),
        )

    def test_cdf_counts_are_cumulative(self, shrinking_sweep):
        cdf = default_cdf_from_sweep(shrinking_sweep)
        assert cdf.cumulative_defaults == (0, 2, 5)
        assert cdf.population_size == 10
        assert cdf.fraction_at(2) == pytest.approx(0.5)

    def test_sweep_default_counts_agree_with_cdf(self, shrinking_sweep):
        cdf = default_cdf_from_sweep(shrinking_sweep)
        assert shrinking_sweep.default_counts() == cdf.cumulative_defaults

    def test_fixed_population_sweep_unchanged(self, cdf, sweep):
        # The anchored formula is identical to the per-row one when every
        # row shares the baseline n_current (the ordinary sweep case).
        assert cdf.cumulative_defaults == tuple(
            row.n_current - row.n_future for row in sweep.rows
        )

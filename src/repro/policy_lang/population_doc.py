"""Population documents: a whole provider population as one JSON file.

The file-driven workflow (and the CLI) needs everything the model knows
about providers in one document::

    {
      "attribute_sensitivities": {"weight": 4, "age": 1},
      "providers": [
        {
          "provider": "ted",
          "segment": "pragmatist",          # optional
          "threshold": 50,                   # optional; omitted = never defaults
          "attributes_provided": ["weight"], # optional
          "preferences": [ {tuple spec}, ... ],
          "sensitivities": {                 # optional, per attribute
            "weight": {"value": 3, "granularity": 5, "retention": 2}
          }
        },
        ...
      ]
    }
"""

from __future__ import annotations

import json
import math
from collections.abc import Mapping

from ..core.dimensions import Dimension
from ..core.population import Population, Provider
from ..core.sensitivity import DimensionSensitivity
from ..exceptions import PolicyDocumentError
from ..taxonomy.builder import Taxonomy
from .ast import PreferenceDocument
from .parser import parse_preferences, preference_document

_PROVIDER_KEYS = {
    "provider",
    "segment",
    "threshold",
    "attributes_provided",
    "preferences",
    "sensitivities",
}
_RECORD_KEYS = {"value", "visibility", "granularity", "retention"}


def _parse_sensitivity_record(raw: Mapping, *, context: str) -> DimensionSensitivity:
    unknown = set(raw) - _RECORD_KEYS
    if unknown:
        raise PolicyDocumentError(
            f"{context}: unknown sensitivity keys {sorted(unknown)}"
        )
    return DimensionSensitivity(
        value=raw.get("value", 1.0),
        visibility=raw.get("visibility", 1.0),
        granularity=raw.get("granularity", 1.0),
        retention=raw.get("retention", 1.0),
    )


def _entry_preference_document(entry: Mapping) -> PreferenceDocument:
    """One provider entry's embedded preference document (structural only)."""
    return preference_document(
        {
            "provider": entry.get("provider"),
            "preferences": entry.get("preferences", []),
            **(
                {"attributes_provided": entry["attributes_provided"]}
                if "attributes_provided" in entry
                else {}
            ),
        }
    )


def preference_documents(raw: Mapping) -> tuple[PreferenceDocument, ...]:
    """The per-provider preference documents embedded in a population doc.

    A population document is, among other things, a bundle of preference
    documents.  Both the CLI's ``validate`` command and the linter need
    those documents individually; extracting them here keeps the two
    paths from drifting.  Structural breakage raises
    :class:`PolicyDocumentError`; semantic checking is the validator's
    and linter's job.
    """
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"population document must be a mapping, got {type(raw).__name__}"
        )
    documents = []
    for entry in raw.get("providers", []):
        if not isinstance(entry, Mapping):
            raise PolicyDocumentError(
                f"provider entries must be mappings, got {type(entry).__name__}"
            )
        documents.append(_entry_preference_document(entry))
    return tuple(documents)


def parse_population(raw: Mapping, taxonomy: Taxonomy) -> Population:
    """Build a :class:`Population` from a population document dict."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"population document must be a mapping, got {type(raw).__name__}"
        )
    unknown = set(raw) - {"providers", "attribute_sensitivities"}
    if unknown:
        raise PolicyDocumentError(
            f"population document has unknown keys {sorted(unknown)}"
        )
    if "providers" not in raw:
        raise PolicyDocumentError("population document missing 'providers'")
    providers = []
    for entry in raw["providers"]:
        if not isinstance(entry, Mapping):
            raise PolicyDocumentError(
                f"provider entries must be mappings, got {type(entry).__name__}"
            )
        unknown = set(entry) - _PROVIDER_KEYS
        if unknown:
            raise PolicyDocumentError(
                f"provider entry has unknown keys {sorted(unknown)}"
            )
        preferences = parse_preferences(
            _entry_preference_document(entry), taxonomy
        )
        sensitivities = {
            attribute: _parse_sensitivity_record(
                record,
                context=f"provider {entry.get('provider')!r}/{attribute!r}",
            )
            for attribute, record in entry.get("sensitivities", {}).items()
        }
        threshold = entry.get("threshold")
        providers.append(
            Provider(
                preferences=preferences,
                sensitivity=sensitivities,
                threshold=math.inf if threshold is None else float(threshold),
                segment=entry.get("segment"),
            )
        )
    return Population(
        providers,
        attribute_sensitivities=dict(raw.get("attribute_sensitivities", {})),
    )


def population_to_dict(
    population: Population, taxonomy: Taxonomy | None = None
) -> dict:
    """Render a :class:`Population` as a population document dict."""
    from .serializer import preferences_to_dict

    providers = []
    for provider in population:
        entry: dict = preferences_to_dict(provider.preferences, taxonomy)
        if provider.segment is not None:
            entry["segment"] = provider.segment
        if not math.isinf(provider.threshold):
            entry["threshold"] = provider.threshold
        if provider.sensitivity:
            entry["sensitivities"] = {
                attribute: {
                    "value": record.value,
                    "visibility": record.dimension_weight(Dimension.VISIBILITY),
                    "granularity": record.dimension_weight(
                        Dimension.GRANULARITY
                    ),
                    "retention": record.dimension_weight(Dimension.RETENTION),
                }
                for attribute, record in sorted(provider.sensitivity.items())
            }
        providers.append(entry)
    return {
        "attribute_sensitivities": population.attribute_sensitivities.as_dict(),
        "providers": providers,
    }


def population_from_json(text: str, taxonomy: Taxonomy) -> Population:
    """Parse a JSON population document string."""
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError as error:
        raise PolicyDocumentError(
            f"invalid population JSON: {error}"
        ) from error
    return parse_population(decoded, taxonomy)


def population_to_json(
    population: Population, taxonomy: Taxonomy | None = None, *, indent: int = 2
) -> str:
    """Render a :class:`Population` as JSON text."""
    return json.dumps(
        population_to_dict(population, taxonomy), indent=indent
    )

"""Render a :class:`LintReport` as text, JSON, or SARIF.

The text form is for terminals, the JSON form for scripting, and the
SARIF 2.1.0 form for code-scanning UIs (GitHub code scanning consumes it
directly).  SARIF maps severities ``error``/``warning``/``info`` onto its
``error``/``warning``/``note`` levels.
"""

from __future__ import annotations

import json

from ..exceptions import LintConfigurationError
from .diagnostics import FIELD_ORDER, Diagnostic, Severity
from .registry import all_rules
from .report import LintReport

#: The output formats the CLI accepts.
FORMATS = ("text", "json", "sarif")

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render(
    report: LintReport,
    format: str = "text",
    *,
    artifacts: dict[str, str] | None = None,
) -> str:
    """Render *report* in the named format.

    *artifacts* (SARIF only) maps document kinds to the file paths the
    findings point into; other formats ignore it.
    """
    if format == "text":
        return render_text(report)
    if format == "json":
        return render_json(report)
    if format == "sarif":
        return render_sarif(report, artifacts=artifacts)
    raise LintConfigurationError(
        f"unknown lint output format {format!r}; expected one of "
        f"{', '.join(FORMATS)}"
    )


def render_text(report: LintReport) -> str:
    """One line per diagnostic plus a summary line."""
    lines = [str(diagnostic) for diagnostic in report.diagnostics]
    summary = report.summary()
    if summary["total"]:
        lines.append(
            f"{summary['total']} finding(s): {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), {summary['infos']} info(s)"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int = 2) -> str:
    """The report's dict form as JSON text (key-sorted, so byte-stable)."""
    return json.dumps(report.as_dict(), indent=indent, sort_keys=True)


def render_sarif(
    report: LintReport,
    *,
    indent: int = 2,
    artifacts: dict[str, str] | None = None,
) -> str:
    """A SARIF 2.1.0 log with the full rule catalogue attached.

    *artifacts* maps document kinds (``"policy"``, ``"population"``,
    ...) to the file paths the findings point into; unmapped kinds fall
    back to ``<kind>.json``.  Each result carries both a logical
    location (the model-level path) and a physical location whose region
    encodes the entry index as a line and the offending field as a
    column — an honest approximation for code-scanning UIs that insist
    on regions, documented in ``docs/linting.md``.
    """
    catalogue = all_rules()
    rule_indices = {info.code: index for index, info in enumerate(catalogue)}
    rules = [
        {
            "id": info.code,
            "name": info.title.title().replace(" ", "").replace("-", ""),
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.description},
            "defaultConfiguration": {"level": _SARIF_LEVELS[info.severity]},
            "properties": {"layer": info.layer.value, "scope": info.scope},
        }
        for info in catalogue
    ]
    results = [
        _sarif_result(diagnostic, rule_indices, artifacts or {})
        for diagnostic in report.diagnostics
    ]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/linting"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=indent, sort_keys=True)


def _sarif_result(
    diagnostic: Diagnostic,
    rule_indices: dict[str, int],
    artifacts: dict[str, str],
) -> dict:
    location = diagnostic.location
    fq_name = location.describe()
    if location.field:
        fq_name = f"{fq_name}.{location.field}"
    result = {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": artifacts.get(
                            location.document, f"{location.document}.json"
                        ),
                    },
                    "region": {
                        "startLine": (
                            location.index + 1
                            if location.index is not None
                            else 1
                        ),
                        "startColumn": (
                            FIELD_ORDER[location.field] + 1
                            if location.field in FIELD_ORDER
                            else 1
                        ),
                    },
                },
                "logicalLocations": [
                    {
                        "fullyQualifiedName": fq_name,
                        "kind": location.document,
                    }
                ],
            }
        ],
        "properties": dict(diagnostic.payload),
    }
    rule_index = rule_indices.get(diagnostic.code)
    if rule_index is not None:
        result["ruleIndex"] = rule_index
    return result

"""E3 — Section 9 (Eqs. 25-31): the policy-expansion trade-off.

Sweeps widening levels over a Westin population and prints, per level, the
full Section 9 ledger: defaults, ``N_future``, both utilities, and the
break-even extra utility ``T*`` of Eq. 31.  Asserts that the closed form
agrees with the direct utility comparison at every level (exact claim) and
that ``T*`` grows with widening (more defaults demand more compensation).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import break_even_extra_utility
from repro.simulation import run_expansion_sweep

from conftest import emit


def _sweep(scenario, max_steps=5):
    return run_expansion_sweep(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        max_steps=max_steps,
        per_provider_utility=scenario.per_provider_utility,
        extra_utility_per_step=scenario.extra_utility_per_step,
        scenario_name=scenario.name,
    )


def test_section9_ledger(benchmark, healthcare_200):
    sweep = benchmark(_sweep, healthcare_200)

    rows = [
        [
            row.step,
            row.n_current,
            row.n_current - row.n_future,
            row.n_future,
            row.extra_utility,
            row.utility_current,
            row.utility_future,
            row.break_even_extra_utility,
            "yes" if row.justified else "no",
        ]
        for row in sweep.rows
    ]
    emit(
        f"Section 9 expansion ledger ({healthcare_200.name}, "
        f"U={healthcare_200.per_provider_utility}, "
        f"T/step={healthcare_200.extra_utility_per_step})",
        format_table(
            [
                "step",
                "N_cur",
                "defaults",
                "N_fut",
                "T",
                "U_cur",
                "U_fut",
                "T* (Eq.31)",
                "justified",
            ],
            rows,
        ),
    )

    # Eq. 31 agrees with the direct comparison at every level (exact).
    for row in sweep.rows:
        closed_form = break_even_extra_utility(
            healthcare_200.per_provider_utility, row.n_current, row.n_future
        )
        assert row.break_even_extra_utility == pytest.approx(closed_form)
        assert row.justified == (row.utility_future > row.utility_current)

    # T* is non-decreasing in widening (defaults only accumulate).
    thresholds = [row.break_even_extra_utility for row in sweep.rows]
    assert thresholds == sorted(thresholds)

    # Section 9's setup: the current policy defaults nobody.
    assert sweep.rows[0].n_future == sweep.rows[0].n_current


def test_paper_worked_expansion(benchmark, paper_fixture):
    """Section 9's formula on the paper's own example: Ted defaults, so
    with U=10 the house needs T > 10*(3/2 - 1) = 5 per provider."""
    from repro.core import assess_expansion

    policy, population = paper_fixture

    def assess():
        return (
            assess_expansion(population, policy, 10.0, 4.0),
            assess_expansion(population, policy, 10.0, 5.0),
            assess_expansion(population, policy, 10.0, 6.0),
        )

    below, at, above = benchmark(assess)
    emit(
        "Eq. 31 on the Section 8 example (U=10, T* = 5)",
        format_table(
            ["T", "U_future", "justified"],
            [
                [4.0, below.utility_future, "yes" if below.justified else "no"],
                [5.0, at.utility_future, "yes" if at.justified else "no"],
                [6.0, above.utility_future, "yes" if above.justified else "no"],
            ],
        ),
    )
    assert below.break_even_extra_utility == pytest.approx(5.0)
    assert not below.justified
    assert not at.justified  # strict inequality
    assert above.justified

"""Vectorized batch evaluation of the violation model.

The reference engine (:class:`~repro.core.engine.ViolationEngine`)
evaluates one policy over one population with a per-provider Python loop
— ideal as an executable specification, linear but slow as a serving
path.  This package is the production path:

* :class:`~repro.perf.compiled.CompiledPopulation` — a one-time
  compilation of a population (plus its sensitivity and default models)
  into dense NumPy arrays;
* :class:`~repro.perf.batch.BatchViolationEngine` — vectorized
  Definition 1 / Eqs. 12-16 / Definitions 2-5 over those arrays, with
  policy fingerprinting, report caching, and incremental re-evaluation
  of single-rule policy deltas;
* :func:`~repro.perf.sweep.batch_assess_expansion` — Section 9 economics
  read directly off a batch report.

The batch engine matches the reference engine exactly (see
``tests/properties/test_batch_parity.py``); ``docs/performance.md``
describes the compile/evaluate/sweep lifecycle and when to prefer which
engine.
"""

from .batch import (
    BatchReport,
    BatchViolationEngine,
    policy_fingerprint,
)
from .compiled import CompiledColumn, CompiledPopulation, RANK_AXES
from .sweep import batch_assess_expansion

__all__ = [
    "BatchReport",
    "BatchViolationEngine",
    "CompiledColumn",
    "CompiledPopulation",
    "RANK_AXES",
    "batch_assess_expansion",
    "policy_fingerprint",
]

"""Core privacy-violation model (the paper's primary contribution).

This package implements, symbol for symbol, the formal machinery of
*Quantifying Privacy Violations* (Banerjee et al., SDM@VLDB 2011):

* privacy dimensions and ordered domains (paper assumptions 1-2),
* privacy tuples and the policy/preference sets ``HP`` and
  ``ProviderPref_i`` (Section 4, Eqs. 1-6),
* the binary violation indicator ``w_i`` (Definition 1),
* violation probability ``P(W)`` and the alpha-PPDB (Definitions 2-3),
* sensitivity-weighted severity ``Violation_i`` (Section 6, Eqs. 10-16),
* data-provider default and ``P(Default)`` (Definitions 4-5), and
* the policy-expansion economics of Section 9 (Eqs. 25-31).
"""

from .dimensions import Dimension, ORDERED_DIMENSIONS, OrderedDomain
from .tuples import PrivacyTuple, PolicyEntry, PreferenceEntry
from .policy import HousePolicy
from .preferences import ProviderPreferences, effective_preferences
from .sensitivity import (
    AttributeSensitivities,
    DimensionSensitivity,
    ProviderSensitivity,
    SensitivityModel,
)
from .violation import (
    ViolationFinding,
    comp,
    conf,
    diff,
    exceeded_dimensions,
    find_violations,
    violation_indicator,
)
from .severity import SeverityBreakdown, provider_violation, total_violations
from .default import DefaultModel, provider_default
from .probability import (
    TrialEstimate,
    default_probability,
    estimate_probability_by_trials,
    violation_probability,
)
from .population import Population, Provider
from .ppdb import PPDBCertificate, certify_alpha_ppdb, is_alpha_ppdb
from .economics import (
    ExpansionAssessment,
    assess_expansion,
    break_even_extra_utility,
    expansion_justified,
    utility_current,
    utility_future,
)
from .engine import EngineReport, ProviderOutcome, ViolationEngine

__all__ = [
    "Dimension",
    "ORDERED_DIMENSIONS",
    "OrderedDomain",
    "PrivacyTuple",
    "PolicyEntry",
    "PreferenceEntry",
    "HousePolicy",
    "ProviderPreferences",
    "effective_preferences",
    "AttributeSensitivities",
    "DimensionSensitivity",
    "ProviderSensitivity",
    "SensitivityModel",
    "ViolationFinding",
    "comp",
    "conf",
    "diff",
    "exceeded_dimensions",
    "find_violations",
    "violation_indicator",
    "SeverityBreakdown",
    "provider_violation",
    "total_violations",
    "DefaultModel",
    "provider_default",
    "TrialEstimate",
    "default_probability",
    "estimate_probability_by_trials",
    "violation_probability",
    "Population",
    "Provider",
    "PPDBCertificate",
    "certify_alpha_ppdb",
    "is_alpha_ppdb",
    "ExpansionAssessment",
    "assess_expansion",
    "break_even_extra_utility",
    "expansion_justified",
    "utility_current",
    "utility_future",
    "EngineReport",
    "ProviderOutcome",
    "ViolationEngine",
]

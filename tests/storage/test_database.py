"""Unit tests for PrivacyDatabase lifecycle and high-level operations."""

from __future__ import annotations

import pytest

from repro.core import HousePolicy, PrivacyTuple
from repro.exceptions import SchemaMismatchError, StorageError
from repro.storage import PrivacyDatabase, SCHEMA_VERSION


class TestLifecycle:
    def test_create_in_memory(self):
        db = PrivacyDatabase.create(":memory:")
        assert db.certify(1.0).satisfied
        db.close()

    def test_create_on_disk_and_reopen(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "ppdb.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with PrivacyDatabase.open(path) as db:
            report = db.engine().report()
            assert report.n_providers == 3
            assert report.total_violations == 140.0

    def test_create_refuses_to_clobber(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "ppdb.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with pytest.raises(StorageError):
            PrivacyDatabase.create(path)

    def test_open_non_database_raises(self, tmp_path):
        path = str(tmp_path / "other.sqlite")
        import sqlite3

        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE unrelated (x INT)")
        connection.commit()
        connection.close()
        with pytest.raises(SchemaMismatchError):
            PrivacyDatabase.open(path)

    def test_open_wrong_version_raises(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "ppdb.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        import sqlite3

        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        connection.commit()
        connection.close()
        with pytest.raises(SchemaMismatchError):
            PrivacyDatabase.open(path)

    def test_context_manager_rolls_back_on_error(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "ppdb.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with pytest.raises(RuntimeError):
            with PrivacyDatabase.open(path) as db:
                db.repository.put_datum("Alice", "Weight", "60")
                raise RuntimeError("boom")
        with PrivacyDatabase.open(path) as db:
            assert db.repository.get_datum("Alice", "Weight") is None

    def test_schema_version_constant(self):
        assert SCHEMA_VERSION == 1


class TestHighLevelOperations:
    @pytest.fixture()
    def db(self, paper_policy, paper_population):
        database = PrivacyDatabase.create(":memory:")
        database.install(paper_policy, paper_population)
        yield database
        database.close()

    def test_engine_matches_in_memory_model(self, db, paper_engine):
        stored = db.engine().report()
        direct = paper_engine.report()
        assert stored.violation_probability == direct.violation_probability
        assert stored.default_probability == direct.default_probability
        assert stored.total_violations == direct.total_violations

    def test_certify(self, db):
        assert not db.certify(0.5).satisfied
        assert db.certify(0.7).satisfied

    def test_set_policy_records_audit_event(self, db):
        narrower = HousePolicy(
            [("Weight", PrivacyTuple("pr", 0, 0, 0))], name="narrow"
        )
        db.set_policy(narrower)
        events = list(db.audit_log.events())
        assert any(e.event == "policy-changed" for e in events)
        assert db.repository.load_policy().name == "narrow"

    def test_evict_defaulted_removes_ted(self, db):
        evicted = db.evict_defaulted()
        assert evicted == ("Ted",)
        report = db.engine().report()
        assert report.n_providers == 2
        assert report.n_defaulted == 0

    def test_evict_idempotent(self, db):
        db.evict_defaulted()
        assert db.evict_defaulted() == ()

    def test_install_transactionality(self, paper_policy, paper_population):
        db = PrivacyDatabase.create(":memory:")
        db.install(paper_policy, paper_population)
        with pytest.raises(StorageError):
            # Installing again must fail (duplicate providers) without
            # corrupting the store.
            db.install(paper_policy, paper_population)
        assert db.engine().report().n_providers == 3
        db.close()

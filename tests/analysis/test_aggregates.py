"""Unit tests for population summaries."""

from __future__ import annotations

import pytest

from repro.analysis import summarize
from repro.core import ViolationEngine


class TestSummarizePaperExample:
    def test_overall_counts(self, paper_engine):
        summary = summarize(paper_engine.report())
        assert summary.overall.n == 3
        assert summary.overall.n_violated == 2
        assert summary.overall.n_defaulted == 1

    def test_rates(self, paper_engine):
        overall = summarize(paper_engine.report()).overall
        assert overall.violation_rate == pytest.approx(2 / 3)
        assert overall.default_rate == pytest.approx(1 / 3)

    def test_severity_stats(self, paper_engine):
        overall = summarize(paper_engine.report()).overall
        assert overall.mean_severity == pytest.approx(140 / 3)
        assert overall.median_severity == 60.0
        assert overall.max_severity == 80.0

    def test_unlabeled_grouping(self, paper_engine):
        summary = summarize(paper_engine.report())
        assert [s.segment for s in summary.by_segment] == ["(unlabeled)"]

    def test_unknown_segment_lookup_raises(self, paper_engine):
        summary = summarize(paper_engine.report())
        with pytest.raises(KeyError):
            summary.segment("fundamentalist")


class TestSummarizeScenario:
    def test_segments_present(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        summary = summarize(engine.report())
        names = {s.segment for s in summary.by_segment}
        assert names == {"fundamentalist", "pragmatist", "unconcerned"}

    def test_segment_sizes_sum_to_overall(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        summary = summarize(engine.report())
        assert sum(s.n for s in summary.by_segment) == summary.overall.n

    def test_fundamentalists_default_most_under_widening(self, small_healthcare):
        from repro.simulation import WideningStep, widen

        widened = widen(
            small_healthcare.policy,
            WideningStep.uniform(2),
            small_healthcare.taxonomy,
        )
        engine = ViolationEngine(widened, small_healthcare.population)
        summary = summarize(engine.report())
        fundamentalist = summary.segment("fundamentalist")
        unconcerned = summary.segment("unconcerned")
        assert fundamentalist.default_rate > unconcerned.default_rate

    def test_to_text_renders(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        text = summarize(engine.report()).to_text()
        assert "population summary" in text
        assert "ALL" in text
        assert "pragmatist" in text

"""Unit tests for house strategies."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.exceptions import GameError
from repro.game import CautiousHouse, FixedWidening, GreedyWidening, HouseStrategy
from repro.simulation import WideningStep


@dataclass
class Round:
    """Minimal stand-in for a game round."""

    round_index: int
    n_remaining: int
    utility: float


STEP = WideningStep.uniform(1)


class TestProtocol:
    def test_strategies_satisfy_protocol(self):
        for strategy in (
            FixedWidening(STEP, 3),
            GreedyWidening(STEP),
            CautiousHouse(STEP),
        ):
            assert isinstance(strategy, HouseStrategy)


class TestFixedWidening:
    def test_widens_for_configured_rounds(self):
        strategy = FixedWidening(STEP, 2)
        assert strategy.propose([Round(0, 10, 10.0)]) == STEP
        assert strategy.propose([Round(0, 10, 10.0), Round(1, 9, 11.0)]) == STEP

    def test_stops_after_rounds(self):
        strategy = FixedWidening(STEP, 2)
        history = [Round(i, 10, 10.0) for i in range(3)]
        assert strategy.propose(history) is None

    def test_noop_step_rejected(self):
        with pytest.raises(GameError):
            FixedWidening(WideningStep({}), 2)

    def test_zero_rounds_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            FixedWidening(STEP, 0)


class TestGreedyWidening:
    def test_continues_while_improving(self):
        strategy = GreedyWidening(STEP)
        history = [Round(0, 10, 10.0), Round(1, 9, 12.0)]
        assert strategy.propose(history) == STEP

    def test_stops_after_utility_drop(self):
        strategy = GreedyWidening(STEP)
        history = [Round(0, 10, 10.0), Round(1, 9, 12.0), Round(2, 5, 8.0)]
        assert strategy.propose(history) is None

    def test_flat_utility_counts_as_not_worse(self):
        strategy = GreedyWidening(STEP)
        history = [Round(0, 10, 10.0), Round(1, 10, 10.0)]
        assert strategy.propose(history) == STEP

    def test_max_rounds_cap(self):
        strategy = GreedyWidening(STEP, max_rounds=1)
        history = [Round(0, 10, 10.0), Round(1, 10, 20.0)]
        assert strategy.propose(history) is None

    def test_first_round_always_widens(self):
        strategy = GreedyWidening(STEP)
        assert strategy.propose([Round(0, 10, 10.0)]) == STEP


class TestCautiousHouse:
    def test_widens_within_budget(self):
        strategy = CautiousHouse(STEP, attrition_budget=0.2)
        history = [Round(0, 10, 10.0), Round(1, 9, 11.0)]
        assert strategy.propose(history) == STEP

    def test_stops_over_budget(self):
        strategy = CautiousHouse(STEP, attrition_budget=0.2)
        history = [Round(0, 10, 10.0), Round(1, 7, 8.0)]
        assert strategy.propose(history) is None

    def test_boundary_is_inclusive(self):
        strategy = CautiousHouse(STEP, attrition_budget=0.1)
        history = [Round(0, 10, 10.0), Round(1, 9, 11.0)]  # exactly 10%
        assert strategy.propose(history) == STEP

    def test_invalid_budget_rejected(self):
        with pytest.raises(GameError):
            CautiousHouse(STEP, attrition_budget=1.5)

    def test_empty_history_widens(self):
        assert CautiousHouse(STEP).propose([]) == STEP

"""The :class:`PrivacyDatabase`: top-level handle over the sqlite store.

One object owning the connection lifecycle and offering the high-level
operations a deployment needs:

* create a fresh privacy database (in memory or on disk) or open an
  existing one (with a schema-version check);
* store / load whole model objects (policy, population);
* store raw data values alongside the privacy metadata;
* build a :class:`~repro.core.engine.ViolationEngine` from the *stored*
  state — the bridge proving the sqlite store and the in-memory model
  agree (tested property: engine-from-store equals engine-from-objects);
* hand out an :class:`~repro.storage.enforcement.AccessGate` and the
  :class:`~repro.storage.audit.AuditLog`.
"""

from __future__ import annotations

import sqlite3
from types import TracebackType

from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..exceptions import CorruptDatabaseError, SchemaMismatchError, StorageError
from ..obs import active_observer
from .audit import AuditLog
from .enforcement import AccessGate, EnforcementMode
from .queries import connect
from .repository import Repository
from .schema import DDL_STATEMENTS, EXPECTED_TABLES, SCHEMA_VERSION


class PrivacyDatabase:
    """A privacy-preserving database over one sqlite connection.

    Use the classmethods to obtain instances::

        db = PrivacyDatabase.create(":memory:")
        db = PrivacyDatabase.create("clinic.db")
        db = PrivacyDatabase.open("clinic.db")

    The object is a context manager; leaving the ``with`` block commits
    (on success) or rolls back (on error) and closes the connection.
    """

    def __init__(self, connection: sqlite3.Connection) -> None:
        self._connection = connection
        self._repository = Repository(connection)
        self._audit = AuditLog(connection)

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, path: str = ":memory:") -> "PrivacyDatabase":
        """Create a fresh database at *path* (``":memory:"`` for in-memory).

        Raises
        ------
        StorageError
            If *path* already contains our tables (refuse to clobber).
        """
        connection = connect(path)
        existing = {
            row["name"]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        if existing & EXPECTED_TABLES:
            connection.close()
            raise StorageError(
                f"{path!r} already contains a privacy database; "
                f"use PrivacyDatabase.open()"
            )
        for statement in DDL_STATEMENTS:
            connection.execute(statement)
        connection.execute(
            "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        connection.commit()
        return cls(connection)

    @classmethod
    def open(cls, path: str) -> "PrivacyDatabase":
        """Open an existing database, verifying integrity and schema.

        Runs ``PRAGMA integrity_check`` before trusting the file, then
        verifies the expected tables and the stored schema version.

        Raises
        ------
        CorruptDatabaseError
            If the file is not a readable sqlite database or fails the
            integrity check.
        SchemaMismatchError
            If the file is a healthy sqlite database but not one of ours
            (missing tables or wrong schema version).
        """
        try:
            connection = connect(path)
        except sqlite3.DatabaseError as error:
            # The connection pragmas already tripped over the file — it
            # is not sqlite at all (WAL setup reads the header).
            raise CorruptDatabaseError(
                f"{path!r} is not a readable sqlite database: {error}"
            ) from error
        obs = active_observer()
        if obs is not None:
            obs.inc("storage.integrity_checks")
        try:
            verdicts = [
                row[0] for row in connection.execute("PRAGMA integrity_check")
            ]
        except sqlite3.DatabaseError as error:
            connection.close()
            if obs is not None:
                obs.inc("storage.integrity_failures")
            raise CorruptDatabaseError(
                f"{path!r} is not a readable sqlite database: {error}"
            ) from error
        if verdicts != ["ok"]:
            connection.close()
            if obs is not None:
                obs.inc("storage.integrity_failures")
            raise CorruptDatabaseError(
                f"{path!r} failed integrity check: {'; '.join(verdicts[:3])}"
            )
        tables = {
            row["name"]
            for row in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        missing = EXPECTED_TABLES - tables
        if missing:
            connection.close()
            raise SchemaMismatchError(
                f"{path!r} is not a privacy database (missing tables: "
                f"{sorted(missing)})"
            )
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        version = None if row is None else row["value"]
        if version != str(SCHEMA_VERSION):
            connection.close()
            raise SchemaMismatchError(
                f"{path!r} has schema version {version!r}, "
                f"expected {SCHEMA_VERSION!r}"
            )
        return cls(connection)

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "PrivacyDatabase":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        try:
            if exc_type is None:
                self._connection.commit()
            else:
                # A rollback failure (already-closed or broken connection)
                # must not mask the exception already unwinding the block.
                try:
                    self._connection.rollback()
                except sqlite3.Error:
                    pass
        finally:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass

    # -- accessors ----------------------------------------------------------

    @property
    def repository(self) -> Repository:
        """Row-level CRUD."""
        return self._repository

    @property
    def audit_log(self) -> AuditLog:
        """The append-only audit log."""
        return self._audit

    def gate(
        self,
        *,
        mode: EnforcementMode = EnforcementMode.ENFORCE,
        implicit_zero: bool = True,
        degraders=None,
    ) -> AccessGate:
        """An access gate over this database.

        *degraders* optionally maps attribute names to
        :class:`~repro.storage.granularity.ValueDegrader` records so
        returned values are coarsened to each request's granularity.
        """
        return AccessGate(
            self._connection,
            mode=mode,
            implicit_zero=implicit_zero,
            degraders=degraders,
        )

    # -- high-level operations ----------------------------------------------

    def install(
        self, policy: HousePolicy, population: Population
    ) -> None:
        """Store a policy and a population in one transaction."""
        try:
            with self._connection:
                self._repository.store_population(population)
                # A policy may legitimately cover attributes nobody has
                # supplied yet; register them so the policy can be stored.
                for entry in policy:
                    self._repository.ensure_attribute(entry.attribute)
                self._repository.replace_policy(policy)
        except sqlite3.Error as error:
            raise StorageError(f"install failed: {error}") from error

    def set_policy(self, policy: HousePolicy) -> None:
        """Replace the stored policy, recording the change in the audit log."""
        old = self._repository.load_policy()
        with self._connection:
            self._repository.replace_policy(policy)
        self._audit.record_policy_change(
            f"policy {old.name!r} ({len(old)} entries) -> "
            f"{policy.name!r} ({len(policy)} entries)"
        )

    def engine(self, *, implicit_zero: bool = True) -> ViolationEngine:
        """A :class:`ViolationEngine` over the *stored* policy and population."""
        return ViolationEngine(
            self._repository.load_policy(),
            self._repository.load_population(),
            implicit_zero=implicit_zero,
        )

    def certify(self, alpha: float) -> PPDBCertificate:
        """Definition 3's certificate over the stored state."""
        return self.engine().certify(alpha)

    def evict_defaulted(self) -> tuple[str, ...]:
        """Remove every provider the stored state says has defaulted.

        The storage-level realisation of Definition 4: defaulted providers
        leave and their data stops being collected.  Returns the evicted
        ids (audit-logged as a policy-changed event for traceability).
        """
        report = self.engine().report()
        defaulted = tuple(str(pid) for pid in report.defaulted_ids())
        with self._connection:
            for provider_id in defaulted:
                self._repository.remove_provider(provider_id)
        if defaulted:
            self._audit.record_policy_change(
                f"evicted {len(defaulted)} defaulted providers"
            )
        return defaulted

"""``sweep --journal`` composes with ``--workers``: the PR lifted the ban.

The mutual exclusion used to be the CLI's answer to a hard problem —
a parallel sweep had no shard-level checkpoints, so a crash threw away
partial levels.  The supervised pool journals each shard completion, so
now the invariants are: (a) a journaled parallel sweep equals a plain
serial sweep byte-for-byte, (b) a crashed journaled parallel sweep
resumes to the identical ledger, (c) the worker count is free to change
between the crash and the resume because it is not part of the journal
fingerprint.
"""

from __future__ import annotations

import glob
import json

import pytest

from repro.cli import main
from repro.exceptions import ProcessKilled
from repro.resilience import FaultPlan, FaultSpec

from tests.cli.test_cli import _base_args, documents  # noqa: F401

STEPS = ["--steps", "3", "--utility", "10", "--extra-per-step", "2"]


def _run_json(argv, capsys) -> tuple[int, str]:
    code = main(argv)
    return code, capsys.readouterr().out


def _serial_ledger(documents, capsys) -> str:  # noqa: F811
    code, out = _run_json(
        ["sweep", *_base_args(documents), *STEPS, "--json"], capsys
    )
    assert code == 0
    return out


def test_journal_and_workers_compose(documents, tmp_path, capsys):  # noqa: F811
    serial = _serial_ledger(documents, capsys)
    code, parallel = _run_json(
        [
            "sweep",
            *_base_args(documents),
            *STEPS,
            "--json",
            "--workers",
            "2",
            "--journal",
            str(tmp_path / "sweep.journal"),
        ],
        capsys,
    )
    assert code == 0
    assert parallel == serial
    assert glob.glob("/dev/shm/pvl_*") == []


def test_crashed_parallel_sweep_resumes_byte_identical(
    documents, tmp_path, capsys  # noqa: F811
):
    serial = _serial_ledger(documents, capsys)
    journal = str(tmp_path / "sweep.journal")
    # Crash after the first level has been journaled.
    plan = FaultPlan([FaultSpec(site="sweep.step", kind="kill", at=1)])
    with plan.activate():
        code = main(
            [
                "sweep",
                *_base_args(documents),
                *STEPS,
                "--json",
                "--workers",
                "2",
                "--journal",
                journal,
            ]
        )
    assert code == 2
    err = capsys.readouterr().err
    assert "error[PVL906]" in err
    # Resume under a *different* worker count: the journal fingerprint
    # does not include it, and replayed shards merge identically.
    code, resumed = _run_json(
        [
            "sweep",
            *_base_args(documents),
            *STEPS,
            "--json",
            "--workers",
            "3",
            "--journal",
            journal,
            "--resume",
        ],
        capsys,
    )
    assert code == 0
    assert resumed == serial
    assert glob.glob("/dev/shm/pvl_*") == []


def test_resume_from_parallel_journal_with_serial_workers(
    documents, tmp_path, capsys  # noqa: F811
):
    serial = _serial_ledger(documents, capsys)
    journal = str(tmp_path / "sweep.journal")
    plan = FaultPlan([FaultSpec(site="sweep.step", kind="kill", at=2)])
    with plan.activate():
        code = main(
            [
                "sweep",
                *_base_args(documents),
                *STEPS,
                "--json",
                "--workers",
                "2",
                "--journal",
                journal,
            ]
        )
    assert code == 2
    capsys.readouterr()
    code, resumed = _run_json(
        [
            "sweep",
            *_base_args(documents),
            *STEPS,
            "--json",
            "--journal",
            journal,
            "--resume",
        ],
        capsys,
    )
    assert code == 0
    assert resumed == serial
    assert glob.glob("/dev/shm/pvl_*") == []


def test_guarded_composes_with_workers(documents, capsys):  # noqa: F811
    serial = _serial_ledger(documents, capsys)
    code, guarded = _run_json(
        [
            "sweep",
            *_base_args(documents),
            *STEPS,
            "--json",
            "--workers",
            "2",
            "--guarded",
        ],
        capsys,
    )
    assert code == 0
    assert guarded == serial
    assert glob.glob("/dev/shm/pvl_*") == []

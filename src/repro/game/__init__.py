"""Game-theoretic extension (Sections 9-10 future work).

The paper observes that weakening its simplifying assumptions "leads
naturally to a game theoretic setting where one can examine the balance
between the competing interests of a house and its data providers".  This
package supplies the simplest faithful instantiation:

* :mod:`repro.game.players` — house widening strategies (fixed, greedy,
  cautious) against threshold-driven provider behaviour;
* :mod:`repro.game.bestresponse` — the house's one-shot best response:
  the widening level maximising future utility over a sweep;
* :mod:`repro.game.equilibrium` — the iterated widening game and its
  stopping point, where no further widening is profitable.
"""

from .players import CautiousHouse, FixedWidening, GreedyWidening, HouseStrategy
from .bestresponse import BestResponse, best_response
from .equilibrium import GameRound, GameTrace, play_widening_game

__all__ = [
    "CautiousHouse",
    "FixedWidening",
    "GreedyWidening",
    "HouseStrategy",
    "BestResponse",
    "best_response",
    "GameRound",
    "GameTrace",
    "play_widening_game",
]

"""Analysis-layer view over static-analysis results.

:class:`LintReport` (defined in :mod:`repro.lint.report`, re-exported
here as part of the analysis surface) aggregates the linter's coded
diagnostics; :func:`lint_report_table` renders it as the same fixed-width
table style the rest of the analysis layer uses, so audit pipelines can
print violation reports and lint reports side by side.
"""

from __future__ import annotations

from ..lint.report import LintReport
from .tables import format_table

__all__ = ["LintReport", "lint_report_table"]


def lint_report_table(report: LintReport, *, title: str = "lint report") -> str:
    """A fixed-width table of the report's diagnostics.

    One row per diagnostic: code, severity, location, message.  An empty
    report renders a single "no findings" row so the table is always
    printable.
    """
    if not report.diagnostics:
        return format_table(
            ["code", "severity", "location", "message"],
            [["-", "-", "-", "no findings"]],
            title=title,
        )
    rows = [
        [
            diagnostic.code,
            diagnostic.severity.value,
            diagnostic.location.describe(),
            diagnostic.message,
        ]
        for diagnostic in report.diagnostics
    ]
    return format_table(
        ["code", "severity", "location", "message"], rows, title=title
    )

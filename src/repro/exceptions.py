"""Exception hierarchy for the privacy-violation model.

Every error raised by :mod:`repro` derives from :class:`PrivacyModelError`,
so callers embedding the library can catch one base class.  Subclasses are
grouped by subsystem: model construction, taxonomy/domain handling, policy
documents, storage, and simulation.
"""

from __future__ import annotations

import sqlite3


class PrivacyModelError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(PrivacyModelError, ValueError):
    """An argument or document failed semantic validation.

    Raised when values are structurally well-formed Python objects but
    violate a model constraint (for instance a negative sensitivity, an
    unknown dimension name, or a privacy level outside its domain).
    """


class DomainError(ValidationError):
    """A value does not belong to the ordered domain it was used with."""

    def __init__(self, domain_name: str, value: object) -> None:
        self.domain_name = domain_name
        self.value = value
        super().__init__(f"value {value!r} is not a level of domain {domain_name!r}")


class UnknownAttributeError(ValidationError):
    """A policy, preference, or datum referenced an attribute not in the schema."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        super().__init__(f"unknown attribute {attribute!r}")


class UnknownPurposeError(ValidationError):
    """A privacy tuple referenced a purpose not registered with the taxonomy."""

    def __init__(self, purpose: str) -> None:
        self.purpose = purpose
        super().__init__(f"unknown purpose {purpose!r}")


class UnknownProviderError(PrivacyModelError, KeyError):
    """An operation referenced a data provider the model has never seen."""

    def __init__(self, provider_id: object) -> None:
        self.provider_id = provider_id
        super().__init__(f"unknown data provider {provider_id!r}")


class PolicyDocumentError(ValidationError):
    """A policy/preference document could not be parsed or serialized."""


class LintConfigurationError(ValidationError):
    """The static analyzer was configured inconsistently.

    Raised for unknown rule codes in ``--select``/``--ignore``, unknown
    severities, unknown output formats, and malformed lint options — not
    for problems *in* the analyzed documents, which are reported as
    diagnostics instead.
    """


class StorageError(PrivacyModelError):
    """Base class for errors raised by the sqlite-backed privacy store."""


class SchemaMismatchError(StorageError):
    """The on-disk database schema does not match the library's schema."""


class CorruptDatabaseError(StorageError, sqlite3.DatabaseError):
    """The database file failed sqlite's integrity verification.

    Derives from :class:`sqlite3.DatabaseError` as well so callers
    catching raw sqlite corruption keep working after the storage layer
    started classifying it.
    """


class AccessDeniedError(StorageError):
    """An access request was rejected by the enforcement gate.

    Carries the structured decision so callers (and the audit log) can
    explain exactly which preference tuples were exceeded.
    """

    def __init__(self, message: str, decision: object = None) -> None:
        self.decision = decision
        super().__init__(message)


class ResilienceError(PrivacyModelError):
    """Base class for errors raised by the resilience layer."""


class FaultConfigError(ResilienceError, ValueError):
    """A fault plan or fault spec was configured inconsistently."""


class ProcessKilled(ResilienceError):
    """A scripted fault simulated the process dying at an injection site.

    Raised (never silently swallowed) so crash-recovery tests can kill a
    run at an exact checkpoint boundary and then resume it.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"simulated process kill at fault site {site!r}")


class ProcessStalled(ResilienceError):
    """A scripted fault simulated the process hanging at an injection site.

    The supervised worker pool turns this into a real OS-level stall
    (the worker SIGSTOPs itself), which is how the chaos suite exercises
    the stall watchdog: heartbeats cease, the per-shard timeout fires,
    and the supervisor kills and replaces the wedged worker.
    """

    def __init__(self, site: str) -> None:
        self.site = site
        super().__init__(f"simulated process stall at fault site {site!r}")


class JournalError(ResilienceError):
    """Base class for run-journal problems (missing, foreign, unreadable)."""


class JournalCorruptionError(JournalError):
    """A run journal failed checksum or structural verification.

    The journal is never trusted past the corruption point: resuming from
    a corrupt journal is refused outright rather than risking a silently
    wrong ledger or certificate.
    """


class JournalMismatchError(JournalError):
    """A run journal belongs to a different run than the one resuming.

    Raised when the journal's kind or input fingerprint does not match
    the inputs of the run asking to resume from it.
    """


class ParallelExecutionError(PrivacyModelError):
    """The parallel shard executor lost a worker or its shared state.

    Raised when a worker process dies mid-task (a real crash, an OOM
    kill, or the chaos suite's scripted ``kill`` fault), or when the
    shared-memory segment backing the compiled population cannot be
    attached.  The executor cleans up its shared-memory block before
    raising, so no segments leak past the error.
    """


class SimulationError(PrivacyModelError):
    """A simulation scenario was configured inconsistently."""


class GameError(PrivacyModelError):
    """A game-theoretic routine was configured inconsistently."""

"""Ablation — which dimension is cheapest to widen?

The model's sensitivities make the three ordered dimensions economically
*different*: a rank of visibility costs the house a different number of
defaults than a rank of granularity or retention, because providers weight
them differently (Eq. 14's ``s_i^a[dim]``).  This ablation widens each
dimension in isolation over the same population and compares the damage —
the analysis a house would run before deciding *how* to widen, not just
how far.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Dimension, ORDERED_DIMENSIONS, ViolationEngine
from repro.simulation import WideningStep, widen

from conftest import emit


def test_dimension_choice(benchmark, healthcare_200):
    scenario = healthcare_200

    def widen_each():
        results = {}
        for dimension in ORDERED_DIMENSIONS:
            policy = widen(
                scenario.policy,
                WideningStep.along(dimension, 2),
                scenario.taxonomy,
                name=f"+2 {dimension.value}",
            )
            report = ViolationEngine(policy, scenario.population).report()
            results[dimension] = report
        uniform = widen(
            scenario.policy,
            WideningStep.uniform(2),
            scenario.taxonomy,
            name="+2 uniform",
        )
        results["uniform"] = ViolationEngine(
            uniform, scenario.population
        ).report()
        return results

    results = benchmark(widen_each)

    rows = []
    for key, report in results.items():
        label = key.value if isinstance(key, Dimension) else key
        rows.append(
            [
                label,
                round(report.violation_probability, 3),
                round(report.default_probability, 3),
                round(report.total_violations, 0),
            ]
        )
    emit(
        "Ablation: +2 ranks along one dimension at a time (healthcare)",
        format_table(
            ["widened dimension", "P(W)", "P(Default)", "Violations"], rows
        ),
    )

    per_dimension = [results[d] for d in ORDERED_DIMENSIONS]
    uniform = results["uniform"]
    # Single-dimension widening is never worse than widening everything.
    for report in per_dimension:
        assert report.default_probability <= uniform.default_probability
        assert report.total_violations <= uniform.total_violations
    # The dimensions are genuinely inequivalent on this population: the
    # cheapest and the dearest choice differ in total severity.
    severities = sorted(r.total_violations for r in per_dimension)
    assert severities[0] < severities[-1]
    # Uniform widening violates at least as many providers as any single
    # dimension (w_i is monotone in the policy).
    for report in per_dimension:
        assert report.n_violated <= uniform.n_violated

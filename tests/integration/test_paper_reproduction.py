"""End-to-end reproduction checks for every experiment in DESIGN.md."""

from __future__ import annotations

import pytest

from repro.core import (
    Dimension,
    ViolationEngine,
    break_even_extra_utility,
    estimate_probability_by_trials,
)
from repro.datasets import (
    healthcare_scenario,
    paper_example_policy,
    paper_example_population,
)
from repro.simulation import run_expansion_sweep
from repro.taxonomy import violation_dimensions


class TestE1Table1:
    """E1: the worked example, exactly."""

    def test_full_pipeline(self):
        engine = ViolationEngine(
            paper_example_policy(), paper_example_population()
        )
        report = engine.report()
        assert report.total_violations == 140.0
        assert report.violation_probability == 2 / 3
        assert report.default_probability == 1 / 3

    def test_trial_estimator_converges_to_paper_probability(self):
        engine = ViolationEngine(
            paper_example_policy(), paper_example_population()
        )
        indicators = {
            o.provider_id: int(o.defaulted) for o in engine.outcomes()
        }
        estimate = estimate_probability_by_trials(indicators, 300_000, seed=0)
        assert estimate.exact == pytest.approx(1 / 3)
        assert estimate.absolute_error < 0.01


class TestE2Figure1:
    """E2: the geometric panels, via the taxonomy box view AND the core."""

    def test_panel_a_no_violation(self):
        from repro.core import PrivacyTuple, exceeded_dimensions

        preference = PrivacyTuple("p", 3, 3, 3)
        policy = PrivacyTuple("p", 2, 2, 2)
        assert violation_dimensions(preference, policy) == ()
        assert exceeded_dimensions(preference, policy) == ()

    def test_panel_b_one_dimension(self):
        from repro.core import PrivacyTuple

        preference = PrivacyTuple("p", 3, 1, 3)
        policy = PrivacyTuple("p", 2, 2, 2)
        assert violation_dimensions(preference, policy) == (
            Dimension.GRANULARITY,
        )

    def test_panel_c_two_dimensions(self):
        from repro.core import PrivacyTuple

        preference = PrivacyTuple("p", 1, 1, 3)
        policy = PrivacyTuple("p", 2, 2, 2)
        assert len(violation_dimensions(preference, policy)) == 2


class TestE3BreakEven:
    """E3: Eq. 31's closed form agrees with direct utility comparison."""

    def test_sweep_justification_matches_closed_form(self):
        scenario = healthcare_scenario(80, seed=5)
        sweep = run_expansion_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=4,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        for row in sweep.rows:
            closed_form = break_even_extra_utility(
                scenario.per_provider_utility, row.n_current, row.n_future
            )
            assert row.break_even_extra_utility == pytest.approx(closed_form)
            direct = row.utility_future > row.utility_current
            assert row.justified == direct


class TestE4DetrimentalAccumulation:
    """E4: the abstract's claim — widening eventually hurts the house."""

    def test_rise_then_fall_with_crossover(self):
        scenario = healthcare_scenario(150, seed=11)
        sweep = run_expansion_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=5,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        utilities = [row.utility_future for row in sweep.rows]
        base = utilities[0]
        assert max(utilities[1:]) > base  # widening pays at first
        assert sweep.crossover_step() is not None  # then turns detrimental
        assert utilities[-1] < base  # and stays detrimental in range


class TestE5AlphaPPDB:
    """E5: P(W) monotone under widening; certification flips at alpha."""

    def test_monotone_and_flipping(self):
        scenario = healthcare_scenario(80, seed=7)
        sweep = run_expansion_sweep(
            scenario.population, scenario.policy, scenario.taxonomy, max_steps=4
        )
        probabilities = [row.violation_probability for row in sweep.rows]
        assert probabilities == sorted(probabilities)
        assert probabilities[0] == 0.0
        assert probabilities[-1] > 0.5

    def test_certification_consistency(self):
        scenario = healthcare_scenario(60, seed=7)
        engine = ViolationEngine(scenario.policy, scenario.population)
        for alpha in (0.0, 0.1, 0.5, 1.0):
            certificate = engine.certify(alpha)
            assert certificate.satisfied == (
                certificate.violation_probability <= alpha
            )

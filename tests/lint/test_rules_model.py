"""Fire/silent tests for the cross-document model rules PVL101-PVL110."""

from __future__ import annotations

from repro.lint import LintConfig, lint_documents

from .conftest import rule


def codes(report):
    return [d.code for d in report.diagnostics]


def run(taxonomy, code, **kwargs):
    return lint_documents(taxonomy, select=[code], **kwargs)


class TestPVL101GuaranteedViolation:
    def test_fires_when_every_supplier_is_violated(self, taxonomy,
                                                   clean_population):
        # Both providers prefer less than "all"/"specific"/"indefinite"
        # except "high", so narrow the population to the violated one.
        clean_population["providers"] = clean_population["providers"][1:]
        policy = {"name": "base", "rules": [rule()]}
        report = run(taxonomy, "PVL101", policy=policy,
                     population=clean_population)
        assert codes(report) == ["PVL101"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["violated_providers"] == ["low"]
        assert diagnostic.payload["forces_violation_probability_one"] is True
        assert "P(W) = 1" in diagnostic.message

    def test_notes_partial_segment_without_pw_one(self, taxonomy,
                                                  clean_population):
        # Add a provider supplying a different attribute: the violated
        # segment no longer spans the whole population.
        clean_population["providers"].append(
            {
                "provider": "other",
                "preferences": [
                    rule(attribute="age", visibility="all",
                         granularity="specific", retention="indefinite")
                ],
            }
        )
        clean_population["providers"] = clean_population["providers"][1:]
        policy = {"name": "base", "rules": [rule(), rule(attribute="age")]}
        report = run(taxonomy, "PVL101", policy=policy,
                     population=clean_population)
        fired = report.with_code("PVL101")
        assert len(fired) == 1
        assert fired[0].payload["attribute"] == "weight"
        assert fired[0].payload["forces_violation_probability_one"] is False
        assert "P(W) = 1" not in fired[0].message

    def test_silent_when_some_supplier_tolerates(self, taxonomy, clean_policy,
                                                 clean_population):
        report = run(taxonomy, "PVL101", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []

    def test_silent_on_empty_population(self, taxonomy, clean_policy):
        report = run(taxonomy, "PVL101", policy=clean_policy,
                     population={"providers": []})
        assert codes(report) == []


class TestPVL102ShadowedRule:
    def test_fires_when_wider_rule_dominates(self, taxonomy):
        policy = {
            "name": "base",
            "rules": [
                rule(),
                rule(visibility="all", granularity="specific",
                     retention="indefinite"),
            ],
        }
        report = run(taxonomy, "PVL102", policy=policy)
        assert codes(report) == ["PVL102"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.index == 0
        assert diagnostic.payload["shadowed_by"] == 1

    def test_silent_on_incomparable_rules(self, taxonomy):
        policy = {
            "name": "base",
            "rules": [
                rule(visibility="all"),
                rule(retention="indefinite"),
            ],
        }
        report = run(taxonomy, "PVL102", policy=policy)
        assert codes(report) == []

    def test_silent_across_attributes(self, taxonomy):
        policy = {
            "name": "base",
            "rules": [
                rule(),
                rule(attribute="age", visibility="all",
                     granularity="specific", retention="indefinite"),
            ],
        }
        report = run(taxonomy, "PVL102", policy=policy)
        assert codes(report) == []


class TestPVL103UnreachablePurpose:
    def test_fires_for_unused_registered_purpose(self, clean_policy):
        from repro.taxonomy import standard_taxonomy

        taxonomy = standard_taxonomy(["billing", "marketing"])
        report = run(taxonomy, "PVL103", policy=clean_policy)
        assert codes(report) == ["PVL103"]
        assert report.diagnostics[0].payload["purpose"] == "marketing"

    def test_silent_when_all_purposes_used(self, taxonomy, clean_policy,
                                           clean_population):
        report = run(taxonomy, "PVL103", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL104ZeroSensitivity:
    def test_fires_on_zero_attribute_sensitivity(self, taxonomy, clean_policy,
                                                 clean_population):
        clean_population["attribute_sensitivities"]["weight"] = 0
        report = run(taxonomy, "PVL104", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL104"]
        assert report.diagnostics[0].payload["attribute"] == "weight"

    def test_fires_on_zero_provider_dimension_weight(self, taxonomy,
                                                     clean_policy,
                                                     clean_population):
        clean_population["providers"][0]["sensitivities"] = {
            "weight": {"value": 1.0, "visibility": 0.0}
        }
        report = run(taxonomy, "PVL104", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL104"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.name == "high"
        assert diagnostic.payload["field"] == "visibility"

    def test_silent_on_positive_weights(self, taxonomy, clean_policy,
                                        clean_population):
        report = run(taxonomy, "PVL104", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL105DeadPolicyRule:
    def test_fires_when_no_provider_supplies_attribute(self, taxonomy,
                                                       clean_population):
        policy = {"name": "base", "rules": [rule(), rule(attribute="age")]}
        report = run(taxonomy, "PVL105", policy=policy,
                     population=clean_population)
        assert codes(report) == ["PVL105"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.index == 1
        assert diagnostic.payload["attribute"] == "age"
        assert diagnostic.payload["population_empty"] is False
        assert "no provider supplies it" in diagnostic.message

    def test_fires_with_empty_population_reason(self, taxonomy, clean_policy):
        report = run(taxonomy, "PVL105", policy=clean_policy,
                     population={"providers": []})
        assert codes(report) == ["PVL105"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["population_empty"] is True
        assert "the population is empty" in diagnostic.message

    def test_silent_when_all_attributes_supplied(self, taxonomy, clean_policy,
                                                 clean_population):
        report = run(taxonomy, "PVL105", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL106InertPreference:
    def test_fires_for_uncollected_attribute(self, taxonomy, clean_policy,
                                             clean_population):
        clean_population["providers"][0]["preferences"].append(
            rule(attribute="shoe-size")
        )
        report = run(taxonomy, "PVL106", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL106"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.name == "high"
        assert diagnostic.payload["attribute"] == "shoe-size"

    def test_silent_when_policy_covers_attribute(self, taxonomy, clean_policy,
                                                 clean_population):
        report = run(taxonomy, "PVL106", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL107DominatedPreference:
    def test_fires_when_one_preference_dominates_another(self, taxonomy,
                                                         clean_policy,
                                                         clean_population):
        clean_population["providers"][1]["preferences"].append(
            rule(visibility="all", granularity="specific",
                 retention="indefinite")
        )
        report = run(taxonomy, "PVL107", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL107"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.name == "low"
        assert diagnostic.location.index == 1
        assert diagnostic.payload["dominates"] == 0

    def test_silent_on_distinct_purposes(self, clean_policy,
                                         clean_population):
        from repro.taxonomy import standard_taxonomy

        taxonomy = standard_taxonomy(["billing", "marketing"])
        clean_population["providers"][1]["preferences"].append(
            rule(purpose="marketing", visibility="all",
                 granularity="specific", retention="indefinite")
        )
        report = run(taxonomy, "PVL107", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []

    def test_silent_on_clean(self, taxonomy, clean_policy, clean_population):
        report = run(taxonomy, "PVL107", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL110StaticAlphaPPDB:
    def test_fires_when_alpha_exceeded(self, taxonomy, clean_policy,
                                       clean_population):
        report = run(taxonomy, "PVL110", policy=clean_policy,
                     population=clean_population,
                     config=LintConfig(alpha=0.25))
        assert codes(report) == ["PVL110"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["violated_providers"] == ["low"]
        assert diagnostic.payload["violation_probability"] == 0.5
        assert diagnostic.payload["alpha"] == 0.25

    def test_silent_when_alpha_satisfied(self, taxonomy, clean_policy,
                                         clean_population):
        report = run(taxonomy, "PVL110", policy=clean_policy,
                     population=clean_population,
                     config=LintConfig(alpha=0.5))
        assert codes(report) == []

    def test_silent_without_alpha_configured(self, taxonomy, clean_policy,
                                             clean_population):
        report = run(taxonomy, "PVL110", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []

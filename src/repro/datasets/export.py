"""Export bundled scenarios as policy-language document files.

The linter (and any other document-driven tooling) consumes raw JSON
documents, while the bundled datasets produce lowered model objects.
This module is the bridge: :func:`scenario_documents` serialises one
:class:`~repro.datasets.scenario.Scenario` back into its taxonomy,
policy, and population documents, and :func:`export_scenario` writes
them to disk, which is what ``make lint-populations`` and the
``lint-populations`` CI job lint.

Runnable directly::

    python -m repro.datasets.export --out build/datasets
    python -m repro.datasets.export --out /tmp/x --providers 25 --seed 3

Exports are deterministic for a given ``(name, providers, seed)``, so
golden tests can pin their diagnostic snapshots to them.
"""

from __future__ import annotations

import argparse
import json
import os

from ..policy_lang.population_doc import population_to_dict
from ..policy_lang.serializer import policy_to_dict
from ..policy_lang.taxonomy_doc import taxonomy_to_dict
from ..storage import atomic_write_text
from . import (
    crm_scenario,
    government_scenario,
    healthcare_scenario,
    paper_example_scenario,
    social_network_scenario,
)
from .scenario import Scenario

#: The bundled dataset factories by name.  ``paper_example`` is fixed
#: (Table 1 has exactly three providers); the domain scenarios accept a
#: population size and seed.
DATASETS = {
    "crm": lambda n, seed: crm_scenario(n, seed=seed),
    "government": lambda n, seed: government_scenario(n, seed=seed),
    "healthcare": lambda n, seed: healthcare_scenario(n, seed=seed),
    "paper_example": lambda n, seed: paper_example_scenario(),
    "social_network": lambda n, seed: social_network_scenario(n, seed=seed),
}

#: Default per-dataset population size for exports (kept small: the
#: export exists for document-level tooling, not throughput tests).
DEFAULT_PROVIDERS = 12


def scenario_documents(scenario: Scenario) -> dict[str, dict]:
    """The scenario's raw documents, keyed by document kind."""
    return {
        "taxonomy": taxonomy_to_dict(scenario.taxonomy),
        "policy": policy_to_dict(scenario.policy, scenario.taxonomy),
        "population": population_to_dict(
            scenario.population, scenario.taxonomy
        ),
    }


def export_scenario(scenario: Scenario, out_dir: str | os.PathLike) -> dict[str, str]:
    """Write the scenario's documents under ``<out_dir>/<scenario.name>/``.

    Returns the written paths keyed by document kind.  Files are written
    atomically and byte-stably (key-sorted JSON, trailing newline).
    """
    target = os.path.join(os.fspath(out_dir), scenario.name)
    os.makedirs(target, exist_ok=True)
    paths: dict[str, str] = {}
    for kind, document in scenario_documents(scenario).items():
        path = os.path.join(target, f"{kind}.json")
        atomic_write_text(
            path, json.dumps(document, indent=2, sort_keys=True) + "\n"
        )
        paths[kind] = path
    return paths


def export_all(
    out_dir: str | os.PathLike,
    *,
    n_providers: int = DEFAULT_PROVIDERS,
    seed: int | None = None,
) -> dict[str, dict[str, str]]:
    """Export every bundled dataset; returns paths by dataset and kind.

    *seed* of ``None`` keeps each dataset's own default seed, so the
    default export matches what the test suite and benchmarks use.
    """
    written: dict[str, dict[str, str]] = {}
    for name in sorted(DATASETS):
        if seed is None:
            scenario = (
                paper_example_scenario()
                if name == "paper_example"
                else _default_seed_scenario(name, n_providers)
            )
        else:
            scenario = DATASETS[name](n_providers, seed)
        written[name] = export_scenario(scenario, out_dir)
    return written


def _default_seed_scenario(name: str, n_providers: int) -> Scenario:
    factory = {
        "crm": lambda n: crm_scenario(n),
        "government": lambda n: government_scenario(n),
        "healthcare": lambda n: healthcare_scenario(n),
        "social_network": lambda n: social_network_scenario(n),
    }[name]
    return factory(n_providers)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.datasets.export",
        description="Export the bundled scenarios as JSON documents.",
    )
    parser.add_argument(
        "--out", required=True, help="directory to write <dataset>/<kind>.json under"
    )
    parser.add_argument(
        "--providers",
        type=int,
        default=DEFAULT_PROVIDERS,
        help=f"population size per domain dataset (default {DEFAULT_PROVIDERS})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override every dataset's seed (default: each dataset's own)",
    )
    args = parser.parse_args(argv)
    written = export_all(
        args.out, n_providers=args.providers, seed=args.seed
    )
    for name in sorted(written):
        print(f"{name}: {', '.join(sorted(written[name]))}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())

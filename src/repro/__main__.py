"""``python -m repro``: the command-line interface."""

from .cli import main

raise SystemExit(main())

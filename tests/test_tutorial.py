"""The tutorial's code blocks must stay runnable as the library evolves."""

from __future__ import annotations

import pathlib
import re

TUTORIAL = (
    pathlib.Path(__file__).resolve().parents[1] / "docs" / "model_tutorial.md"
)


def test_tutorial_blocks_execute_in_sequence():
    text = TUTORIAL.read_text(encoding="utf-8")
    blocks = re.findall(r"```python\n(.*?)```", text, re.S)
    assert len(blocks) >= 8, "tutorial lost its code blocks"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        exec(compile(block, f"<tutorial block {index}>", "exec"), namespace)
    # Spot-check the load-bearing results the prose claims.
    assert namespace["engine"].outcome("ted").violation == 60.0
    assert namespace["decision"].values == {"ted": "80..90"}
    assert namespace["decision"].violates

"""Violation matrices: who is violated, where, and how badly.

A :class:`ViolationMatrix` reorganises an engine evaluation into the two
marginals an auditor reads first:

* **provider x attribute** — the severity each provider accumulates on
  each attribute (the paper's breadth-vs-depth distinction made visible:
  a provider defaulting on breadth has many moderate cells; one
  defaulting on depth has a single hot cell);
* **dimension totals** — how much of the total severity flows through
  visibility vs granularity vs retention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.dimensions import Dimension, ORDERED_DIMENSIONS
from ..core.engine import EngineReport
from .tables import format_table


@dataclass(frozen=True)
class ViolationMatrix:
    """Severity decomposed by provider, attribute, and dimension."""

    providers: tuple[Hashable, ...]
    attributes: tuple[str, ...]
    cells: dict[tuple[Hashable, str], float]
    dimension_totals: dict[Dimension, float]
    provider_totals: dict[Hashable, float]
    attribute_totals: dict[str, float]

    @property
    def total(self) -> float:
        """Equation 16's house-level ``Violations``."""
        return sum(self.provider_totals.values())

    def cell(self, provider_id: Hashable, attribute: str) -> float:
        """Severity for one (provider, attribute) cell (0 when untouched)."""
        return self.cells.get((provider_id, attribute), 0.0)

    def hottest_cells(self, n: int = 5) -> list[tuple[Hashable, str, float]]:
        """The *n* largest cells, descending."""
        ranked = sorted(
            (
                (provider, attribute, severity)
                for (provider, attribute), severity in self.cells.items()
            ),
            key=lambda item: (-item[2], repr(item[0]), item[1]),
        )
        return ranked[:n]

    def to_text(self, *, max_providers: int = 20) -> str:
        """A fixed-width rendering (rows truncated to *max_providers*)."""
        headers = ["provider", *self.attributes, "total"]
        rows = []
        for provider in self.providers[:max_providers]:
            rows.append(
                [
                    str(provider),
                    *(
                        self.cell(provider, attribute)
                        for attribute in self.attributes
                    ),
                    self.provider_totals.get(provider, 0.0),
                ]
            )
        footer = [
            "TOTAL",
            *(self.attribute_totals.get(a, 0.0) for a in self.attributes),
            self.total,
        ]
        rows.append(footer)
        return format_table(headers, rows, title="violation matrix")


def violation_matrix(report: EngineReport) -> ViolationMatrix:
    """Build the matrix from an engine report's findings."""
    cells: dict[tuple[Hashable, str], float] = {}
    dimension_totals: dict[Dimension, float] = {
        dim: 0.0 for dim in ORDERED_DIMENSIONS
    }
    provider_totals: dict[Hashable, float] = {}
    attribute_totals: dict[str, float] = {}
    attributes: set[str] = set()
    for outcome in report.outcomes:
        provider_totals[outcome.provider_id] = outcome.violation
        for finding in outcome.findings:
            key = (outcome.provider_id, finding.attribute)
            cells[key] = cells.get(key, 0.0) + finding.weighted
            dimension_totals[finding.dimension] += finding.weighted
            attribute_totals[finding.attribute] = (
                attribute_totals.get(finding.attribute, 0.0) + finding.weighted
            )
            attributes.add(finding.attribute)
    return ViolationMatrix(
        providers=tuple(o.provider_id for o in report.outcomes),
        attributes=tuple(sorted(attributes)),
        cells=cells,
        dimension_totals=dimension_totals,
        provider_totals=provider_totals,
        attribute_totals=attribute_totals,
    )

"""Interval-censored threshold estimation.

Each observation brackets one provider's tolerance: ``v_i`` lies in
``(lower, upper]`` (departed) or ``(lower, inf)`` (never departed).  The
estimator produces:

* a per-provider point estimate (interval midpoint; for censored
  observations, the last tolerated severity — a conservative lower
  bound), and
* the population's **default-fraction curve** ``F(s)``: the estimated
  probability that a random provider's threshold lies below severity
  ``s``, i.e. the fraction expected to default at severity ``s``.

``F`` is a simple empirical estimator: at severity ``s``, departures with
``upper <= s`` certainly default, observations with ``lower >= s``
certainly do not, and intervals straddling ``s`` contribute the fraction
of their interval below ``s`` (a uniform-within-interval assumption —
the standard first-order treatment of interval censoring; a full Turnbull
NPMLE is overkill at these sample sizes and this estimator is what the
tests validate against ground truth).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from .._validation import check_real
from ..exceptions import ValidationError
from .observation import DefaultObservation


@dataclass(frozen=True, slots=True)
class ThresholdEstimate:
    """One provider's estimated tolerance."""

    provider_id: Hashable
    lower: float
    upper: float | None
    point: float

    @property
    def censored(self) -> bool:
        """True when only a lower bound is known."""
        return self.upper is None


class ThresholdEstimator:
    """Fit per-provider estimates and the default-fraction curve.

    Parameters
    ----------
    observations:
        The censored observations from :func:`observe_widening_history`
        (or a real deployment's records).
    """

    def __init__(self, observations: Sequence[DefaultObservation]) -> None:
        if not observations:
            raise ValidationError("cannot estimate from zero observations")
        self._observations = tuple(observations)

    @property
    def observations(self) -> tuple[DefaultObservation, ...]:
        """The fitted observations."""
        return self._observations

    def n_departed(self) -> int:
        """Observations with a known departure."""
        return sum(1 for obs in self._observations if not obs.censored)

    def estimates(self) -> list[ThresholdEstimate]:
        """Per-provider point estimates.

        Departed providers get the interval midpoint; censored providers
        get their last tolerated severity (a lower bound, flagged via
        ``censored``).
        """
        results = []
        for obs in self._observations:
            if obs.censored:
                point = obs.lower
            else:
                point = (obs.lower + obs.upper) / 2.0
            results.append(
                ThresholdEstimate(
                    provider_id=obs.provider_id,
                    lower=obs.lower,
                    upper=obs.upper,
                    point=point,
                )
            )
        return results

    def default_fraction(self, severity: float) -> float:
        """Estimated fraction of providers defaulting at *severity*.

        The uniform-within-interval empirical estimator described in the
        module docstring.  Monotone non-decreasing in *severity* and
        bounded in ``[0, 1]`` (both property-tested).
        """
        severity = check_real(severity, "severity", minimum=0.0)
        total = 0.0
        for obs in self._observations:
            if obs.censored:
                # Only known to tolerate `lower`; contributes nothing below
                # that and nothing certain above (conservative).
                continue
            if obs.upper <= severity:
                total += 1.0
            elif obs.lower < severity < obs.upper:
                width = obs.upper - obs.lower
                if width <= 0:
                    total += 1.0
                else:
                    total += (severity - obs.lower) / width
        return total / len(self._observations)

    def curve(self, severities: Sequence[float]) -> np.ndarray:
        """``default_fraction`` evaluated over a severity grid."""
        return np.array(
            [self.default_fraction(s) for s in severities], dtype=float
        )

    def severity_at_budget(
        self, budget_fraction: float, *, upper_bound: float | None = None
    ) -> float:
        """The largest severity whose predicted default fraction stays
        within *budget_fraction* (bisection on the monotone curve).

        *upper_bound* defaults to the largest finite observation bound.
        Returns 0.0 when even zero severity exceeds the budget (possible
        only with degenerate zero-width departure intervals): no positive
        severity is safe.
        """
        budget_fraction = check_real(
            budget_fraction, "budget_fraction", minimum=0.0
        )
        if budget_fraction >= 1.0:
            raise ValidationError("budget_fraction must be < 1")
        if self.default_fraction(0.0) > budget_fraction:
            return 0.0
        if upper_bound is None:
            finite = [
                obs.upper for obs in self._observations if obs.upper is not None
            ]
            finite += [obs.lower for obs in self._observations]
            upper_bound = max(finite) if finite else 0.0
        low, high = 0.0, float(upper_bound)
        if self.default_fraction(high) <= budget_fraction:
            return high
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.default_fraction(mid) <= budget_fraction:
                low = mid
            else:
                high = mid
        return low

"""Shared-memory packing of compiled-population arrays.

A :class:`SharedArrayPack` copies a dict of NumPy arrays into **one**
``multiprocessing.shared_memory`` block with a picklable offset table,
so a worker pool attaches the whole compilation with a single ``shm_open``
instead of re-pickling megabytes of arrays per task.  Ownership is
strictly parent-side:

* the creating process registers the segment with its resource tracker,
  and is the only one that ever unlinks it (:meth:`SharedArrayPack.close`);
* workers attach through :func:`attach_arrays`, which suppresses the
  child-side resource-tracker registration — otherwise a worker exiting
  (or being killed) would prompt *its* tracker to unlink a segment the
  parent still owns, and clean shutdowns would log spurious leak
  warnings for segments that were never theirs;
* a process that merely *inherited* a pack across ``fork`` (a pool
  worker holding the parent's executor object in its copied heap) never
  unlinks either — :meth:`close` checks the owning pid.

Crash hygiene
-------------
Executors close their packs on every normal and error path, but a parent
killed outright (SIGKILL, OOM) gets no chance to.  Two backstops cover
the survivable signals and the truly unsurvivable ones:

* every live pack is registered in a process-local set; an ``atexit``
  hook and a chained ``SIGTERM`` handler (installed lazily, only while
  packs exist, and only when no handler was set) close them on
  interpreter exit and polite termination;
* for SIGKILL there is nothing to hook, so segment names embed the
  owning pid (``pvl_<pid>_<hex>``) and :func:`stale_segments` /
  :func:`clean_stale_segments` — surfaced as ``repro doctor
  [--clean-shm]`` — detect and remove segments whose owner is gone.

Segment names carry a recognisable ``pvl_`` prefix so the chaos suite
can assert nothing leaked by listing ``/dev/shm`` (see
``tests/perf/test_parallel_chaos.py``).
"""

from __future__ import annotations

import atexit
import os
import re
import signal
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

#: ``(offset, dtype string, shape)`` per array — the picklable layout.
ArrayLayout = dict[str, tuple[int, str, tuple[int, ...]]]

#: Byte alignment of each packed array within the block.
_ALIGN = 64

#: Where POSIX shared memory is exposed as files on Linux.
SHM_DIR = "/dev/shm"

#: Segment names this package creates: ``pvl_<owner pid>_<random hex>``.
_SEGMENT_NAME = re.compile(r"^pvl_(\d+)_[0-9a-f]+$")


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class SharedArrayPack:
    """One shared-memory block holding many named arrays.

    The block is created and filled eagerly; :attr:`name` and
    :attr:`layout` are all a worker needs to map every array back with
    :func:`attach_arrays`.  The pack owns the segment: :meth:`close`
    (idempotent, also the context-manager exit) closes the mapping and
    unlinks the name, after which no new attachments are possible.
    Unlinking is owner-only — a forked child that inherited the object
    closes its mapping but leaves the name to the parent.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        layout: ArrayLayout = {}
        offset = 0
        contiguous: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            layout[name] = (offset, array.dtype.str, tuple(array.shape))
            offset = _aligned(offset + array.nbytes)
        self._layout = layout
        self._owner_pid = os.getpid()
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_fresh_name()
        )
        for name, array in contiguous.items():
            start, dtype, shape = layout[name]
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._shm.buf, offset=start
            )
            view[...] = array
        self._closed = False
        _register_live_pack(self)

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @property
    def layout(self) -> ArrayLayout:
        """The picklable offset table (name -> offset, dtype, shape)."""
        return self._layout

    @property
    def nbytes(self) -> int:
        """Total size of the shared block in bytes."""
        return self._shm.size

    @property
    def closed(self) -> bool:
        """Whether the segment has been closed and unlinked."""
        return self._closed

    def close(self) -> None:
        """Close the mapping and unlink the segment.  Idempotent.

        Only the creating process unlinks; a forked inheritor merely
        drops its mapping (unlink authority stays with the owner, as for
        worker-side :func:`attach_arrays` attachments).
        """
        if self._closed:
            return
        self._closed = True
        _forget_live_pack(self)
        self._shm.close()
        if os.getpid() != self._owner_pid:
            return
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already gone (e.g. external cleanup)
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass


def attach_arrays(
    name: str, layout: ArrayLayout
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Worker-side attach: map every packed array out of segment *name*.

    Returns the open segment (the caller must keep it referenced —
    the arrays are views into its buffer) and the name -> array mapping.
    The attachment is **untracked**: the worker's resource tracker never
    learns about the segment, leaving unlink authority with the parent.
    """
    shm = _attach_untracked(name)
    arrays = {
        array_name: np.ndarray(
            shape, dtype=dtype, buffer=shm.buf, offset=offset
        )
        for array_name, (offset, dtype, shape) in layout.items()
    }
    return shm, arrays


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    try:
        # Python >= 3.13 supports opting out of tracking directly.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


def _fresh_name() -> str:
    # Recognisable prefix (leak checks grep /dev/shm for it) + the owner
    # pid (stale-segment detection checks whether it still runs) + a
    # random suffix against collisions with concurrent executors.
    return f"pvl_{os.getpid()}_{os.urandom(4).hex()}"


# ---------------------------------------------------------------------------
# crash hygiene: exit/signal cleanup for live packs, doctor for dead owners
# ---------------------------------------------------------------------------

#: Live packs created by *this* process (cleared on fork-inherited pids
#: by the owner check in ``close``).  Guarded by ``_CLEANUP_LOCK``.
_LIVE_PACKS: dict[int, SharedArrayPack] = {}
_CLEANUP_LOCK = threading.Lock()
_CLEANUP_INSTALLED = False


def _register_live_pack(pack: SharedArrayPack) -> None:
    with _CLEANUP_LOCK:
        _LIVE_PACKS[id(pack)] = pack
    _install_cleanup_hooks()


def _forget_live_pack(pack: SharedArrayPack) -> None:
    with _CLEANUP_LOCK:
        _LIVE_PACKS.pop(id(pack), None)


def _close_live_packs() -> None:
    """Close (and, owner-side, unlink) every still-open pack."""
    with _CLEANUP_LOCK:
        packs = list(_LIVE_PACKS.values())
    for pack in packs:
        try:
            pack.close()
        except Exception:  # cleanup must never mask the exit path
            pass


def _install_cleanup_hooks() -> None:
    """Idempotently install the atexit hook and a chained SIGTERM handler.

    The SIGTERM handler is installed only when the process has no
    handler of its own (``SIG_DFL``); it closes live packs, restores the
    default disposition, and re-raises the signal so the process still
    dies with the conventional termination status.  Applications that
    installed their own handler are left alone — the atexit hook still
    covers any path that unwinds the interpreter.
    """
    global _CLEANUP_INSTALLED
    if _CLEANUP_INSTALLED:
        return
    _CLEANUP_INSTALLED = True
    atexit.register(_close_live_packs)
    if threading.current_thread() is not threading.main_thread():
        return  # signal.signal is main-thread-only; atexit still covers us
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            signal.signal(signal.SIGTERM, _sigterm_cleanup)
    except (ValueError, OSError):  # pragma: no cover - exotic environments
        pass


def _sigterm_cleanup(signum: int, frame: object) -> None:
    _close_live_packs()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _pid_running(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # alive, owned by someone else
        return True
    return True


def stale_segments(directory: str = SHM_DIR) -> list[tuple[str, int]]:
    """``(segment name, dead owner pid)`` for every orphaned segment.

    A segment is stale when its name matches this package's
    ``pvl_<pid>_<hex>`` pattern and the owning pid no longer runs — the
    parent was killed before it could unlink (SIGKILL, OOM, power loss).
    Segments whose owner is alive are never reported, so a doctor run
    beside an active sweep is safe.
    """
    try:
        names = os.listdir(directory)
    except (FileNotFoundError, NotADirectoryError):  # non-Linux, containers
        return []
    stale: list[tuple[str, int]] = []
    for name in sorted(names):
        match = _SEGMENT_NAME.match(name)
        if match is None:
            continue
        pid = int(match.group(1))
        if not _pid_running(pid):
            stale.append((name, pid))
    return stale


def clean_stale_segments(directory: str = SHM_DIR) -> list[tuple[str, int]]:
    """Remove every stale segment; returns what was removed.

    Only segments :func:`stale_segments` reports — recognisable name,
    dead owner — are touched.  Removal races (another doctor, a resource
    tracker) are tolerated.
    """
    removed: list[tuple[str, int]] = []
    for name, pid in stale_segments(directory):
        try:
            os.unlink(os.path.join(directory, name))
        except FileNotFoundError:
            continue
        except OSError:
            continue
        removed.append((name, pid))
    return removed

"""`repro lint` and `repro validate` exit-code and format behaviour."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

DOCUMENTS = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "documents"
)


@pytest.fixture(scope="module")
def base_args():
    return [
        "--taxonomy",
        str(DOCUMENTS / "taxonomy.json"),
        "--policy",
        str(DOCUMENTS / "policy.json"),
        "--population",
        str(DOCUMENTS / "population.json"),
    ]


@pytest.fixture()
def broken_documents(tmp_path):
    """A policy with an unknown purpose plus a duplicated preference."""
    taxonomy = json.loads((DOCUMENTS / "taxonomy.json").read_text())
    policy = json.loads((DOCUMENTS / "policy.json").read_text())
    policy["rules"][0]["purpose"] = "resale"
    population = json.loads((DOCUMENTS / "population.json").read_text())
    population["providers"][0]["preferences"].append(
        dict(population["providers"][0]["preferences"][0])
    )
    paths = {}
    for name, payload in (
        ("taxonomy", taxonomy),
        ("policy", policy),
        ("population", population),
    ):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(payload))
        paths[name] = str(path)
    return [
        "--taxonomy", paths["taxonomy"],
        "--policy", paths["policy"],
        "--population", paths["population"],
    ]


class TestLintExitCodes:
    def test_paper_documents_exit_zero(self, base_args, capsys):
        # The Section 8 documents carry intentional population-layer
        # findings (Ted's inevitable default, subsumed preferences), but
        # none reaches the default --fail-on error gate.
        assert main(["lint", *base_args]) == 0
        out = capsys.readouterr().out
        assert "warning[PVL214]" in out
        assert "0 error(s)" in out

    def test_population_rules_can_be_silenced(self, base_args, capsys):
        code = main(
            ["lint", *base_args,
             "--ignore", "PVL211,PVL214", "--fail-on", "info"]
        )
        assert code == 0
        assert "no findings" in capsys.readouterr().out

    def test_error_findings_exit_one(self, broken_documents, capsys):
        assert main(["lint", *broken_documents]) == 1
        out = capsys.readouterr().out
        assert "error[PVL001]" in out
        assert "warning[PVL005]" in out

    def test_default_gate_ignores_warnings(self, broken_documents, capsys):
        # Suppress the error; only the duplicate-preference warning remains,
        # which the default --fail-on error gate lets through.
        code = main(["lint", *broken_documents, "--ignore", "PVL001"])
        assert code == 0
        assert "warning[PVL005]" in capsys.readouterr().out

    def test_fail_on_warning_tightens_gate(self, broken_documents, capsys):
        code = main(
            ["lint", *broken_documents, "--ignore", "PVL001",
             "--fail-on", "warning"]
        )
        assert code == 1

    def test_fail_on_never_always_exits_zero(self, broken_documents, capsys):
        assert main(["lint", *broken_documents, "--fail-on", "never"]) == 0

    def test_select_restricts_to_named_codes(self, broken_documents, capsys):
        assert main(["lint", *broken_documents, "--select", "PVL005"]) == 0
        out = capsys.readouterr().out
        assert "PVL005" in out
        assert "PVL001" not in out

    def test_alpha_gate_fails_on_paper_example(self, base_args, capsys):
        assert main(["lint", *base_args, "--alpha", "0.5"]) == 1
        assert "PVL110" in capsys.readouterr().out

    def test_candidate_break_even_bound(self, base_args, capsys):
        code = main(
            ["lint", *base_args,
             "--candidate", str(DOCUMENTS / "candidate.json"),
             "--max-extra-utility", "1", "--fail-on", "warning"]
        )
        assert code == 1
        assert "PVL202" in capsys.readouterr().out


class TestLintFormats:
    def test_json_format_is_parseable(self, broken_documents, capsys):
        main(["lint", *broken_documents, "--format", "json",
              "--fail-on", "never"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["total"] >= 2
        assert "PVL001" in payload["summary"]["codes"]

    def test_sarif_format_is_parseable(self, broken_documents, capsys):
        main(["lint", *broken_documents, "--format", "sarif",
              "--fail-on", "never"])
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"
        assert log["runs"][0]["results"]

    def test_taxonomy_only_run(self, capsys):
        code = main(
            ["lint", "--taxonomy", str(DOCUMENTS / "taxonomy.json")]
        )
        assert code == 0


class TestValidateExitCodes:
    def test_clean_documents_exit_zero(self, base_args, capsys):
        assert main(["validate", *base_args]) == 0
        assert "OK" in capsys.readouterr().out

    def test_problems_exit_one_with_legacy_prefix(self, broken_documents,
                                                  capsys):
        assert main(["validate", *broken_documents]) == 1
        out = capsys.readouterr().out
        assert "PROBLEM: policy 'section-8' rule 0: unknown purpose" in out

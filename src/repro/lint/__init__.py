"""``repro.lint`` — a static policy analyzer with coded diagnostics.

The paper's violation model is decidable from the documents alone: a
house policy tuple exceeding a provider preference tuple (Definition 1)
can be detected before any data is collected, and alpha-PPDB
certification (Definition 3) is a static property of the
policy/population pair.  This package performs that reasoning as a
linter: a registry of rules with stable codes (``PVL001``...), each
consuming the parsed documents and emitting structured
:class:`Diagnostic` objects with severities, source locations, and
machine-readable payloads.

Four layers (see ``docs/linting.md`` for the full catalogue):

* **document** (``PVL0xx``) — each document against the taxonomy:
  unknown purposes/levels, undeclared attributes, duplicate rows,
  non-monotone ladders;
* **model** (``PVL1xx``) — cross-document analysis: guaranteed
  violations, shadowed rules, unreachable purposes, zero sensitivities,
  dead rules, inert/dominated preferences, static alpha-PPDB
  certification with the witness segment;
* **economics** (``PVL201``-``PVL202``) — Eq. 31 sanity for candidate
  widenings: annihilated populations and unattainable break-even
  utilities;
* **population** (``PVL210``-``PVL214``) — the policy/population pair
  through the severity-interval abstraction
  (:mod:`repro.lint.intervals`): dead and subsumed preference clauses,
  vacuous policies, statically certifiable populations, statically
  inevitable defaults.

Entry points: :func:`lint_documents` (documents in, :class:`LintReport`
out), :func:`incremental_lint` (the same run decomposed into cached
global/per-provider passes with optional process fan-out), the
:mod:`~repro.lint.plugins` registration API for external rules, and the
``repro lint`` CLI subcommand (``--format text|json|sarif``,
severity-gated exit codes, ``--baseline`` ratcheting).
"""

from .baseline import (
    apply_baseline,
    diagnostic_fingerprint,
    load_baseline,
    write_baseline,
)
from .diagnostics import Diagnostic, Severity, SourceLocation
from .formats import (
    FORMATS,
    render,
    render_json,
    render_sarif,
    render_text,
)
from .incremental import LintCache, fingerprint, incremental_lint
from .intervals import (
    PopulationIntervals,
    ProviderSeverityBounds,
    SeverityInterval,
    interval_analysis,
)
from .plugins import lint_rule, load_entry_point_rules, plugin_load_errors
from .registry import (
    SCOPES,
    Layer,
    LintConfig,
    LintContext,
    RuleInfo,
    all_rules,
    get_rule,
    rules_fingerprint,
    run_rules,
    unregister_rule,
)
from .report import LintReport
from .runner import build_context, lint_documents

__all__ = [
    "Diagnostic",
    "FORMATS",
    "Layer",
    "LintCache",
    "LintConfig",
    "LintContext",
    "LintReport",
    "PopulationIntervals",
    "ProviderSeverityBounds",
    "RuleInfo",
    "SCOPES",
    "Severity",
    "SeverityInterval",
    "SourceLocation",
    "all_rules",
    "apply_baseline",
    "build_context",
    "diagnostic_fingerprint",
    "fingerprint",
    "get_rule",
    "incremental_lint",
    "interval_analysis",
    "lint_documents",
    "lint_rule",
    "load_baseline",
    "load_entry_point_rules",
    "plugin_load_errors",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_fingerprint",
    "run_rules",
    "unregister_rule",
    "write_baseline",
]

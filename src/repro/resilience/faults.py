"""Deterministic, seed-driven fault injection.

A :class:`FaultPlan` scripts *what* goes wrong *where*: each
:class:`FaultSpec` names an injection **site** (a stable string such as
``"db.execute"`` or ``"sweep.step"``), the fault **kind**, and either an
exact visit index (``at=3`` fires on the fourth visit to the site) or a
seeded per-visit probability.  Given the same plan, seed, and workload,
the same faults fire at the same points — chaos tests are replayable.

Fault kinds
-----------
``"locked"``
    Raise ``sqlite3.OperationalError("database is locked")`` — the
    contention error the storage layer must retry through.
``"disk_full"``
    Raise ``sqlite3.OperationalError("database or disk is full")``.
``"kill"``
    Raise :class:`~repro.exceptions.ProcessKilled` — a simulated process
    death at a checkpoint boundary.  Never caught by library code.
``"stall"``
    Raise :class:`~repro.exceptions.ProcessStalled` — a simulated hang.
    The supervised worker pool's task site turns it into a real SIGSTOP
    so the stall watchdog (not Python exception handling) must recover.
``"corrupt"``
    Flip one seeded byte of data passing through a byte site (journal
    payloads, exported documents), simulating silent media corruption.
``"nan"``
    Poison one seeded element of an array passing through an array site
    with ``NaN`` — the failure mode the engine guardrail must catch.
``"scale"``
    Multiply one seeded array element by a large factor, producing a
    finite-but-wrong severity (a divergence, not an obvious NaN).

Injection sites
---------------
``db.connect`` / ``db.execute`` / ``db.commit``
    The sqlite interposition points.  While a plan is :meth:`activated
    <FaultPlan.activate>`, every connection handed out by
    :func:`repro.storage.queries.connect` is wrapped in a
    :class:`FaultProxy` that consults the plan before each statement.
``journal.write``
    Bytes of a checkpoint payload about to be persisted.
``export.write``
    Bytes of a document about to be atomically exported.
``sweep.step`` / ``dynamics.round`` / ``forecast.observe``
    Fired by the resumable runners after each checkpoint commits —
    ``kill`` faults here model dying *between* rounds.
``engine.violations``
    The batch engine's severity array, inside
    :class:`~repro.resilience.guardrail.GuardedBatchEngine`.
"""

from __future__ import annotations

import os
import random
import sqlite3
from collections.abc import Iterable, Iterator
from contextlib import AbstractContextManager, contextmanager
from dataclasses import dataclass

import numpy as np

from ..exceptions import FaultConfigError, ProcessKilled, ProcessStalled
from ..obs import active_observer

#: The recognised fault kinds.
FAULT_KINDS = ("locked", "disk_full", "kill", "stall", "corrupt", "nan", "scale")

#: Kinds that raise at any site (as opposed to transforming data).
_RAISING_KINDS = ("locked", "disk_full", "kill", "stall")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scripted fault: where, what, and when it fires.

    Parameters
    ----------
    site:
        The injection-site name (see the module docstring).
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Fire on the ``at``-th visit to the site (0-based).  Mutually
        exclusive with *probability*.
    count:
        With *at*: fire on ``count`` consecutive visits starting at
        ``at`` (so ``at=0, count=3`` models a lock held across the first
        three attempts, released before the fourth).
    probability:
        Fire on each visit independently with this probability, drawn
        from the plan's seeded RNG.  Mutually exclusive with *at*.
    """

    site: str
    kind: str
    at: int | None = None
    count: int = 1
    probability: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if (self.at is None) == (self.probability is None):
            raise FaultConfigError(
                "exactly one of at= and probability= must be given"
            )
        if self.at is not None and self.at < 0:
            raise FaultConfigError("at must be >= 0")
        if self.count < 1:
            raise FaultConfigError("count must be >= 1")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError("probability must be in [0, 1]")

    def _fires(self, visit: int, rng: random.Random) -> bool:
        if self.at is not None:
            return self.at <= visit < self.at + self.count
        return rng.random() < self.probability  # type: ignore[operator]


def _make_error(spec: FaultSpec) -> BaseException:
    if spec.kind == "locked":
        return sqlite3.OperationalError("database is locked")
    if spec.kind == "disk_full":
        return sqlite3.OperationalError("database or disk is full")
    if spec.kind == "stall":
        return ProcessStalled(spec.site)
    return ProcessKilled(spec.site)


class FaultPlan:
    """A replayable schedule of faults over named injection sites.

    The plan tracks how many times each site has been visited; specs
    decide per visit whether they fire.  All randomness (probabilistic
    firing, which byte to flip, which element to poison) comes from one
    ``random.Random(seed)``, so a plan is a pure function of its
    construction arguments and the visit sequence.

    Fork awareness: a plan is armed only in the process that constructed
    it.  A child process forked while a plan is active (the parallel
    executor's worker pool, for instance) inherits the plan object and
    the global activation, but its visits are no-ops — otherwise every
    worker would replay the parent's seed-driven schedule from wherever
    the fork happened to land, double-firing faults the scenario
    scripted exactly once.  Workers that *should* fault construct a
    fresh plan after the fork (see
    :class:`~repro.perf.parallel.ShardExecutor`'s ``worker_faults``), or
    call :meth:`rearm` to adopt an inherited plan deliberately.
    """

    def __init__(self, faults: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self._faults = tuple(faults)
        for spec in self._faults:
            if not isinstance(spec, FaultSpec):
                raise FaultConfigError(
                    f"faults must be FaultSpec, got {type(spec).__name__}"
                )
        self._seed = seed
        self._rng = random.Random(seed)
        self._visits: dict[str, int] = {}
        self._fired: list[tuple[str, int, str]] = []
        self._owner_pid = os.getpid()

    @property
    def fired(self) -> tuple[tuple[str, int, str], ...]:
        """Every fault that fired so far, as ``(site, visit, kind)``."""
        return tuple(self._fired)

    @property
    def armed(self) -> bool:
        """Whether visits in *this* process can fire faults."""
        return os.getpid() == self._owner_pid

    def rearm(self, *, seed: int | None = None) -> None:
        """Adopt the plan in the current process, restarting its schedule.

        Resets the visit counts, the fired log, and the RNG (to *seed*,
        or the construction seed) and makes the calling process the
        owner.  This is the explicit opt-in for a forked child that
        wants its own copy of the schedule instead of the default
        disabled state.
        """
        self._owner_pid = os.getpid()
        if seed is not None:
            self._seed = seed
        self._rng = random.Random(self._seed)
        self._visits = {}
        self._fired = []

    def visits(self, site: str) -> int:
        """How many times *site* has been visited."""
        return self._visits.get(site, 0)

    def _visit(self, site: str) -> FaultSpec | None:
        if os.getpid() != self._owner_pid:
            # Forked child: the inherited plan is disarmed (see class
            # docstring).  Visits do not advance the schedule either, so
            # the parent's counters stay consistent if pages are shared.
            return None
        visit = self._visits.get(site, 0)
        self._visits[site] = visit + 1
        for spec in self._faults:
            if spec.site == site and spec._fires(visit, self._rng):
                self._fired.append((site, visit, spec.kind))
                obs = active_observer()
                if obs is not None:
                    obs.inc("faults.fired", site=site, kind=spec.kind)
                return spec
        return None

    # -- injection points ---------------------------------------------------

    def check(self, site: str) -> None:
        """Visit a raising site; raise if a raising fault fires there.

        Data-transforming kinds (``corrupt``/``nan``/``scale``) scripted
        against a raising site are a plan bug, reported loudly.
        """
        spec = self._visit(site)
        if spec is None:
            return
        if spec.kind not in _RAISING_KINDS:
            raise FaultConfigError(
                f"fault kind {spec.kind!r} cannot fire at raising site {site!r}"
            )
        raise _make_error(spec)

    def corrupt_bytes(self, site: str, data: bytes) -> bytes:
        """Visit a byte site; corrupt (or raise) when a fault fires.

        ``corrupt`` flips one seeded byte; raising kinds raise, modelling
        e.g. the disk filling up mid-export.
        """
        spec = self._visit(site)
        if spec is None:
            return data
        if spec.kind in _RAISING_KINDS:
            raise _make_error(spec)
        if spec.kind != "corrupt":
            raise FaultConfigError(
                f"fault kind {spec.kind!r} cannot fire at byte site {site!r}"
            )
        if not data:
            return data
        position = self._rng.randrange(len(data))
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        return bytes(corrupted)

    def poison_array(self, site: str, array: np.ndarray) -> np.ndarray:
        """Visit an array site; return a poisoned copy when a fault fires.

        ``nan`` sets one seeded element to NaN; ``scale`` multiplies one
        seeded element by 1e6 and adds 1 (a finite divergence).  The
        input array is never mutated — callers get a fresh copy.
        """
        spec = self._visit(site)
        if spec is None:
            return array
        if spec.kind in _RAISING_KINDS:
            raise _make_error(spec)
        if spec.kind == "corrupt":
            raise FaultConfigError(
                f"fault kind 'corrupt' cannot fire at array site {site!r}"
            )
        if array.size == 0:
            return array
        poisoned = np.array(array, dtype=np.float64, copy=True)
        position = self._rng.randrange(array.size)
        if spec.kind == "nan":
            poisoned.flat[position] = np.nan
        else:
            poisoned.flat[position] = poisoned.flat[position] * 1e6 + 1.0
        return poisoned

    # -- global activation --------------------------------------------------

    def activate(self) -> AbstractContextManager["FaultPlan"]:
        """Install this plan globally for the duration of a ``with`` block.

        While active, :func:`repro.storage.queries.connect` wraps every
        new connection in a :class:`FaultProxy` over this plan, and the
        journal/export byte sites consult it.
        """
        return _activated(self)


_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The globally activated plan, or ``None`` outside chaos runs."""
    return _ACTIVE


@contextmanager
def _activated(plan: FaultPlan) -> Iterator[FaultPlan]:
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


class FaultProxy:
    """A :class:`sqlite3.Connection` wrapper that consults a fault plan.

    Statement execution and commits visit the ``db.execute`` /
    ``db.commit`` sites before delegating; everything else (attribute
    access, transaction context management, cursors obtained through the
    proxied ``execute``) passes straight through, so the proxy is a
    drop-in connection for the storage layer.
    """

    def __init__(self, connection: sqlite3.Connection, plan: FaultPlan) -> None:
        object.__setattr__(self, "_connection", connection)
        object.__setattr__(self, "_plan", plan)

    def execute(self, sql: str, parameters=()) -> sqlite3.Cursor:
        self._plan.check("db.execute")
        return self._connection.execute(sql, parameters)

    def executemany(self, sql: str, parameters) -> sqlite3.Cursor:
        self._plan.check("db.execute")
        return self._connection.executemany(sql, parameters)

    def executescript(self, script: str) -> sqlite3.Cursor:
        self._plan.check("db.execute")
        return self._connection.executescript(script)

    def commit(self) -> None:
        self._plan.check("db.commit")
        self._connection.commit()

    def __enter__(self) -> "FaultProxy":
        self._connection.__enter__()
        return self

    def __exit__(self, exc_type, exc, traceback):
        return self._connection.__exit__(exc_type, exc, traceback)

    def __getattr__(self, name: str):
        return getattr(self._connection, name)

    def __setattr__(self, name: str, value) -> None:
        setattr(self._connection, name, value)

"""Unit tests for the domain scenario datasets."""

from __future__ import annotations

import pytest

from repro.core import ViolationEngine
from repro.datasets import crm_scenario, healthcare_scenario, social_network_scenario


class TestHealthcare:
    def test_baseline_is_clean(self, small_healthcare):
        report = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        ).report()
        assert report.violation_probability == 0.0
        assert report.default_probability == 0.0

    def test_westin_sensitivity_ranking(self, small_healthcare):
        sigma = small_healthcare.population.attribute_sensitivities
        assert sigma.weight("diagnosis") > sigma.weight("age")
        assert sigma.weight("income") > sigma.weight("weight")

    def test_policy_validates_against_taxonomy(self, small_healthcare):
        for entry in small_healthcare.policy:
            small_healthcare.taxonomy.validate_tuple(entry.tuple)

    def test_deterministic(self):
        a = healthcare_scenario(30, seed=1)
        b = healthcare_scenario(30, seed=1)
        for provider_a, provider_b in zip(a.population, b.population):
            assert provider_a.preferences == provider_b.preferences

    def test_size_parameter(self):
        assert len(healthcare_scenario(25, seed=1).population) == 25


class TestSocialNetwork:
    def test_baseline_violates_but_rarely_defaults(self, small_social):
        report = ViolationEngine(
            small_social.policy, small_social.population
        ).report()
        # Policy drift: advertising/analytics purposes were never accepted.
        assert report.violation_probability == 1.0
        assert 0.0 < report.default_probability < 0.35

    def test_defaults_concentrated_in_fundamentalists(self, small_social):
        report = ViolationEngine(
            small_social.policy, small_social.population
        ).report()
        defaulted_segments = {
            small_social.population.get(pid).segment
            for pid in report.defaulted_ids()
        }
        assert "unconcerned" not in defaulted_segments

    def test_service_purpose_alone_is_clean(self, small_social):
        from repro.core import HousePolicy

        service_only = HousePolicy(
            small_social.policy.for_purpose("service"), name="svc"
        )
        report = ViolationEngine(
            service_only, small_social.population
        ).report()
        assert report.violation_probability == 0.0


class TestCRM:
    def test_baseline_is_clean(self, small_crm):
        report = ViolationEngine(small_crm.policy, small_crm.population).report()
        assert report.violation_probability == 0.0

    def test_resale_policy_violates_everyone(self, small_crm):
        from repro.datasets.crm import crm_resale_policy

        resale = crm_resale_policy(small_crm.taxonomy)
        report = ViolationEngine(resale, small_crm.population).report()
        assert report.violation_probability == 1.0

    def test_resale_is_superset_of_baseline(self, small_crm):
        from repro.datasets.crm import crm_resale_policy

        resale = crm_resale_policy(small_crm.taxonomy)
        assert set(small_crm.policy.entries) <= set(resale.entries)

    def test_payment_card_most_sensitive(self, small_crm):
        sigma = small_crm.population.attribute_sensitivities
        assert sigma.weight("payment_card") == max(
            sigma.weight(a)
            for a in (
                "name",
                "email",
                "postal_address",
                "purchase_history",
                "payment_card",
            )
        )


class TestScenarioBundle:
    def test_str(self, small_crm):
        text = str(small_crm)
        assert "crm" in text

    def test_economic_parameters_positive(self):
        for maker in (healthcare_scenario, social_network_scenario, crm_scenario):
            scenario = maker(10, seed=1)
            assert scenario.per_provider_utility > 0
            assert scenario.extra_utility_per_step > 0

    def test_segment_mix_present(self, small_healthcare):
        segments = {p.segment for p in small_healthcare.population}
        assert segments == {"fundamentalist", "pragmatist", "unconcerned"}

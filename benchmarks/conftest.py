"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table/figure from the paper (see the
experiment index in DESIGN.md): it computes the quantities, asserts the
paper's numbers (exactly where the paper is exact, shape-wise where the
substrate is synthetic), prints the reproduced rows through
:func:`repro.analysis.format_table`, and times the computation with
pytest-benchmark.

Run with::

    pytest benchmarks/ --benchmark-only

Add ``-s`` to see the printed paper-style tables inline.
"""

from __future__ import annotations

import json
import os

import pytest

#: Machine-readable results collected by the benches this session.
#: ``record()`` fills it; when ``REPRO_BENCH_JSON`` names a path, the
#: whole mapping is dumped there at session end (``make bench`` points it
#: at ``BENCH_2.json``).
_RESULTS: dict[str, dict] = {}


def emit(title: str, text: str) -> None:
    """Print one reproduced table with a separating banner."""
    print()
    print(f"=== {title} ===")
    print(text)


def record(name: str, **fields) -> None:
    """Store one benchmark's machine-readable result for the JSON dump."""
    _RESULTS[name] = fields


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and _RESULTS:
        with open(path, "w") as handle:
            json.dump(_RESULTS, handle, indent=2, sort_keys=True)
            handle.write("\n")


@pytest.fixture(scope="session")
def paper_fixture():
    """The Section 8 worked example, shared across benches."""
    from repro.datasets import paper_example_policy, paper_example_population

    return paper_example_policy(), paper_example_population()


@pytest.fixture(scope="session")
def healthcare_200():
    """A mid-sized healthcare scenario for the expansion benches."""
    from repro.datasets import healthcare_scenario

    return healthcare_scenario(200, seed=11)


@pytest.fixture(scope="session")
def crm_200():
    """A mid-sized CRM scenario for the economics benches."""
    from repro.datasets import crm_scenario

    return crm_scenario(200, seed=11)

"""Run the doctests embedded in module and class docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro
import repro.taxonomy.builder


@pytest.mark.parametrize(
    "module",
    [repro, repro.taxonomy.builder],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "expected at least one doctest"

"""The process-local metrics registry: counters, gauges, and timers.

A :class:`MetricsRegistry` is a plain in-process store — no sockets, no
background threads — that the instrumentation sites write into while
observability is enabled (see :mod:`repro.obs`).  Three instrument kinds
cover everything the engines, storage layer, and resilience machinery
need to report:

* :class:`Counter` — monotonically increasing event counts (evaluations,
  cache hits, locked-database retries, fired faults);
* :class:`Gauge` — last-written values (population size, cache
  occupancy);
* :class:`Timer` — duration samples with ``count``/``total``/``mean``
  and nearest-rank ``p50``/``p95``/``max`` summaries.

Every instrument is identified by a dotted name plus an optional label
set (``faults.fired{kind=locked, site=db.execute}``), and the whole
registry exports two ways: :meth:`MetricsRegistry.snapshot` produces a
sorted, JSON-safe document (what ``repro ... --metrics PATH`` writes),
and :func:`snapshot_to_prometheus` renders any such snapshot — live or
reloaded from disk — in the Prometheus text exposition format.

Thread safety: one registry lock guards every mutation.  The lock is
only ever taken while observability is enabled; disabled runs never
construct a registry at all (see :func:`repro.obs.active_observer`).
"""

from __future__ import annotations

import math
import threading
from typing import Any, Mapping

#: Timers keep at most this many raw duration samples for the percentile
#: summaries; ``count``/``total``/``max`` stay exact beyond the cap.
MAX_TIMER_SAMPLES = 8192

#: A canonical instrument identity: name plus sorted label pairs.
_MetricKey = tuple[str, tuple[tuple[str, str], ...]]


def _key(name: str, labels: Mapping[str, object]) -> _MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (>= 0) to the count."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        return self._value


class Gauge:
    """A last-written value."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.labels = dict(labels)
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        """Overwrite the gauge with *value*."""
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        """The last value written."""
        return self._value


class Timer:
    """Duration samples with count/total and p50/p95/max summaries.

    Use :meth:`observe` with a measured duration in seconds, or
    :meth:`time` as a context manager around the work itself.
    Percentiles use the nearest-rank method over the retained samples
    (capped at :data:`MAX_TIMER_SAMPLES`); ``count``, ``total``, and
    ``max`` are exact regardless of the cap.
    """

    __slots__ = ("name", "labels", "_samples", "_count", "_total", "_max", "_lock")

    def __init__(self, name: str, labels: Mapping[str, str], lock: threading.Lock) -> None:
        self.name = name
        self.labels = dict(labels)
        self._samples: list[float] = []
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = lock

    def observe(self, seconds: float) -> None:
        """Record one duration sample, in seconds."""
        seconds = float(seconds)
        if seconds < 0:
            raise ValueError("durations must be >= 0")
        with self._lock:
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds
            if len(self._samples) < MAX_TIMER_SAMPLES:
                self._samples.append(seconds)

    def time(self) -> "_TimedBlock":
        """A context manager that observes the block's wall-clock time."""
        return _TimedBlock(self)

    def absorb(
        self,
        count: int,
        total: float,
        maximum: float,
        samples: "list[float] | tuple[float, ...]" = (),
    ) -> None:
        """Fold another timer's exported state into this one.

        ``count``/``total``/``max`` merge exactly; raw *samples* are
        appended up to the :data:`MAX_TIMER_SAMPLES` cap (beyond it the
        percentiles become estimates over the retained prefix, same as
        a long-running local timer).  This is how per-worker snapshots
        from the parallel executor land in the parent registry.
        """
        if count < 0 or total < 0:
            raise ValueError("absorbed count and total must be >= 0")
        with self._lock:
            self._count += int(count)
            self._total += float(total)
            if maximum > self._max:
                self._max = float(maximum)
            room = MAX_TIMER_SAMPLES - len(self._samples)
            if room > 0:
                self._samples.extend(float(s) for s in samples[:room])

    @property
    def samples(self) -> tuple[float, ...]:
        """The retained raw samples (capped; see :data:`MAX_TIMER_SAMPLES`)."""
        with self._lock:
            return tuple(self._samples)

    @property
    def count(self) -> int:
        """Number of samples observed."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observed durations."""
        return self._total

    def percentile(self, quantile: float) -> float:
        """The nearest-rank percentile over the retained samples."""
        if not 0.0 < quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
        rank = max(1, math.ceil(quantile * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict[str, float]:
        """The JSON-safe summary the snapshot carries."""
        with self._lock:
            count = self._count
            total = self._total
            maximum = self._max
        return {
            "count": count,
            "total": total,
            "mean": (total / count) if count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "max": maximum,
        }


class _TimedBlock:
    """``with timer.time():`` support, measured via ``perf_counter``."""

    __slots__ = ("_timer", "_start")

    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimedBlock":
        from time import perf_counter

        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        from time import perf_counter

        self._timer.observe(perf_counter() - self._start)


class MetricsRegistry:
    """All instruments of one observed run, keyed by name + labels.

    The accessor methods create instruments on first use, so call sites
    never need registration boilerplate; asking for the same name and
    labels twice returns the same instrument.  A name may only ever be
    one instrument kind — reusing ``engine.evaluations`` as both a
    counter and a gauge is a programming error, reported loudly.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[_MetricKey, Counter] = {}
        self._gauges: dict[_MetricKey, Gauge] = {}
        self._timers: dict[_MetricKey, Timer] = {}
        self._kinds: dict[str, str] = {}

    def _claim(self, name: str, kind: str) -> None:
        claimed = self._kinds.setdefault(name, kind)
        if claimed != kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {claimed}, "
                f"cannot reuse it as a {kind}"
            )

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``name`` + *labels*, created on first use."""
        key = _key(name, labels)
        with self._lock:
            self._claim(name, "counter")
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(name, dict(key[1]), self._lock)
                self._counters[key] = instrument
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``name`` + *labels*, created on first use."""
        key = _key(name, labels)
        with self._lock:
            self._claim(name, "gauge")
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(name, dict(key[1]), self._lock)
                self._gauges[key] = instrument
        return instrument

    def timer(self, name: str, **labels: object) -> Timer:
        """The timer for ``name`` + *labels*, created on first use."""
        key = _key(name, labels)
        with self._lock:
            self._claim(name, "timer")
            instrument = self._timers.get(key)
            if instrument is None:
                instrument = Timer(name, dict(key[1]), self._lock)
                self._timers[key] = instrument
        return instrument

    # -- export --------------------------------------------------------------

    def snapshot(self, *, include_samples: bool = False) -> dict[str, Any]:
        """A sorted, JSON-safe document of every instrument's state.

        With ``include_samples=True`` each timer entry additionally
        carries its retained raw ``samples`` — the lossless form
        :meth:`merge_snapshot` consumes when folding worker registries
        into a parent.  The default (summary-only) form is what the CLI
        exports, unchanged.
        """
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            timers = sorted(self._timers.items())
        timer_entries = []
        for _, t in timers:
            entry = {"name": t.name, "labels": t.labels, **t.summary()}
            if include_samples:
                entry["samples"] = list(t.samples)
            timer_entries.append(entry)
        return {
            "counters": [
                {"name": c.name, "labels": c.labels, "value": c.value}
                for _, c in counters
            ],
            "gauges": [
                {"name": g.name, "labels": g.labels, "value": g.value}
                for _, g in gauges
            ],
            "timers": timer_entries,
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        Counters add, gauges take the snapshot's (last-written) value,
        timers :meth:`~Timer.absorb` the exported ``count``/``total``/
        ``max`` plus any raw ``samples`` present.  Used by the parallel
        executor to merge per-worker metric snapshots into the parent's
        active registry; any ``spans`` key is ignored (worker span trees
        are process-local and are not reparented).
        """
        for entry in snapshot.get("counters", ()):
            self.counter(entry["name"], **entry.get("labels", {})).inc(
                entry["value"]
            )
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"], **entry.get("labels", {})).set(
                entry["value"]
            )
        for entry in snapshot.get("timers", ()):
            self.timer(entry["name"], **entry.get("labels", {})).absorb(
                int(entry["count"]),
                float(entry["total"]),
                float(entry["max"]),
                entry.get("samples", ()),
            )

    def to_prometheus(self) -> str:
        """The live registry in Prometheus text exposition format."""
        return snapshot_to_prometheus(self.snapshot())


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------


def _metric_name(name: str) -> str:
    """A Prometheus-legal metric name, prefixed with the library's own."""
    sanitized = "".join(
        ch if ch.isascii() and (ch.isalnum() or ch in "_:") else "_"
        for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return f"repro_{sanitized}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str], extra: Mapping[str, str] = {}) -> str:
    pairs = {**labels, **extra}
    if not pairs:
        return ""
    rendered = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(pairs.items())
    )
    return f"{{{rendered}}}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    return repr(float(value))


def snapshot_to_prometheus(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` document as Prometheus text.

    Counters become ``<name>_total`` counter families, gauges plain
    gauges, timers ``<name>_seconds`` summaries (quantiles 0.5/0.95 plus
    ``_sum``/``_count``) with a companion ``_seconds_max`` gauge.
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def _type_line(family: str, kind: str) -> None:
        if family not in seen_types:
            seen_types.add(family)
            lines.append(f"# TYPE {family} {kind}")

    for entry in snapshot.get("counters", ()):
        family = f"{_metric_name(entry['name'])}_total"
        _type_line(family, "counter")
        lines.append(
            f"{family}{_render_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", ()):
        family = _metric_name(entry["name"])
        _type_line(family, "gauge")
        lines.append(
            f"{family}{_render_labels(entry.get('labels', {}))} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("timers", ()):
        family = f"{_metric_name(entry['name'])}_seconds"
        _type_line(family, "summary")
        labels = entry.get("labels", {})
        for quantile, field in (("0.5", "p50"), ("0.95", "p95")):
            lines.append(
                f"{family}{_render_labels(labels, {'quantile': quantile})} "
                f"{_format_value(entry[field])}"
            )
        lines.append(
            f"{family}_sum{_render_labels(labels)} "
            f"{_format_value(entry['total'])}"
        )
        lines.append(
            f"{family}_count{_render_labels(labels)} "
            f"{_format_value(entry['count'])}"
        )
        max_family = f"{family}_max"
        _type_line(max_family, "gauge")
        lines.append(
            f"{max_family}{_render_labels(labels)} "
            f"{_format_value(entry['max'])}"
        )
    return "\n".join(lines) + ("\n" if lines else "")

"""Storage hardening: pragmas, retries, integrity checks, atomic writes."""

from __future__ import annotations

import os
import sqlite3

import pytest

from repro.exceptions import CorruptDatabaseError, ProcessKilled, StorageError
from repro.resilience import FaultPlan, FaultSpec
from repro.storage import (
    PrivacyDatabase,
    atomic_write_bytes,
    atomic_write_text,
    connect,
    with_locked_retry,
)
from repro.storage.queries import LOCKED_RETRY_ATTEMPTS


def _locked() -> sqlite3.OperationalError:
    return sqlite3.OperationalError("database is locked")


class TestConnectionPragmas:
    def test_file_database_gets_wal_and_busy_timeout(self, tmp_path):
        connection = connect(str(tmp_path / "db.sqlite"))
        try:
            (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
            assert mode == "wal"
            (timeout,) = connection.execute("PRAGMA busy_timeout").fetchone()
            assert timeout == 5000
            (fk,) = connection.execute("PRAGMA foreign_keys").fetchone()
            assert fk == 1
        finally:
            connection.close()

    def test_memory_database_skips_wal(self):
        connection = connect(":memory:")
        try:
            (mode,) = connection.execute("PRAGMA journal_mode").fetchone()
            assert mode == "memory"
        finally:
            connection.close()

    def test_busy_timeout_configurable(self, tmp_path):
        connection = connect(str(tmp_path / "db.sqlite"), busy_timeout_ms=123)
        try:
            (timeout,) = connection.execute("PRAGMA busy_timeout").fetchone()
            assert timeout == 123
        finally:
            connection.close()


class TestLockedRetry:
    def test_succeeds_after_transient_locks(self):
        failures = [_locked(), _locked()]
        delays = []

        def operation():
            if failures:
                raise failures.pop(0)
            return "done"

        assert with_locked_retry(operation, sleep=delays.append) == "done"
        assert delays == [0.05, 0.1]  # exponential backoff

    def test_budget_exhaustion_raises_the_real_error(self):
        def operation():
            raise _locked()

        calls = []
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            with_locked_retry(operation, attempts=3, sleep=calls.append)
        assert len(calls) == 2  # no sleep after the final attempt

    def test_non_locked_errors_never_retried(self):
        attempts = []

        def operation():
            attempts.append(1)
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            with_locked_retry(operation, sleep=lambda _: None)
        assert len(attempts) == 1

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            with_locked_retry(lambda: None, attempts=0)

    def test_connect_retries_through_held_lock(self, tmp_path):
        # Lock held for the first three connection attempts, released
        # before the budget runs out: the caller never sees the error.
        plan = FaultPlan(
            [FaultSpec(site="db.connect", kind="locked", at=0, count=3)]
        )
        with plan.activate():
            connection = connect(
                str(tmp_path / "db.sqlite"), sleep=lambda _: None
            )
            connection.close()
        assert plan.visits("db.connect") == 4

    def test_connect_gives_up_on_persistent_lock(self, tmp_path):
        plan = FaultPlan(
            [FaultSpec(site="db.connect", kind="locked", at=0, count=999)]
        )
        with plan.activate():
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                connect(str(tmp_path / "db.sqlite"), sleep=lambda _: None)
        assert plan.visits("db.connect") == LOCKED_RETRY_ATTEMPTS


class TestIntegrityCheck:
    def test_garbage_file_raises_corrupt_database_error(self, tmp_path):
        path = str(tmp_path / "garbage.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"x" * 4096)
        with pytest.raises(CorruptDatabaseError):
            PrivacyDatabase.open(path)

    def test_corrupt_error_is_both_storage_and_sqlite_error(self):
        # Callers written against either hierarchy keep working.
        assert issubclass(CorruptDatabaseError, StorageError)
        assert issubclass(CorruptDatabaseError, sqlite3.DatabaseError)

    def test_healthy_database_opens(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "ok.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with PrivacyDatabase.open(path) as db:
            assert db.engine().report().n_providers == 3


class TestExitDoesNotMaskErrors:
    def test_original_exception_survives_rollback_failure(
        self, tmp_path, paper_policy, paper_population
    ):
        path = str(tmp_path / "db.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with pytest.raises(RuntimeError, match="the real problem"):
            with PrivacyDatabase.open(path) as db:
                # Sabotage the handle so __exit__'s rollback AND close
                # both raise; the context manager must still re-raise
                # the original error, not sqlite's.
                db._connection.close()
                raise RuntimeError("the real problem")

    def test_clean_exit_still_commits(self, tmp_path, paper_policy, paper_population):
        path = str(tmp_path / "db.sqlite")
        with PrivacyDatabase.create(path) as db:
            db.install(paper_policy, paper_population)
        with PrivacyDatabase.open(path) as db:
            assert len(db.repository.load_population()) == 3


class TestAtomicWrites:
    def test_writes_complete_document(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_text(path, '{"ok": true}')
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == '{"ok": true}'

    def test_overwrites_atomically(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "new"

    def test_disk_full_leaves_no_file_and_no_temp(self, tmp_path):
        path = str(tmp_path / "out.json")
        plan = FaultPlan(
            [FaultSpec(site="export.write", kind="disk_full", at=0)]
        )
        with plan.activate():
            with pytest.raises(sqlite3.OperationalError, match="disk is full"):
                atomic_write_bytes(path, b"doomed")
        assert os.listdir(tmp_path) == []

    def test_kill_mid_export_leaves_no_partial_file(self, tmp_path):
        target = str(tmp_path / "out.json")
        plan = FaultPlan([FaultSpec(site="export.write", kind="kill", at=0)])
        with plan.activate():
            with pytest.raises(ProcessKilled):
                atomic_write_bytes(target, b"doomed")
        assert os.listdir(tmp_path) == []

    def test_failed_export_preserves_previous_version(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_text(path, "version 1")
        plan = FaultPlan(
            [FaultSpec(site="export.write", kind="disk_full", at=0)]
        )
        with plan.activate():
            with pytest.raises(sqlite3.OperationalError):
                atomic_write_text(path, "version 2")
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == "version 1"

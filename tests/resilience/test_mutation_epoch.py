"""Mutation epochs are part of journal resume identity.

The incremental engine mutates its compiled population in place; each
mutation bumps a monotonically increasing *epoch*.  A journal records
round outcomes relative to the population state it started from, so a
population snapshotted at a different epoch describes a different
mutation history — resuming such a journal must refuse loudly
(:class:`JournalMismatchError`), never silently splice two histories.
These tests pin that contract, plus the mid-run-crash smoke the
``delta-parity`` CI job runs: kill a mutating dynamics run partway,
resume with the matching epoch, and land bit-for-bit on the
uninterrupted result.
"""

from __future__ import annotations

import pytest

from repro.datasets import healthcare_scenario
from repro.exceptions import JournalMismatchError, ProcessKilled
from repro.resilience import FaultPlan, FaultSpec, resumable_dynamics
from repro.resilience.resume import journal_fingerprint
from repro.simulation import run_dynamics

ROUNDS = 4


@pytest.fixture(scope="module")
def scenario():
    # Enough providers and widening room that defaults happen mid-path,
    # so the incremental engine really mutates between rounds.
    return healthcare_scenario(50, seed=23)


def test_fingerprint_differs_across_mutation_epochs(scenario):
    prints = {
        journal_fingerprint(
            "dynamics",
            population=scenario.population,
            policies=[scenario.policy],
            params={"rounds": ROUNDS},
            mutation_epoch=epoch,
        )
        for epoch in (0, 1, 7)
    }
    assert len(prints) == 3


def test_epoch_zero_is_the_default_identity(scenario):
    explicit = journal_fingerprint(
        "dynamics",
        population=scenario.population,
        policies=[scenario.policy],
        params={"rounds": ROUNDS},
        mutation_epoch=0,
    )
    implicit = journal_fingerprint(
        "dynamics",
        population=scenario.population,
        policies=[scenario.policy],
        params={"rounds": ROUNDS},
    )
    assert explicit == implicit


def test_resume_refuses_a_different_mutation_epoch(tmp_path, scenario):
    path = str(tmp_path / "dynamics.journal")
    plan = FaultPlan([FaultSpec(site="dynamics.round", kind="kill", at=1)])
    with plan.activate():
        with pytest.raises(ProcessKilled):
            resumable_dynamics(
                scenario.population,
                scenario.policy,
                scenario.taxonomy,
                journal_path=path,
                rounds=ROUNDS,
            )
    # The journal was recorded against epoch 0; a population claiming a
    # different mutation history must not attach to it.
    with pytest.raises(JournalMismatchError):
        resumable_dynamics(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            journal_path=path,
            rounds=ROUNDS,
            mutation_epoch=1,
        )


def test_kill_resume_with_matching_epoch_is_bit_for_bit(tmp_path, scenario):
    expected = run_dynamics(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        rounds=ROUNDS,
    )
    path = str(tmp_path / "dynamics.journal")
    plan = FaultPlan([FaultSpec(site="dynamics.round", kind="kill", at=2)])
    with plan.activate():
        with pytest.raises(ProcessKilled):
            resumable_dynamics(
                scenario.population,
                scenario.policy,
                scenario.taxonomy,
                journal_path=path,
                rounds=ROUNDS,
                mutation_epoch=0,
            )
    resumed = resumable_dynamics(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        journal_path=path,
        rounds=ROUNDS,
        mutation_epoch=0,
    )
    assert resumed == expected

"""Social network: quantify the damage of policy drift.

Members joined when the site's policy only covered the "service" purpose.
The site then added advertising and analytics uses without renegotiating
consent — the "frequently changing privacy policies on social networking
sites" the paper's Section 10 calls out.  The drifted policy violates
*every* member (mostly through the implicit-zero rule: nobody ever stated
an advertising preference), yet only the most privacy-sensitive members
leave immediately.  Multi-round dynamics then show the slow bleed as the
site keeps widening.

Run:  python examples/social_network_drift.py
"""

from collections import Counter

from repro.analysis import format_table, summarize
from repro.core import HousePolicy, ViolationEngine
from repro.datasets import social_network_scenario
from repro.simulation import run_dynamics

scenario = social_network_scenario(n_providers=300, seed=11)
print(f"scenario: {scenario}")
print()

# --- the counterfactual: the policy members actually accepted --------------
service_only = HousePolicy(
    scenario.policy.for_purpose("service"), name="service-only (as joined)"
)
engine = ViolationEngine(service_only, scenario.population)
print(f"policy as accepted:  {engine.report()}")

# --- the drifted policy ------------------------------------------------------
drifted = ViolationEngine(scenario.policy, scenario.population)
report = drifted.report()
print(f"policy after drift:  {report}")
print()

# Where do the violations come from?  Almost entirely implicit-zero
# findings: purposes the members never consented to.
implicit = sum(
    1
    for outcome in report.outcomes
    for finding in outcome.findings
    if finding.implicit
)
total = sum(len(outcome.findings) for outcome in report.outcomes)
print(
    f"{implicit}/{total} findings stem from purposes the member never "
    f"mentioned (implicit-zero rule)"
)
print()
print(summarize(report).to_text())
print()

# Which purposes drive the exits?
exit_purposes = Counter(
    finding.purpose
    for outcome in report.outcomes
    if outcome.defaulted
    for finding in outcome.findings
)
print("findings against defaulting members, by purpose:")
for purpose, count in exit_purposes.most_common():
    print(f"  {purpose:<12} {count}")
print()

# --- the slow bleed: keep widening round after round -------------------------
outcomes = run_dynamics(
    scenario.population,
    scenario.policy,
    scenario.taxonomy,
    rounds=5,
    per_provider_utility=scenario.per_provider_utility,
    extra_utility_per_round=scenario.extra_utility_per_step,
)
print(
    format_table(
        ["round", "members", "defaults", "left", "P(W)", "utility"],
        [
            [
                o.round_index,
                o.n_start,
                o.n_defaulted,
                o.n_remaining,
                round(o.violation_probability, 3),
                o.utility,
            ]
            for o in outcomes
        ],
        title="drift dynamics (one widening per round)",
    )
)
survivors = outcomes[-1].n_remaining
initial = outcomes[0].n_start
print()
print(
    f"after {len(outcomes)} rounds the site retains {survivors}/{initial} "
    f"members ({survivors / initial:.0%})"
)

"""Privacy tuples and the policy / preference entry types.

Section 4 of the paper defines the set of all privacy tuples as the cross
product ``P = Pr x V x G x R`` (Eq. 1).  A house policy is a set of pairs
``<a, p>`` with ``a`` an attribute and ``p`` a privacy tuple (Eq. 2); a
provider preference is a triple ``<i, a, p>`` (Eq. 5).

The ordered dimensions carry integer ranks (Section 6.2); purpose is a
string compared for equality.  ``p[dim]`` in the paper's notation becomes
``tuple_.value(dim)`` here (also available via subscripting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._validation import check_int, check_non_empty_str
from ..exceptions import ValidationError
from .dimensions import Dimension, ORDERED_DIMENSIONS


@dataclass(frozen=True, slots=True)
class PrivacyTuple:
    """One point ``p`` in the privacy space ``Pr x V x G x R``.

    ``visibility``, ``granularity`` and ``retention`` are integer ranks in
    their respective ordered domains — larger means more privacy exposure.
    ``purpose`` is the categorical purpose name.

    The tuple is immutable; derive adjusted tuples via :meth:`replace` or
    :meth:`shifted`.
    """

    purpose: str
    visibility: int
    granularity: int
    retention: int

    def __post_init__(self) -> None:
        check_non_empty_str(self.purpose, "purpose")
        for dim in ORDERED_DIMENSIONS:
            check_int(getattr(self, dim.value), dim.value, minimum=0)

    def value(self, dimension: Dimension) -> int | str:
        """The paper's ``p[dim]``: this tuple's value along *dimension*."""
        if dimension is Dimension.PURPOSE:
            return self.purpose
        return getattr(self, dimension.value)

    def __getitem__(self, dimension: Dimension) -> int | str:
        return self.value(dimension)

    def rank(self, dimension: Dimension) -> int:
        """The integer rank along an *ordered* dimension.

        Raises
        ------
        ValidationError
            If called with :attr:`Dimension.PURPOSE`.
        """
        if not dimension.is_ordered:
            raise ValidationError("purpose has no rank; it is categorical")
        return getattr(self, dimension.value)

    def replace(
        self,
        *,
        purpose: str | None = None,
        visibility: int | None = None,
        granularity: int | None = None,
        retention: int | None = None,
    ) -> "PrivacyTuple":
        """A copy with the given components substituted."""
        return PrivacyTuple(
            purpose=self.purpose if purpose is None else purpose,
            visibility=self.visibility if visibility is None else visibility,
            granularity=self.granularity if granularity is None else granularity,
            retention=self.retention if retention is None else retention,
        )

    def shifted(self, dimension: Dimension, delta: int) -> "PrivacyTuple":
        """A copy with the rank along *dimension* moved by *delta*.

        The result is floored at 0 (ranks are non-negative); widening
        operators that must respect a ladder's top clamp separately using
        the domain.
        """
        if not dimension.is_ordered:
            raise ValidationError("cannot shift along the purpose dimension")
        current = self.rank(dimension)
        return self.replace(**{dimension.value: max(0, current + delta)})

    def dominates(self, other: "PrivacyTuple") -> bool:
        """True when this tuple is at least as exposed as *other* everywhere.

        Requires equal purposes; compares all three ordered dimensions with
        ``>=``.  This is the box-containment relation behind Figure 1: a
        policy tuple that the preference tuple dominates sits inside the
        preference's bounding box, i.e. no violation.
        """
        if self.purpose != other.purpose:
            return False
        return all(
            self.rank(dim) >= other.rank(dim) for dim in ORDERED_DIMENSIONS
        )

    def as_dict(self) -> dict[str, int | str]:
        """A plain-dict rendering (used by serializers and the storage layer)."""
        return {
            "purpose": self.purpose,
            "visibility": self.visibility,
            "granularity": self.granularity,
            "retention": self.retention,
        }

    @classmethod
    def zero(cls, purpose: str) -> "PrivacyTuple":
        """The implicit "reveal nothing" tuple ``<pr, 0, 0, 0>``.

        The paper adds ``<i, a, pr, 0, 0, 0>`` to a provider's preferences
        for any house purpose the provider never mentioned (Section 5).
        """
        return cls(purpose=purpose, visibility=0, granularity=0, retention=0)

    def __str__(self) -> str:
        return (
            f"<{self.purpose}, V={self.visibility}, "
            f"G={self.granularity}, R={self.retention}>"
        )


@dataclass(frozen=True, slots=True)
class PolicyEntry:
    """One house-policy element ``<a, p>`` (Eq. 2)."""

    attribute: str
    tuple: PrivacyTuple

    def __post_init__(self) -> None:
        check_non_empty_str(self.attribute, "attribute")
        if not isinstance(self.tuple, PrivacyTuple):
            raise ValidationError(
                f"tuple must be a PrivacyTuple, got {type(self.tuple).__name__}"
            )

    @property
    def purpose(self) -> str:
        """The purpose of the embedded privacy tuple."""
        return self.tuple.purpose

    def __str__(self) -> str:
        return f"<{self.attribute}, {self.tuple}>"


@dataclass(frozen=True, slots=True)
class PreferenceEntry:
    """One provider-preference element ``<i, a, p>`` (Eq. 5)."""

    provider_id: Hashable
    attribute: str
    tuple: PrivacyTuple

    def __post_init__(self) -> None:
        if self.provider_id is None:
            raise ValidationError("provider_id must not be None")
        check_non_empty_str(self.attribute, "attribute")
        if not isinstance(self.tuple, PrivacyTuple):
            raise ValidationError(
                f"tuple must be a PrivacyTuple, got {type(self.tuple).__name__}"
            )

    @property
    def purpose(self) -> str:
        """The purpose of the embedded privacy tuple."""
        return self.tuple.purpose

    def __str__(self) -> str:
        return f"<{self.provider_id}, {self.attribute}, {self.tuple}>"

"""Provider populations: the "N data providers" of Definitions 2 and 5.

A :class:`Provider` bundles everything the model knows about one data
provider: preferences (Eq. 5), per-datum sensitivities (Eq. 11), and the
default threshold ``v_i`` (Definition 4).  A :class:`Population` is an
ordered, id-unique collection of providers plus the shared attribute
sensitivity vector ``Sigma`` (Eq. 10), and can hand the core functions the
pieces they expect (:meth:`Population.sensitivity_model`,
:meth:`Population.default_model`).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from typing import Hashable

from .._validation import check_real
from ..exceptions import UnknownProviderError, ValidationError
from .default import DefaultModel
from .preferences import ProviderPreferences
from .sensitivity import (
    AttributeSensitivities,
    DimensionSensitivity,
    ProviderSensitivity,
    SensitivityModel,
)


@dataclass(frozen=True)
class Provider:
    """One data provider: preferences, sensitivities, and tolerance.

    Parameters
    ----------
    preferences:
        The provider's explicit privacy preferences.
    sensitivity:
        Per-attribute :class:`DimensionSensitivity` records (``sigma_i``).
        Attributes not listed are neutral.
    threshold:
        Default tolerance ``v_i``; ``inf`` means "never defaults".
    segment:
        Optional population-segment label (e.g. a Westin segment) carried
        through to reports.
    """

    preferences: ProviderPreferences
    sensitivity: Mapping[str, DimensionSensitivity] = field(default_factory=dict)
    threshold: float = math.inf
    segment: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.preferences, ProviderPreferences):
            raise ValidationError(
                "preferences must be a ProviderPreferences, got "
                f"{type(self.preferences).__name__}"
            )
        if self.threshold != math.inf:
            check_real(self.threshold, "threshold", minimum=0.0)
        object.__setattr__(self, "sensitivity", dict(self.sensitivity))

    @property
    def provider_id(self) -> Hashable:
        """The provider's identifier (taken from the preference set)."""
        return self.preferences.provider_id

    def provider_sensitivity(self) -> ProviderSensitivity:
        """``sigma_i`` as the core sensitivity record."""
        return ProviderSensitivity(
            provider_id=self.provider_id, per_attribute=self.sensitivity
        )


class Population:
    """An id-unique, ordered collection of providers plus ``Sigma``.

    Parameters
    ----------
    providers:
        The providers.  Ids must be unique.
    attribute_sensitivities:
        The shared attribute sensitivity vector ``Sigma`` (Eq. 10);
        defaults to neutral.
    """

    __slots__ = ("_providers", "_by_id", "_attribute_sensitivities")

    def __init__(
        self,
        providers: Iterable[Provider],
        attribute_sensitivities: AttributeSensitivities | Mapping[str, float] | None = None,
    ) -> None:
        provider_list = list(providers)
        by_id: dict[Hashable, Provider] = {}
        for provider in provider_list:
            if not isinstance(provider, Provider):
                raise ValidationError(
                    f"population members must be Provider, got "
                    f"{type(provider).__name__}"
                )
            if provider.provider_id in by_id:
                raise ValidationError(
                    f"duplicate provider id {provider.provider_id!r}"
                )
            by_id[provider.provider_id] = provider
        self._providers = tuple(provider_list)
        self._by_id = by_id
        if attribute_sensitivities is None:
            attribute_sensitivities = AttributeSensitivities()
        elif not isinstance(attribute_sensitivities, AttributeSensitivities):
            attribute_sensitivities = AttributeSensitivities(attribute_sensitivities)
        self._attribute_sensitivities = attribute_sensitivities

    @property
    def providers(self) -> tuple[Provider, ...]:
        """All providers, in insertion order."""
        return self._providers

    @property
    def attribute_sensitivities(self) -> AttributeSensitivities:
        """The shared ``Sigma`` vector."""
        return self._attribute_sensitivities

    def __len__(self) -> int:
        return len(self._providers)

    def __iter__(self) -> Iterator[Provider]:
        return iter(self._providers)

    def __contains__(self, provider_id: object) -> bool:
        return provider_id in self._by_id

    def __repr__(self) -> str:
        return f"Population({len(self._providers)} providers)"

    def ids(self) -> tuple[Hashable, ...]:
        """Provider ids in insertion order."""
        return tuple(p.provider_id for p in self._providers)

    def get(self, provider_id: Hashable) -> Provider:
        """The provider with *provider_id*.

        Raises
        ------
        UnknownProviderError
            If no such provider exists.
        """
        try:
            return self._by_id[provider_id]
        except KeyError:
            raise UnknownProviderError(provider_id) from None

    def preference_sets(self) -> tuple[ProviderPreferences, ...]:
        """Every provider's preference set, in population order."""
        return tuple(p.preferences for p in self._providers)

    def sensitivity_model(self) -> SensitivityModel:
        """The population's full :class:`SensitivityModel` (Eq. 10)."""
        return SensitivityModel(
            self._attribute_sensitivities,
            {
                p.provider_id: p.provider_sensitivity()
                for p in self._providers
                if p.sensitivity
            },
        )

    def default_model(self, *, strict: bool = True) -> DefaultModel:
        """The population's :class:`DefaultModel` from per-provider thresholds."""
        return DefaultModel(
            {
                p.provider_id: p.threshold
                for p in self._providers
                if p.threshold != math.inf
            },
            strict=strict,
        )

    def without(self, provider_ids: Iterable[Hashable]) -> "Population":
        """A new population with the given providers removed.

        Used by the multi-round dynamics: defaulted providers leave and the
        remaining population is re-evaluated under the next policy.
        """
        excluded = set(provider_ids)
        unknown = excluded - set(self._by_id)
        if unknown:
            raise UnknownProviderError(sorted(unknown, key=repr)[0])
        return Population(
            (p for p in self._providers if p.provider_id not in excluded),
            self._attribute_sensitivities,
        )

    def extended(self, providers: Iterable[Provider]) -> "Population":
        """A new population with the given providers appended at the end.

        The incremental engine's ``append`` mutation produces exactly
        this population's compiled form: survivors first, in order, new
        providers after them.  Duplicate ids are rejected by the
        constructor.
        """
        return Population(
            (*self._providers, *providers), self._attribute_sensitivities
        )

    def updated(self, providers: Iterable[Provider]) -> "Population":
        """A new population with the given providers replaced in place.

        Each provider substitutes the existing one with the same id —
        order is preserved, which is what keeps the incremental engine's
        ``update`` mutation bit-for-bit against a fresh compile.
        """
        replacements = {}
        for provider in providers:
            if not isinstance(provider, Provider):
                raise ValidationError(
                    f"population members must be Provider, got "
                    f"{type(provider).__name__}"
                )
            if provider.provider_id not in self._by_id:
                raise UnknownProviderError(provider.provider_id)
            replacements[provider.provider_id] = provider
        return Population(
            (replacements.get(p.provider_id, p) for p in self._providers),
            self._attribute_sensitivities,
        )

    def subset(self, provider_ids: Iterable[Hashable]) -> "Population":
        """A new population restricted to the given providers (order kept)."""
        wanted = set(provider_ids)
        unknown = wanted - set(self._by_id)
        if unknown:
            raise UnknownProviderError(sorted(unknown, key=repr)[0])
        return Population(
            (p for p in self._providers if p.provider_id in wanted),
            self._attribute_sensitivities,
        )

    def with_attribute_sensitivities(
        self, attribute_sensitivities: AttributeSensitivities | Mapping[str, float]
    ) -> "Population":
        """A copy with a different ``Sigma`` vector."""
        return Population(self._providers, attribute_sensitivities)

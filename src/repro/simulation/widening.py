"""Policy-widening operators (Section 9's "expansion of privacy policies").

A widening step raises policy ranks — exposing data more widely, at finer
granularity, or for longer — and is the move whose pay-off Eqs. 25-31
analyse.  Unlike :meth:`HousePolicy.widened` (which shifts raw ranks),
these operators clamp against a taxonomy so a widening path can never
climb past the top of a ladder: repeated widening *saturates*, which is
what makes the sweep curves flatten at the ends.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from .._validation import check_int
from ..obs import active_observer
from ..core.dimensions import Dimension, ORDERED_DIMENSIONS
from ..core.policy import HousePolicy
from ..core.tuples import PolicyEntry
from ..exceptions import SimulationError
from ..taxonomy.builder import Taxonomy


@dataclass(frozen=True)
class WideningStep:
    """One widening move: rank deltas per ordered dimension.

    ``uniform(k)`` raises every ordered dimension by ``k``;
    ``along(dim, k)`` targets a single dimension.  Steps compose with
    ``+`` so paths can mix moves.
    """

    deltas: Mapping[Dimension, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for dimension, delta in self.deltas.items():
            if not isinstance(dimension, Dimension) or not dimension.is_ordered:
                raise SimulationError(
                    f"widening steps move ordered dimensions, got {dimension!r}"
                )
            check_int(delta, f"delta[{dimension.value}]")
        object.__setattr__(self, "deltas", dict(self.deltas))

    @classmethod
    def uniform(cls, k: int = 1) -> "WideningStep":
        """Raise every ordered dimension by *k*."""
        k = check_int(k, "k")
        return cls({dim: k for dim in ORDERED_DIMENSIONS})

    @classmethod
    def along(cls, dimension: Dimension, k: int = 1) -> "WideningStep":
        """Raise one ordered *dimension* by *k*."""
        return cls({dimension: check_int(k, "k")})

    def __add__(self, other: "WideningStep") -> "WideningStep":
        if not isinstance(other, WideningStep):
            return NotImplemented
        merged = dict(self.deltas)
        for dimension, delta in other.deltas.items():
            merged[dimension] = merged.get(dimension, 0) + delta
        return WideningStep(merged)

    def scaled(self, factor: int) -> "WideningStep":
        """The step applied *factor* times."""
        factor = check_int(factor, "factor")
        return WideningStep(
            {dim: delta * factor for dim, delta in self.deltas.items()}
        )

    def is_noop(self) -> bool:
        """True when no dimension moves."""
        return all(delta == 0 for delta in self.deltas.values())


def widen(
    policy: HousePolicy,
    step: WideningStep,
    taxonomy: Taxonomy,
    *,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
    name: str | None = None,
) -> HousePolicy:
    """Apply one widening *step* to *policy*, clamped to *taxonomy*.

    Every in-scope entry's ranks move by the step's deltas and are clamped
    into the corresponding ladder, so widening saturates at the ladder top
    instead of producing out-of-domain ranks.
    """
    obs = active_observer()
    if obs is not None:
        obs.inc("widening.applications")
    attribute_filter = None if attributes is None else set(attributes)
    purpose_filter = None if purposes is None else set(purposes)
    new_entries: list[PolicyEntry] = []
    for entry in policy:
        in_scope = (
            (attribute_filter is None or entry.attribute in attribute_filter)
            and (purpose_filter is None or entry.purpose in purpose_filter)
        )
        if not in_scope:
            new_entries.append(entry)
            continue
        new_tuple = entry.tuple
        for dimension, delta in step.deltas.items():
            if not delta:
                continue
            domain = taxonomy.domain(dimension)
            moved = domain.clamp(new_tuple.rank(dimension) + delta)
            new_tuple = new_tuple.replace(**{dimension.value: moved})
        new_entries.append(PolicyEntry(entry.attribute, new_tuple))
    return HousePolicy(
        new_entries,
        name=name if name is not None else f"{policy.name}+step",
    )


def policy_delta_columns(
    previous: HousePolicy, current: HousePolicy
) -> tuple[tuple[str, str], ...]:
    """The ``(attribute, purpose)`` columns whose entries differ.

    Consecutive policies on a widening path share most of their entries;
    this is the round-over-round delta the incremental engine exploits —
    only the returned columns can change any provider's score, so a
    cached evaluation of *previous* stays valid for every other column.
    Grouping uses :func:`repro.perf.batch.policy_columns`, the same
    decomposition the batch kernels evaluate, so "differs" here means
    exactly "evaluates differently" there — and the diff itself is
    :func:`repro.perf.batch.changed_column_keys`, the one helper the
    serial delta path and the worker column-delta protocol also use.
    """
    from ..perf.batch import changed_column_keys, policy_columns

    return changed_column_keys(
        policy_columns(previous), policy_columns(current)
    )


def widening_policies(
    policy: HousePolicy,
    step: WideningStep,
    taxonomy: Taxonomy,
    max_steps: int,
    *,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
) -> tuple[HousePolicy, ...]:
    """The materialised widening path, base policy first.

    Convenience for batch APIs that want the whole candidate list at once
    (e.g. :meth:`repro.perf.BatchViolationEngine.evaluate_policies`):
    ``widening_policies(...)[k]`` equals the ``k``-th policy yielded by
    :func:`widening_path` with the same arguments.  Consecutive policies
    differ only in the widened entries, which is exactly the single-rule
    delta shape the batch engine re-evaluates incrementally.
    """
    return tuple(
        widened
        for _, widened in widening_path(
            policy,
            step,
            taxonomy,
            max_steps,
            attributes=attributes,
            purposes=purposes,
        )
    )


def widening_path(
    policy: HousePolicy,
    step: WideningStep,
    taxonomy: Taxonomy,
    max_steps: int,
    *,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
) -> Iterator[tuple[int, HousePolicy]]:
    """Yield ``(k, policy widened k times)`` for ``k = 0 .. max_steps``.

    Step 0 is the base policy itself.  Policies are named
    ``"<base>+<k>"`` so sweep rows are self-describing.
    """
    max_steps = check_int(max_steps, "max_steps", minimum=0)
    if step.is_noop() and max_steps > 0:
        raise SimulationError("widening path with a no-op step never progresses")
    current = HousePolicy(policy.entries, name=f"{policy.name}+0")
    yield 0, current
    for k in range(1, max_steps + 1):
        current = widen(
            current,
            step,
            taxonomy,
            attributes=attributes,
            purposes=purposes,
            name=f"{policy.name}+{k}",
        )
        yield k, current

"""Unit tests for the severity-interval abstraction.

The randomized soundness corpus lives in
``tests/properties/test_interval_soundness.py``; here the paper's worked
example (Section 8: Alice 0, Ted 60, Bob 80, total 140) pins exact
numbers, and the dataclass-level contracts (interval validation,
lookups, certificates) get direct coverage.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core import ViolationEngine
from repro.datasets import (
    paper_example_policy,
    paper_example_population,
)
from repro.exceptions import ValidationError
from repro.lint import (
    PopulationIntervals,
    SeverityInterval,
    interval_analysis,
)

EXACT = {"Alice": 0.0, "Ted": 60.0, "Bob": 80.0}


@pytest.fixture(scope="module")
def policy():
    return paper_example_policy()


@pytest.fixture(scope="module")
def population():
    return paper_example_population()


class TestSeverityInterval:
    def test_validation(self):
        with pytest.raises(ValidationError):
            SeverityInterval(2.0, 1.0)
        with pytest.raises(ValidationError):
            SeverityInterval(math.nan, 1.0)
        with pytest.raises(ValidationError):
            SeverityInterval(0.0, math.nan)

    def test_point_and_zero(self):
        assert SeverityInterval.zero() == SeverityInterval(0.0, 0.0)
        point = SeverityInterval.point(3.5)
        assert point.is_point
        assert point.width == 0.0

    def test_contains_and_membership(self):
        interval = SeverityInterval(1.0, 2.0)
        assert interval.contains(1.0)
        assert interval.contains(2.0)
        assert not interval.contains(2.5)
        assert 1.5 in interval
        assert "1.5" not in interval  # non-numeric is never a member

    def test_add_is_componentwise(self):
        total = SeverityInterval(1.0, 2.0) + SeverityInterval(0.5, 3.0)
        assert total == SeverityInterval(1.5, 5.0)

    def test_as_dict_and_str(self):
        interval = SeverityInterval(0.0, 60.0)
        assert interval.as_dict() == {"lower": 0.0, "upper": 60.0}
        assert str(interval) == "[0, 60]"


class TestPaperExample:
    def test_provider_mode_is_point_exact(self, policy, population):
        intervals = interval_analysis(
            policy, population, weight_bounds="provider"
        )
        assert intervals.weight_bounds == "provider"
        for bounds in intervals:
            assert bounds.interval.is_point
            assert bounds.interval.lower == EXACT[bounds.provider_id]
        assert intervals.house == SeverityInterval.point(140.0)

    def test_population_mode_contains_exact(self, policy, population):
        intervals = interval_analysis(policy, population)
        outcomes = ViolationEngine(policy, population).report().outcomes
        for bounds, outcome in zip(intervals, outcomes):
            assert outcome.violation in bounds.interval
        assert 140.0 in intervals.house

    def test_violation_verdicts_are_exact(self, policy, population):
        intervals = interval_analysis(policy, population)
        assert intervals.violated_ids() == ("Ted", "Bob")
        assert intervals.provably_safe_ids() == ("Alice",)
        assert intervals.n_violated == 2
        assert intervals.violation_probability == pytest.approx(2 / 3)

    def test_default_verdicts(self, policy, population):
        intervals = interval_analysis(
            policy, population, weight_bounds="provider"
        )
        # Ted's 60 exceeds his 50 tolerance no matter the weights; Alice
        # and Bob stay under theirs.
        assert intervals.bounds_for("Ted").must_default
        assert not intervals.bounds_for("Alice").may_default
        assert not intervals.bounds_for("Bob").must_default
        defaults = intervals.default_probability_bounds()
        assert defaults == SeverityInterval.point(1 / 3)

    def test_certificate_matches_engine(self, policy, population):
        intervals = interval_analysis(policy, population)
        engine = ViolationEngine(policy, population)
        for alpha in (0.0, 0.5, 2 / 3, 1.0):
            assert intervals.certificate(alpha) == engine.certify(alpha)

    def test_bounds_for_unknown_provider(self, policy, population):
        intervals = interval_analysis(policy, population)
        with pytest.raises(ValidationError):
            intervals.bounds_for("Mallory")

    def test_as_dict_round_trips_through_json(self, policy, population):
        payload = interval_analysis(policy, population).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["policy"] == policy.name
        assert payload["n_providers"] == 3
        assert [entry["provider"] for entry in payload["providers"]] == [
            "Alice",
            "Ted",
            "Bob",
        ]

    def test_str_summarises(self, policy, population):
        text = str(interval_analysis(policy, population))
        assert "N=3" in text
        assert policy.name in text

    def test_len_and_iter_order(self, policy, population):
        intervals = interval_analysis(policy, population)
        assert len(intervals) == 3
        assert [b.provider_id for b in intervals] == ["Alice", "Ted", "Bob"]


class TestValidation:
    def test_rejects_unknown_weight_bounds(self, policy, population):
        with pytest.raises(ValidationError):
            interval_analysis(policy, population, weight_bounds="exact")

    def test_rejects_wrong_types(self, policy, population):
        with pytest.raises(ValidationError):
            interval_analysis({"rules": []}, population)
        with pytest.raises(ValidationError):
            interval_analysis(policy, {"providers": []})

    def test_empty_population(self, policy):
        from repro.core.population import Population

        intervals = interval_analysis(policy, Population([]))
        assert isinstance(intervals, PopulationIntervals)
        assert intervals.n_providers == 0
        assert intervals.house == SeverityInterval.zero()
        certificate = intervals.certificate(0.5)
        assert certificate.satisfied
        assert certificate.n_providers == 0

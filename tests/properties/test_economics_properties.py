"""Property-based tests for the Section 9 economics and the default CDF."""

from __future__ import annotations

import math

from hypothesis import assume, given, strategies as st

from repro.analysis import DefaultCDF
from repro.core import (
    break_even_extra_utility,
    expansion_justified,
    utility_current,
    utility_future,
)

counts = st.integers(0, 10_000)
utilities = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestBreakEvenProperties:
    @given(u=utilities, n_current=counts, lost=counts)
    def test_break_even_non_negative(self, u, n_current, lost):
        assume(lost <= n_current)
        n_fut = n_current - lost
        assume(n_fut > 0)
        assert break_even_extra_utility(u, n_current, n_fut) >= 0.0

    @given(u=utilities, n_current=st.integers(1, 10_000), lost=counts)
    def test_justification_equivalent_to_utility_comparison(self, u, n_current, lost):
        assume(lost <= n_current)
        n_fut = n_current - lost
        t_star = break_even_extra_utility(u, n_current, n_fut)
        assume(math.isfinite(t_star))
        epsilon = max(1.0, abs(t_star)) * 1e-6
        above = t_star + epsilon
        assert expansion_justified(u, above, n_current, n_fut) == (
            utility_future(n_fut, u, above) > utility_current(n_current, u)
        )

    @given(u=st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
           n_current=st.integers(2, 1000),
           lost_a=st.integers(0, 500), lost_b=st.integers(0, 500))
    def test_break_even_monotone_in_defaults(self, u, n_current, lost_a, lost_b):
        """More defaults demand more compensating utility."""
        assume(lost_a <= lost_b < n_current)
        smaller = break_even_extra_utility(u, n_current, n_current - lost_a)
        larger = break_even_extra_utility(u, n_current, n_current - lost_b)
        assert larger >= smaller

    @given(u=utilities, n=st.integers(1, 10_000))
    def test_no_defaults_break_even_is_zero(self, u, n):
        assert break_even_extra_utility(u, n, n) == 0.0

    @given(u=st.floats(min_value=0.01, max_value=1e5, allow_nan=False),
           n=st.integers(1, 10_000))
    def test_total_default_is_unjustifiable(self, u, n):
        assert break_even_extra_utility(u, n, 0) == math.inf
        assert not expansion_justified(u, 1e30, n, 0)


@st.composite
def cdf_data(draw):
    n_steps = draw(st.integers(1, 8))
    population = draw(st.integers(1, 500))
    increments = draw(
        st.lists(
            st.integers(0, 60), min_size=n_steps, max_size=n_steps
        )
    )
    cumulative = []
    total = 0
    for increment in increments:
        total = min(population, total + increment)
        cumulative.append(total)
    return DefaultCDF(
        steps=tuple(range(n_steps)),
        cumulative_defaults=tuple(cumulative),
        population_size=population,
    )


class TestDefaultCDFProperties:
    @given(cdf=cdf_data())
    def test_step_function_non_decreasing(self, cdf):
        values = [cdf.defaults_at(step) for step in range(-1, cdf.steps[-1] + 3)]
        assert values == sorted(values)

    @given(cdf=cdf_data())
    def test_fraction_bounded(self, cdf):
        for step in cdf.steps:
            assert 0.0 <= cdf.fraction_at(step) <= 1.0

    @given(cdf=cdf_data(), budget=st.floats(0.0, 1.0, allow_nan=False))
    def test_widest_step_within_budget_respects_budget(self, cdf, budget):
        # The documented contract admits exact-boundary budgets within
        # one ulp (fractions come from float division), so the property
        # mirrors the same isclose tolerance instead of a strict <=.
        step = cdf.widest_step_within(budget)
        fraction = cdf.fraction_at(step)
        assert (
            fraction <= budget
            or math.isclose(fraction, budget, rel_tol=1e-9)
            or step == 0
        )

    @given(cdf=cdf_data())
    def test_budget_one_reaches_last_step(self, cdf):
        assert cdf.widest_step_within(1.0) == cdf.steps[-1]

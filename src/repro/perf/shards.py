"""Provider shard partitioning for the parallel execution layer.

A shard is a contiguous ``[lo, hi)`` slice of population row indices.
Contiguity is what makes sharding cheap *and* exact: every compiled
per-column array (explicit rows, supplied rows) is emitted in population
row order, so restricting a column to a shard is a ``searchsorted``
slice, and per-provider sums inside a shard accumulate the same floating
point operations in the same order as the full-population kernel — the
invariant the parity suite (``tests/perf/test_parallel_parity.py``)
holds the executor to.
"""

from __future__ import annotations

from ..exceptions import ValidationError


def shard_bounds(n_providers: int, n_shards: int) -> list[tuple[int, int]]:
    """Split ``n_providers`` rows into ``n_shards`` contiguous shards.

    The first ``n_providers % n_shards`` shards carry one extra row
    (the :func:`numpy.array_split` convention), so sizes differ by at
    most one.  When ``n_shards > n_providers`` the tail shards are empty
    ``(lo, lo)`` ranges — legal, and evaluated to empty contributions.

    >>> shard_bounds(7, 3)
    [(0, 3), (3, 5), (5, 7)]
    >>> shard_bounds(2, 4)
    [(0, 1), (1, 2), (2, 2), (2, 2)]
    """
    if n_providers < 0:
        raise ValidationError("n_providers must be >= 0")
    if n_shards < 1:
        raise ValidationError("n_shards must be >= 1")
    base, extra = divmod(n_providers, n_shards)
    bounds: list[tuple[int, int]] = []
    lo = 0
    for shard in range(n_shards):
        hi = lo + base + (1 if shard < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds

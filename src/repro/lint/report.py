"""The :class:`LintReport` aggregate: diagnostics plus gating logic.

The report is what the CLI, the analysis layer, and CI consume: counts by
severity and code, filtering, and the severity-gated exit code that lets
``repro lint`` gate deployments the same way ``repro certify`` does.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True, slots=True)
class LintReport:
    """An immutable bundle of diagnostics with aggregate views."""

    diagnostics: tuple[Diagnostic, ...]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    def count(self, severity: Severity) -> int:
        """How many diagnostics carry exactly *severity*."""
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """All error-severity diagnostics."""
        return self.at_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """All warning-severity diagnostics."""
        return self.at_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        """All info-severity diagnostics."""
        return self.at_severity(Severity.INFO)

    def at_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        """Diagnostics carrying exactly *severity*."""
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def with_code(self, code: str) -> tuple[Diagnostic, ...]:
        """Diagnostics emitted under *code*."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> tuple[str, ...]:
        """The distinct codes present, sorted."""
        return tuple(sorted({d.code for d in self.diagnostics}))

    def max_severity(self) -> Severity | None:
        """The most severe diagnostic's severity (None when clean)."""
        if not self.diagnostics:
            return None
        return max((d.severity for d in self.diagnostics), key=lambda s: s.rank)

    def code_counts(self) -> dict[str, int]:
        """Finding count per code, sorted by code."""
        counts = Counter(d.code for d in self.diagnostics)
        return dict(sorted(counts.items()))

    def exit_code(self, fail_on: Severity | None = Severity.ERROR) -> int:
        """1 when any diagnostic reaches the *fail_on* floor, else 0.

        ``fail_on=None`` never fails (report-only mode).
        """
        if fail_on is None:
            return 0
        worst = self.max_severity()
        return 1 if worst is not None and worst >= fail_on else 0

    def summary(self) -> dict[str, object]:
        """JSON-safe aggregate: totals per severity and per code."""
        return {
            "total": len(self.diagnostics),
            "errors": self.count(Severity.ERROR),
            "warnings": self.count(Severity.WARNING),
            "infos": self.count(Severity.INFO),
            "codes": self.code_counts(),
        }

    def as_dict(self) -> dict[str, object]:
        """The whole report as a JSON-safe dict."""
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "summary": self.summary(),
        }

    @classmethod
    def from_diagnostics(cls, diagnostics: Iterable[Diagnostic]) -> "LintReport":
        """Build a report from any iterable of diagnostics."""
        return cls(diagnostics=tuple(diagnostics))

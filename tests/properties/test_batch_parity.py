"""Parity: the vectorized batch engine must equal the reference engine.

The batch engine (``repro.perf``) re-derives Definition 1, Eqs. 12-16,
and Definitions 2-5 over dense arrays; the reference
:class:`~repro.core.engine.ViolationEngine` walks providers one at a
time.  These tests assert the two agree **bit for bit** — not within a
tolerance — across a randomized scenario corpus.

Exact equality is achievable because the corpus draws every continuous
quantity (``Sigma``, ``sigma_i``, thresholds) as a dyadic rational (a
multiple of 0.25) with small magnitude: every product and sum the model
forms is then exactly representable in binary floating point, so the
answers cannot depend on summation order and any discrepancy is a real
logic bug, never rounding noise.

The corpus deliberately covers the awkward cases: providers with no
preferences at all, attributes provided without any preference (the
implicit-zero rows of Section 5), several preference tuples for one
(attribute, purpose) pair, several policy tuples for one pair, policy
attributes/purposes no provider knows, infinite and zero thresholds,
``implicit_zero=False``, and non-strict default semantics.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    DefaultModel,
    DimensionSensitivity,
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.perf import BatchViolationEngine

ATTRIBUTES = ("name", "weight", "diagnosis", "salary")
PURPOSES = ("billing", "research", "marketing")
SEGMENTS = (None, "fundamentalist", "pragmatist", "unconcerned")

N_SCENARIOS = 220  # acceptance floor is 200 randomized scenarios


def _dyadic(rng: random.Random, *, limit: int = 16) -> float:
    """A random multiple of 0.25 in [0, limit/4] — exact in binary FP."""
    return rng.randrange(0, limit + 1) / 4.0


def _random_tuple(rng: random.Random, purpose_pool=PURPOSES) -> PrivacyTuple:
    return PrivacyTuple(
        purpose=rng.choice(purpose_pool),
        visibility=rng.randrange(0, 7),
        granularity=rng.randrange(0, 7),
        retention=rng.randrange(0, 7),
    )


def _random_provider(rng: random.Random, index: int) -> Provider:
    provider_id = f"pr{index}"
    entries = [
        (rng.choice(ATTRIBUTES), _random_tuple(rng))
        for _ in range(rng.randrange(0, 6))
    ]
    provided = {attribute for attribute, _ in entries}
    # Sometimes supply attributes with no preference at all: these are the
    # implicit-zero rows of Section 5 when the policy names them.
    for attribute in ATTRIBUTES:
        if rng.random() < 0.35:
            provided.add(attribute)
    sensitivity = {
        attribute: DimensionSensitivity(
            value=_dyadic(rng),
            visibility=_dyadic(rng),
            granularity=_dyadic(rng),
            retention=_dyadic(rng),
        )
        for attribute in ATTRIBUTES
        if rng.random() < 0.5
    }
    roll = rng.random()
    if roll < 0.15:
        threshold = math.inf
    elif roll < 0.25:
        threshold = 0.0
    else:
        threshold = _dyadic(rng, limit=200)
    return Provider(
        preferences=ProviderPreferences(
            provider_id, entries, attributes_provided=provided
        ),
        sensitivity=sensitivity,
        threshold=threshold,
        segment=rng.choice(SEGMENTS),
    )


def _random_population(rng: random.Random) -> Population:
    providers = [
        _random_provider(rng, index) for index in range(rng.randrange(1, 13))
    ]
    sigma = {
        attribute: _dyadic(rng)
        for attribute in ATTRIBUTES
        if rng.random() < 0.8
    }
    return Population(providers, attribute_sensitivities=sigma)


def _random_policy(rng: random.Random, *, name: str) -> HousePolicy:
    attribute_pool = ATTRIBUTES + ("fingerprint",)  # nobody provides this
    purpose_pool = PURPOSES + ("audit",)  # nobody prefers this
    entries = []
    for _ in range(rng.randrange(1, 9)):
        attribute = rng.choice(attribute_pool)
        entries.append((attribute, _random_tuple(rng, purpose_pool)))
    return HousePolicy(entries, name=name)


def _assert_parity(
    batch: BatchViolationEngine,
    reference: ViolationEngine,
    policy: HousePolicy,
) -> None:
    report = batch.evaluate(policy)
    expected = reference.report()
    outcomes = expected.outcomes
    assert report.policy_name == expected.policy_name
    assert report.n_providers == expected.n_providers
    assert report.n_violated == expected.n_violated
    assert report.n_defaulted == expected.n_defaulted
    # Probabilities and the Eq. 16 total must be *identical*, not close.
    assert report.violation_probability == expected.violation_probability
    assert report.default_probability == expected.default_probability
    assert report.total_violations == expected.total_violations
    assert report.provider_ids == tuple(o.provider_id for o in outcomes)
    for row, outcome in enumerate(outcomes):
        assert bool(report.violated[row]) == outcome.violated
        assert bool(report.defaulted[row]) == outcome.defaulted
        assert float(report.violations[row]) == outcome.violation
        assert float(report.thresholds[row]) == outcome.threshold
        assert report.segments[row] == outcome.segment
    assert report.violated_ids() == expected.violated_ids()
    assert report.defaulted_ids() == expected.defaulted_ids()
    # Certificates are plain frozen dataclasses: compare them whole.
    for alpha in (0.0, 0.25, 0.5, 1.0):
        assert batch.certify(policy, alpha) == reference.certify(alpha)


@pytest.mark.parametrize("seed", range(N_SCENARIOS))
def test_randomized_scenario_parity(seed):
    """Bit-for-bit agreement on a random population x policy instance."""
    rng = random.Random(seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"rand-{seed}")
    implicit_zero = seed % 3 != 0  # every third scenario disables Section 5
    batch = BatchViolationEngine(population, implicit_zero=implicit_zero)
    reference = ViolationEngine(
        policy, population, implicit_zero=implicit_zero
    )
    _assert_parity(batch, reference, policy)


@pytest.mark.parametrize("seed", range(40))
def test_delta_path_parity_along_policy_sequences(seed):
    """Sweep-style sequences (cache + delta path) still match the oracle.

    Each scenario evaluates a chain of related policies through ONE batch
    engine — so later evaluations exercise the column-delta fast path and
    the report cache — and checks every step against a fresh reference
    engine.
    """
    rng = random.Random(10_000 + seed)
    population = _random_population(rng)
    batch = BatchViolationEngine(population)
    base = _random_policy(rng, name=f"base-{seed}")
    policies = [base]
    for step in range(4):
        previous = policies[-1]
        entries = list(previous.entries)
        # Mutate a single entry (the single-rule delta the sweep API is
        # optimised for), occasionally appending instead.
        if entries and rng.random() < 0.8:
            victim = rng.randrange(len(entries))
            old = entries[victim]
            entries[victim] = type(old)(
                attribute=old.attribute,
                tuple=PrivacyTuple(
                    purpose=old.tuple.purpose,
                    visibility=min(old.tuple.visibility + 1, 8),
                    granularity=old.tuple.granularity,
                    retention=min(old.tuple.retention + 1, 8),
                ),
            )
        else:
            entries.append(
                (rng.choice(ATTRIBUTES), _random_tuple(rng))
            )
        policies.append(
            HousePolicy(entries, name=f"step-{seed}-{step}")
        )
    # Revisit the base policy at the end: exercises the report cache.
    policies.append(HousePolicy(base.entries, name="base-revisited"))
    for policy in policies:
        reference = ViolationEngine(policy, population)
        _assert_parity(batch, reference, policy)


@pytest.mark.parametrize("seed", range(20))
def test_parity_with_model_overrides(seed):
    """Explicit sensitivity/default models pass through identically."""
    rng = random.Random(20_000 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"override-{seed}")
    sensitivities = _random_population(rng).sensitivity_model()
    thresholds = {
        provider.provider_id: _dyadic(rng, limit=120)
        for provider in population
        if rng.random() < 0.7
    }
    default_model = DefaultModel(
        thresholds,
        default_threshold=_dyadic(rng, limit=120),
        strict=seed % 2 == 0,
    )
    batch = BatchViolationEngine(
        population,
        sensitivities=sensitivities,
        default_model=default_model,
    )
    reference = ViolationEngine(
        policy,
        population,
        sensitivities=sensitivities,
        default_model=default_model,
    )
    _assert_parity(batch, reference, policy)


def test_paper_worked_example_parity(paper_policy, paper_population):
    """Section 8's worked example agrees exactly (integer arithmetic)."""
    batch = BatchViolationEngine(paper_population)
    reference = ViolationEngine(paper_policy, paper_population)
    _assert_parity(batch, reference, paper_policy)
    report = batch.evaluate(paper_policy)
    assert report.total_violations == 140.0
    assert report.violation_probability == pytest.approx(2 / 3)


def test_healthcare_scenario_parity(small_healthcare):
    """A real generated scenario (arbitrary floats): flags and ids must be
    exact; totals may differ only by float summation order, so they get a
    tight relative tolerance instead of bitwise equality."""
    population, policy = (
        small_healthcare.population,
        small_healthcare.policy,
    )
    batch = BatchViolationEngine(population)
    reference = ViolationEngine(policy, population)
    report = batch.evaluate(policy)
    expected = reference.report()
    assert report.violated_ids() == expected.violated_ids()
    assert report.defaulted_ids() == expected.defaulted_ids()
    assert report.total_violations == pytest.approx(
        expected.total_violations, rel=1e-9
    )
    for row, outcome in enumerate(expected.outcomes):
        assert float(report.violations[row]) == pytest.approx(
            outcome.violation, rel=1e-9, abs=1e-12
        )

"""E7 — engineering scaling: the model is linear in providers x tuples.

The paper positions the model as deployable inside production relational
databases, so the harness verifies the computational story: full-model
evaluation scales linearly in the number of providers (R^2 of a linear fit
over a size sweep), and the sqlite gate's per-request overhead stays flat
as the data table grows.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import format_table
from repro.core import PrivacyTuple, ViolationEngine
from repro.datasets import healthcare_scenario
from repro.storage import AccessRequest, EnforcementMode, PrivacyDatabase

from conftest import emit

SIZES = (50, 100, 200, 400)


def _evaluate(n: int) -> float:
    scenario = healthcare_scenario(n, seed=3)
    started = time.perf_counter()
    ViolationEngine(scenario.policy, scenario.population).report()
    return time.perf_counter() - started


def test_engine_scales_linearly(benchmark):
    def measure():
        return [(n, _evaluate(n)) for n in SIZES]

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit(
        "E7: full-model evaluation time vs population size",
        format_table(
            ["N providers", "seconds"],
            [[n, seconds] for n, seconds in timings],
        ),
    )

    sizes = np.array([n for n, _ in timings], dtype=float)
    seconds = np.array([s for _, s in timings], dtype=float)
    # Least-squares linear fit; demand a strong linear relationship.
    coeffs = np.polyfit(sizes, seconds, 1)
    predicted = np.polyval(coeffs, sizes)
    ss_res = float(((seconds - predicted) ** 2).sum())
    ss_tot = float(((seconds - seconds.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    emit(
        "E7: linear fit",
        format_table(
            ["slope s/provider", "intercept", "R^2"],
            [[float(coeffs[0]), float(coeffs[1]), r_squared]],
        ),
    )
    assert r_squared > 0.95
    assert coeffs[0] > 0


def test_gate_request_throughput(benchmark, crm_200):
    with PrivacyDatabase.create(":memory:") as db:
        db.install(crm_200.policy, crm_200.population)
        for provider in crm_200.population:
            db.repository.put_datum(
                str(provider.provider_id), "email", "user@example.com"
            )
        gate = db.gate(mode=EnforcementMode.AUDIT)
        request = AccessRequest(
            "email", PrivacyTuple("fulfillment", 2, 4, 1)
        )

        decision = benchmark(gate.request, request)
        assert decision.allowed
        events = db.audit_log.report().total_events
        emit(
            "E7: gate requests audited",
            format_table(["audited events"], [[events]]),
        )
        assert events >= 1

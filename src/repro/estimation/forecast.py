"""Forecast a candidate policy's defaults from estimated thresholds.

Closing Section 10's loop: with the default-fraction curve estimated from
observation, the house can evaluate a *candidate* widening before
deploying it — per provider (does this provider's predicted severity
exceed their estimated tolerance interval?) and in aggregate (expected
default count), and feed the aggregate straight back into the Section 9
economics (Eq. 31) via ``n_future``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.economics import break_even_extra_utility
from ..core.policy import HousePolicy
from ..core.population import Population
from ..perf import BatchViolationEngine
from .thresholds import ThresholdEstimator


@dataclass(frozen=True, slots=True)
class DefaultForecast:
    """Predicted consequences of a candidate policy."""

    policy_name: str
    n_providers: int
    expected_defaults: float
    certain_defaults: tuple[Hashable, ...]
    possible_defaults: tuple[Hashable, ...]
    break_even_extra_utility: float

    @property
    def expected_default_fraction(self) -> float:
        """Expected fraction of providers leaving."""
        if self.n_providers == 0:
            return 0.0
        return self.expected_defaults / self.n_providers


def forecast_defaults(
    estimator: ThresholdEstimator,
    population: Population,
    candidate: HousePolicy,
    *,
    per_provider_utility: float = 1.0,
    implicit_zero: bool = True,
) -> DefaultForecast:
    """Predict the candidate policy's defaults from estimated thresholds.

    Per provider, the candidate's severity is computed from the collected
    preferences (which the house *does* hold); the provider is a

    * **certain default** when the severity exceeds the observation's
      upper bound (they already left at a lower severity — or would),
    * **possible default** when the severity lands inside the censoring
      interval; its probability mass is the fraction of the interval
      below the severity (same assumption as the estimator's curve),
    * safe when the severity is at most the observed lower bound.

    The expected default count sums those probabilities; the break-even
    ``T*`` (Eq. 31) is evaluated at the *expected* future population,
    which is the planning quantity Section 9 needs.
    """
    report = BatchViolationEngine(
        population, implicit_zero=implicit_zero
    ).evaluate(candidate)
    by_provider = {obs.provider_id: obs for obs in estimator.observations}
    expected = 0.0
    certain: list[Hashable] = []
    possible: list[Hashable] = []
    for provider_id, severity in zip(report.provider_ids, report.violations):
        obs = by_provider.get(provider_id)
        if obs is None:
            continue  # no behavioural record: nothing to predict from
        severity = float(severity)
        if obs.censored:
            # Known to tolerate obs.lower; anything above is unknown —
            # conservatively predict no default (matches the estimator).
            continue
        if severity >= obs.upper:
            expected += 1.0
            certain.append(provider_id)
        elif severity > obs.lower:
            width = obs.upper - obs.lower
            probability = 1.0 if width <= 0 else (severity - obs.lower) / width
            expected += probability
            possible.append(provider_id)
    n = len(population)
    n_future_expected = max(1, round(n - expected))
    return DefaultForecast(
        policy_name=candidate.name,
        n_providers=n,
        expected_defaults=expected,
        certain_defaults=tuple(certain),
        possible_defaults=tuple(possible),
        break_even_extra_utility=break_even_extra_utility(
            per_provider_utility, n, min(n, n_future_expected)
        ),
    )

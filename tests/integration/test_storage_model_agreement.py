"""The sqlite store and the in-memory model must agree exactly."""

from __future__ import annotations

import pytest

from repro.core import ViolationEngine
from repro.storage import AccessRequest, EnforcementMode, PrivacyDatabase


class TestStoredEngineAgreement:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_scenario_round_trip_agrees(self, seed):
        from repro.datasets import crm_scenario

        scenario = crm_scenario(40, seed=seed)
        direct = ViolationEngine(scenario.policy, scenario.population).report()
        with PrivacyDatabase.create(":memory:") as db:
            db.install(scenario.policy, scenario.population)
            stored = db.engine().report()
            assert stored.violation_probability == direct.violation_probability
            assert stored.default_probability == direct.default_probability
            assert stored.total_violations == pytest.approx(
                direct.total_violations
            )
            assert set(stored.defaulted_ids()) == {
                str(pid) for pid in direct.defaulted_ids()
            }

    def test_widened_policy_agreement(self, small_healthcare):
        from repro.simulation import WideningStep, widen

        widened = widen(
            small_healthcare.policy,
            WideningStep.uniform(1),
            small_healthcare.taxonomy,
        )
        direct = ViolationEngine(widened, small_healthcare.population).report()
        with PrivacyDatabase.create(":memory:") as db:
            db.install(small_healthcare.policy, small_healthcare.population)
            db.set_policy(widened)
            stored = db.engine().report()
            assert stored.total_violations == pytest.approx(
                direct.total_violations
            )
            assert stored.n_defaulted == direct.n_defaulted


class TestGateVsOfflineModel:
    def test_gate_findings_match_offline_indicator(self, paper_policy, paper_population):
        """An access request shaped exactly like the stored Weight policy
        tuple must violate exactly the providers the offline model says are
        violated on Weight."""
        from repro.core import violation_indicator

        with PrivacyDatabase.create(":memory:") as db:
            db.install(paper_policy, paper_population)
            for provider in paper_population:
                db.repository.put_datum(
                    str(provider.provider_id), "Weight", "x"
                )
            gate = db.gate(mode=EnforcementMode.AUDIT)
            weight_tuple = paper_policy.for_attribute("Weight")[0].tuple
            decision = gate.request(AccessRequest("Weight", weight_tuple))
            offline = {
                str(provider.provider_id)
                for provider in paper_population
                if violation_indicator(provider.preferences, paper_policy)
            }
            assert set(decision.violated_providers) == offline

    def test_audit_log_rate_reflects_requests(self, paper_policy, paper_population):
        from repro.core import PrivacyTuple

        with PrivacyDatabase.create(":memory:") as db:
            db.install(paper_policy, paper_population)
            db.repository.put_datum("Alice", "Weight", "60")
            gate = db.gate(mode=EnforcementMode.AUDIT)
            gate.request(
                AccessRequest("Weight", PrivacyTuple("pr", 0, 0, 0))
            )
            gate.request(
                AccessRequest("Weight", PrivacyTuple("pr", 4, 4, 4))
            )
            report = db.audit_log.report()
            assert report.total_events == 2
            assert report.observed_violation_rate == pytest.approx(0.5)

"""Unit tests for the interval-censored threshold estimator."""

from __future__ import annotations

import pytest

from repro.estimation import DefaultObservation, ThresholdEstimator
from repro.exceptions import ValidationError


@pytest.fixture()
def estimator():
    return ThresholdEstimator(
        [
            DefaultObservation("a", 0.0, 10.0),
            DefaultObservation("b", 10.0, 20.0),
            DefaultObservation("c", 20.0, None),  # survivor
            DefaultObservation("d", 5.0, 15.0),
        ]
    )


class TestEstimates:
    def test_midpoints_for_departed(self, estimator):
        points = {e.provider_id: e.point for e in estimator.estimates()}
        assert points["a"] == 5.0
        assert points["b"] == 15.0
        assert points["d"] == 10.0

    def test_censored_get_lower_bound(self, estimator):
        estimates = {e.provider_id: e for e in estimator.estimates()}
        assert estimates["c"].censored
        assert estimates["c"].point == 20.0

    def test_n_departed(self, estimator):
        assert estimator.n_departed() == 3

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            ThresholdEstimator([])


class TestDefaultFractionCurve:
    def test_zero_at_zero(self, estimator):
        assert estimator.default_fraction(0.0) == 0.0

    def test_full_departures_counted(self, estimator):
        # At severity 20 every departed interval is fully below.
        assert estimator.default_fraction(20.0) == pytest.approx(3 / 4)

    def test_partial_interval_contribution(self, estimator):
        # At severity 5: 'a' contributes 5/10, others nothing.
        assert estimator.default_fraction(5.0) == pytest.approx(0.5 / 4)

    def test_monotone(self, estimator):
        grid = [0, 2, 5, 8, 10, 12, 15, 18, 20, 30]
        values = list(estimator.curve(grid))
        assert values == sorted(values)

    def test_bounded(self, estimator):
        for severity in (0.0, 7.5, 100.0):
            assert 0.0 <= estimator.default_fraction(severity) <= 1.0

    def test_censored_never_contribute(self):
        estimator = ThresholdEstimator(
            [DefaultObservation("c", 1.0, None)]
        )
        assert estimator.default_fraction(1e9) == 0.0

    def test_degenerate_interval(self):
        estimator = ThresholdEstimator([DefaultObservation("a", 5.0, 5.0)])
        assert estimator.default_fraction(5.0) == 1.0
        assert estimator.default_fraction(4.999) == 0.0


class TestSeverityAtBudget:
    def test_returns_severity_within_budget(self, estimator):
        severity = estimator.severity_at_budget(0.25)
        assert estimator.default_fraction(severity) <= 0.25 + 1e-9

    def test_monotone_in_budget(self, estimator):
        budgets = [0.05, 0.1, 0.25, 0.5, 0.74]
        severities = [estimator.severity_at_budget(b) for b in budgets]
        assert severities == sorted(severities)

    def test_full_budget_reaches_upper_bound(self, estimator):
        assert estimator.severity_at_budget(0.99) == 20.0

    def test_budget_one_rejected(self, estimator):
        with pytest.raises(ValidationError):
            estimator.severity_at_budget(1.0)

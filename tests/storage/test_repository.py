"""Unit tests for row-level CRUD."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    DimensionSensitivity,
    HousePolicy,
    PrivacyTuple,
    ProviderPreferences,
)
from repro.exceptions import StorageError, UnknownAttributeError, UnknownProviderError
from repro.storage import PrivacyDatabase


@pytest.fixture()
def db():
    database = PrivacyDatabase.create(":memory:")
    yield database
    database.close()


@pytest.fixture()
def repo(db):
    repo = db.repository
    repo.ensure_attribute("weight", 4.0)
    repo.ensure_attribute("age")
    repo.ensure_purpose("billing")
    repo.add_provider("alice", segment="pragmatist", threshold=50.0)
    return repo


class TestVocabulary:
    def test_attribute_weights(self, repo):
        assert repo.attributes() == {"weight": 4.0, "age": 1.0}

    def test_ensure_attribute_without_weight_does_not_clobber(self, repo):
        repo.ensure_attribute("weight")
        assert repo.attributes()["weight"] == 4.0

    def test_ensure_attribute_with_weight_updates(self, repo):
        repo.ensure_attribute("weight", 9.0)
        assert repo.attributes()["weight"] == 9.0

    def test_purposes(self, repo):
        repo.ensure_purpose("research")
        repo.ensure_purpose("billing")  # idempotent
        assert repo.purposes() == ("billing", "research")


class TestProviders:
    def test_provider_ids(self, repo):
        assert repo.provider_ids() == ("alice",)

    def test_duplicate_provider_raises(self, repo):
        with pytest.raises(StorageError):
            repo.add_provider("alice")

    def test_remove_provider_cascades(self, repo):
        repo.put_datum("alice", "weight", 60)
        repo.add_preferences(
            ProviderPreferences(
                "alice", [("weight", PrivacyTuple("billing", 1, 1, 1))]
            )
        )
        repo.remove_provider("alice")
        assert repo.provider_ids() == ()
        assert repo.data_for_attribute("weight") == {}

    def test_remove_unknown_raises(self, repo):
        with pytest.raises(UnknownProviderError):
            repo.remove_provider("nobody")


class TestData:
    def test_put_and_get(self, repo):
        repo.put_datum("alice", "weight", 60)
        assert repo.get_datum("alice", "weight") == "60"

    def test_overwrite(self, repo):
        repo.put_datum("alice", "weight", 60)
        repo.put_datum("alice", "weight", 61)
        assert repo.get_datum("alice", "weight") == "61"

    def test_missing_returns_none(self, repo):
        assert repo.get_datum("alice", "weight") is None

    def test_null_value(self, repo):
        repo.put_datum("alice", "weight", None)
        assert repo.get_datum("alice", "weight") is None

    def test_unknown_provider_rejected(self, repo):
        with pytest.raises(UnknownProviderError):
            repo.put_datum("bob", "weight", 1)

    def test_unknown_attribute_rejected(self, repo):
        with pytest.raises(UnknownAttributeError):
            repo.put_datum("alice", "height", 1)

    def test_data_for_attribute(self, repo):
        repo.add_provider("bob")
        repo.put_datum("alice", "weight", 60)
        repo.put_datum("bob", "weight", 82)
        assert repo.data_for_attribute("weight") == {"alice": "60", "bob": "82"}


class TestPolicyStorage:
    def test_replace_and_load_round_trip(self, repo):
        policy = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 2, 2, 2)),
                ("age", PrivacyTuple("billing", 1, 1, 1)),
            ],
            name="stored",
        )
        repo.replace_policy(policy)
        assert repo.load_policy() == policy
        assert repo.load_policy().name == "stored"

    def test_replace_overwrites(self, repo):
        repo.replace_policy(
            HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
        )
        repo.replace_policy(HousePolicy([], name="empty"))
        assert len(repo.load_policy()) == 0

    def test_empty_load_is_empty_policy(self, repo):
        assert len(repo.load_policy()) == 0

    def test_unknown_attribute_rejected(self, repo):
        with pytest.raises(UnknownAttributeError):
            repo.replace_policy(
                HousePolicy([("height", PrivacyTuple("billing", 1, 1, 1))])
            )

    def test_new_purpose_registered_automatically(self, repo):
        repo.replace_policy(
            HousePolicy([("weight", PrivacyTuple("marketing", 1, 1, 1))])
        )
        assert "marketing" in repo.purposes()


class TestPreferencesStorage:
    def test_round_trip(self, repo):
        prefs = ProviderPreferences(
            "alice",
            [
                ("weight", PrivacyTuple("billing", 2, 2, 2)),
                ("age", PrivacyTuple("billing", 3, 3, 3)),
            ],
        )
        repo.add_preferences(prefs)
        loaded = repo.load_preferences("alice")
        assert set(loaded.entries) == set(prefs.entries)

    def test_attributes_provided_includes_data(self, repo):
        repo.put_datum("alice", "age", 30)
        repo.add_preferences(
            ProviderPreferences(
                "alice", [("weight", PrivacyTuple("billing", 1, 1, 1))]
            )
        )
        loaded = repo.load_preferences("alice")
        assert loaded.attributes_provided == {"weight", "age"}

    def test_unknown_provider_rejected(self, repo):
        with pytest.raises(UnknownProviderError):
            repo.load_preferences("bob")


class TestSensitivityStorage:
    def test_round_trip(self, repo):
        record = DimensionSensitivity(3.0, 1.0, 5.0, 2.0)
        repo.put_sensitivity("alice", "weight", record)
        assert repo.load_sensitivities("alice") == {"weight": record}

    def test_upsert(self, repo):
        repo.put_sensitivity("alice", "weight", DimensionSensitivity(1.0))
        repo.put_sensitivity("alice", "weight", DimensionSensitivity(2.0))
        assert repo.load_sensitivities("alice")["weight"].value == 2.0


class TestPopulationRoundTrip:
    def test_full_round_trip(self, db, paper_population):
        db.repository.store_population(paper_population)
        loaded = db.repository.load_population()
        assert loaded.ids() == tuple(sorted(paper_population.ids()))
        for provider in paper_population:
            stored = loaded.get(provider.provider_id)
            assert set(stored.preferences.entries) == set(
                provider.preferences.entries
            )
            assert stored.threshold == provider.threshold
            assert stored.sensitivity == provider.sensitivity

    def test_infinite_threshold_round_trips(self, db):
        from repro.core import Population, Provider

        provider = Provider(
            preferences=ProviderPreferences(
                "immortal", [("weight", PrivacyTuple("billing", 1, 1, 1))]
            )
        )
        db.repository.store_population(Population([provider]))
        loaded = db.repository.load_population()
        assert loaded.get("immortal").threshold == math.inf

"""Tests for the incremental lint runner and its fingerprint cache.

The load-bearing contract is parity: ``incremental_lint`` must produce
exactly the diagnostics ``lint_documents`` produces — fresh, from cache,
and under worker fan-out — because the decomposition into a global pass
plus per-provider passes is an optimisation, not a semantics change.
"""

from __future__ import annotations

import json

import pytest

from repro.lint import (
    LintCache,
    LintConfig,
    SourceLocation,
    incremental_lint,
    lint_documents,
)
from repro.lint.plugins import registered_rule

from .conftest import rule


@pytest.fixture()
def dirty_population():
    """Findings across scopes: provider-local and population-global."""
    return {
        "attribute_sensitivities": {"weight": 2.0},
        "providers": [
            {
                "provider": "subsumed",
                "preferences": [
                    rule(
                        visibility="all",
                        granularity="specific",
                        retention="indefinite",
                    )
                ],
            },
            {
                "provider": "fragile",
                "threshold": 0.5,
                "preferences": [
                    rule(
                        visibility="owner",
                        granularity="existential",
                        retention="transaction",
                    )
                ],
                "sensitivities": {"weight": {"value": 1.0}},
            },
        ],
    }


def assert_parity(taxonomy, **kwargs):
    full = lint_documents(taxonomy, **kwargs)
    incremental = incremental_lint(taxonomy, **kwargs)
    assert incremental.as_dict() == full.as_dict()
    return full


class TestParity:
    def test_clean_documents(self, taxonomy, clean_policy, clean_population):
        report = assert_parity(
            taxonomy, policy=clean_policy, population=clean_population
        )
        assert not report

    def test_dirty_documents(self, taxonomy, clean_policy, dirty_population):
        report = assert_parity(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            config=LintConfig(alpha=0.5),
        )
        assert set(report.codes()) >= {"PVL211", "PVL214"}

    def test_taxonomy_only(self, taxonomy):
        assert not assert_parity(taxonomy)

    def test_select_and_ignore(self, taxonomy, clean_policy, dirty_population):
        assert_parity(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            select=["PVL211", "PVL214"],
        )
        report = assert_parity(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            ignore=["PVL211"],
        )
        assert "PVL211" not in report.codes()

    def test_unlowerable_population(self, taxonomy, clean_policy):
        # Structurally valid, semantically unlowerable (unknown purpose):
        # the model/population layers must stay out of the way in both
        # runners, and the provider passes must see population=None just
        # like the full run does.
        population = {
            "providers": [
                {"provider": "p", "preferences": [rule(purpose="resale")]}
            ]
        }
        report = assert_parity(
            taxonomy, policy=clean_policy, population=population
        )
        assert "PVL001" in report.codes()

    def test_worker_fan_out(self, taxonomy, clean_policy, dirty_population):
        full = lint_documents(
            taxonomy, policy=clean_policy, population=dirty_population
        )
        fanned = incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            workers=2,
        )
        assert fanned.as_dict() == full.as_dict()


class TestCache:
    def test_second_run_is_served_from_cache(
        self, taxonomy, clean_policy, dirty_population
    ):
        cache = LintCache()
        first = incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )
        assert cache.hits == 0
        misses = cache.misses
        assert misses > 0
        second = incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )
        assert second.as_dict() == first.as_dict()
        # Everything — the global pass and each provider pass — hit.
        assert cache.misses == misses
        assert cache.hits == misses

    def test_editing_one_provider_misses_only_that_provider(
        self, taxonomy, clean_policy, dirty_population
    ):
        cache = LintCache()
        incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )
        misses = cache.misses
        edited = json.loads(json.dumps(dirty_population))
        edited["providers"][1]["threshold"] = 1000.0
        incremental_lint(
            taxonomy, policy=clean_policy, population=edited, cache=cache
        )
        # Population digest changed -> global pass misses; provider 0 is
        # untouched -> hits; provider 1 changed -> misses.
        assert cache.misses == misses + 2
        assert cache.hits == 1

    def test_policy_edit_invalidates_everything(
        self, taxonomy, clean_policy, dirty_population
    ):
        cache = LintCache()
        incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )
        misses = cache.misses
        incremental_lint(
            taxonomy,
            policy={"name": "other", "rules": [rule()]},
            population=dirty_population,
            cache=cache,
        )
        assert cache.hits == 0
        assert cache.misses == 2 * misses

    def test_rule_registration_invalidates(
        self, taxonomy, clean_policy, dirty_population
    ):
        cache = LintCache()
        incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )

        def nag(ctx, emit):
            emit(SourceLocation("taxonomy"), "plugin was here")

        with registered_rule(
            "ACME020", nag, title="t", severity="info", description="d"
        ):
            report = incremental_lint(
                taxonomy,
                policy=clean_policy,
                population=dirty_population,
                cache=cache,
            )
        # The rules fingerprint is part of the envelope: stale entries
        # cannot shadow the new rule's findings.
        assert cache.hits == 0
        assert "ACME020" in report.codes()

    def test_save_and_load_round_trip(
        self, tmp_path, taxonomy, clean_policy, dirty_population
    ):
        path = tmp_path / "lint-cache.json"
        cache = LintCache(path)
        first = incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=cache,
        )
        cache.save()
        reloaded = LintCache(path)
        report = incremental_lint(
            taxonomy,
            policy=clean_policy,
            population=dirty_population,
            cache=reloaded,
        )
        assert report.as_dict() == first.as_dict()
        assert reloaded.misses == 0
        assert reloaded.hits > 0

    def test_missing_and_corrupt_cache_files_are_tolerated(self, tmp_path):
        assert len(LintCache(tmp_path / "absent.json")) == 0
        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text("{not json")
        assert len(LintCache(corrupt)) == 0
        wrong_version = tmp_path / "old.json"
        wrong_version.write_text(json.dumps({"version": 0, "entries": {}}))
        assert len(LintCache(wrong_version)) == 0

    def test_save_requires_a_path(self):
        with pytest.raises(ValueError):
            LintCache().save()

"""E8 — Section 10's estimation programme: recover v_i from behaviour.

The paper's legacy-system path: the house cannot see thresholds, only who
leaves after which expansion.  This bench replays a widening history,
fits the interval-censored estimator, and measures recovery quality:

* every true threshold lies inside its estimated bracket (exact claim —
  the bracketing is sound by construction);
* in-sample forecasts reproduce the realised defaults exactly;
* the estimated default-fraction curve tracks the true curve (mean
  absolute error reported and bounded).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.core import ViolationEngine
from repro.estimation import (
    ThresholdEstimator,
    forecast_defaults,
    observe_widening_history,
)
from repro.simulation import WideningStep, widening_path

from conftest import emit


def test_threshold_recovery(benchmark, healthcare_200):
    history = [
        policy
        for _, policy in widening_path(
            healthcare_200.policy,
            WideningStep.uniform(1),
            healthcare_200.taxonomy,
            4,
        )
    ]

    def fit():
        observations = observe_widening_history(
            healthcare_200.population, history
        )
        return ThresholdEstimator(observations)

    estimator = benchmark(fit)

    # Soundness: every true threshold inside its bracket.
    population = healthcare_200.population
    violations_of_bracketing = 0
    for estimate in estimator.estimates():
        true_threshold = population.get(estimate.provider_id).threshold
        if estimate.censored:
            if true_threshold < estimate.lower:
                violations_of_bracketing += 1
        elif not (estimate.lower <= true_threshold < estimate.upper + 1e-9):
            violations_of_bracketing += 1
    emit(
        "E8: bracket soundness",
        format_table(
            ["providers", "departed", "bracket violations"],
            [
                [
                    len(estimator.observations),
                    estimator.n_departed(),
                    violations_of_bracketing,
                ]
            ],
        ),
    )
    assert violations_of_bracketing == 0

    # In-sample forecast = realised defaults, per deployed policy.
    rows = []
    for policy in history[1:]:
        truth = ViolationEngine(policy, population).report()
        forecast = forecast_defaults(estimator, population, policy)
        rows.append(
            [
                policy.name,
                truth.n_defaulted,
                len(forecast.certain_defaults),
                round(forecast.expected_defaults, 2),
            ]
        )
        assert set(forecast.certain_defaults) == set(truth.defaulted_ids())
    emit(
        "E8: in-sample default forecasts",
        format_table(
            ["policy", "realised", "forecast certain", "forecast expected"],
            rows,
        ),
    )

    # Out-of-sample forecast: an intermediate policy the house never
    # deployed (step 1 widened by one extra retention rank).  Ground truth
    # comes from simulating the full model with the true thresholds.
    from repro.core import Dimension
    from repro.simulation import widen

    half_step = widen(
        history[1],
        WideningStep.along(Dimension.RETENTION, 1),
        healthcare_200.taxonomy,
        name="step-1.5",
    )
    truth_half = ViolationEngine(half_step, population).report().n_defaulted
    forecast_half = forecast_defaults(estimator, population, half_step)
    step1 = ViolationEngine(history[1], population).report().n_defaulted
    step2 = ViolationEngine(history[2], population).report().n_defaulted
    emit(
        "E8: out-of-sample forecast (undeployed intermediate policy)",
        format_table(
            ["policy", "truth", "forecast", "neighbors (step1/step2)"],
            [
                [
                    "step-1.5",
                    truth_half,
                    round(forecast_half.expected_defaults, 2),
                    f"{step1} / {step2}",
                ]
            ],
        ),
    )
    assert step1 <= forecast_half.expected_defaults <= step2
    assert abs(forecast_half.expected_defaults - truth_half) / truth_half < 0.25

    # Curve recovery, reported with its censoring caveat: beyond the
    # severities the history actually inflicted, 42% of providers are
    # right-censored and the conservative estimator lower-bounds truth.
    thresholds = np.array([p.threshold for p in population], dtype=float)
    grid = np.linspace(0.0, float(np.percentile(thresholds, 95)), 25)
    estimated = estimator.curve(grid)
    truth_curve = np.array(
        [(thresholds < s).mean() for s in grid], dtype=float
    )
    mae = float(np.abs(estimated - truth_curve).mean())
    emit(
        "E8: default-fraction curve recovery (full grid, censoring-limited)",
        format_table(
            ["grid points", "mean abs error"], [[len(grid), round(mae, 4)]]
        ),
    )
    assert list(estimated) == sorted(estimated)  # monotone
    assert all(0.0 <= value <= 1.0 for value in estimated)
    assert mae < 0.30  # loose: right-censoring caps what is identifiable

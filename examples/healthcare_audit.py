"""Healthcare: audit a clinic's policy against its patient population.

A clinic holds demographic and clinical attributes under a conservative
baseline policy.  This example:

1. evaluates the baseline (anchored population: clean by construction),
2. considers a proposed widening (share with the hospital network, keep
   data longer),
3. breaks the resulting violations down by Westin segment, attribute, and
   dimension,
4. publishes an alpha-PPDB certification document for the proposal.

Run:  python examples/healthcare_audit.py
"""

from repro.analysis import (
    certification_document,
    summarize,
    violation_matrix,
)
from repro.core import Dimension, ViolationEngine
from repro.datasets import healthcare_scenario
from repro.simulation import WideningStep, widen

scenario = healthcare_scenario(n_providers=200, seed=7)
print(f"scenario: {scenario}")
print()

# --- 1. the baseline is clean ---------------------------------------------
baseline = ViolationEngine(scenario.policy, scenario.population)
print(f"baseline: {baseline.report()}")
print()

# --- 2. the proposal: +1 visibility (hospital network), +1 retention ------
proposal = widen(
    scenario.policy,
    WideningStep.along(Dimension.VISIBILITY)
    + WideningStep.along(Dimension.RETENTION),
    scenario.taxonomy,
    name="clinic-proposal",
)
proposed = baseline.with_policy(proposal)
report = proposed.report()
print(f"proposal: {report}")
print()

# --- 3. who gets hurt, and where ------------------------------------------
print(summarize(report).to_text())
print()

matrix = violation_matrix(report)
print("hottest provider/attribute cells:")
for provider_id, attribute, severity in matrix.hottest_cells(5):
    print(f"  {provider_id:>12}  {attribute:<12} {severity:10.1f}")
print()
print("severity by dimension:")
for dimension, severity in sorted(
    matrix.dimension_totals.items(), key=lambda item: -item[1]
):
    print(f"  {dimension.value:<12} {severity:10.1f}")
print()

# --- 4. the certification document the clinic would publish ---------------
document = certification_document(proposed, alpha=0.10)
print(document.to_json())
print()
print(f"document internally consistent: {document.verify()}")
print()
print(
    "verdict: the proposal violates "
    f"{report.n_violated}/{report.n_providers} patients and would lose "
    f"{report.n_defaulted} of them; "
    f"{'do not ship' if not document.certificate.satisfied else 'ship'} "
    f"without renegotiating consent."
)

"""Semantic validation of policy-language documents against a taxonomy.

The parser's structural checks guarantee documents are well-formed; this
module checks they *mean* something in a given deployment: purposes are
registered, level names exist on their ladders, ranks are in range, and —
for preference documents — explicit preferences only mention attributes
the provider claims to have supplied.

Validators return a list of human-readable problem strings (empty when the
document is valid) rather than raising on first error, so UIs and audit
pipelines can present everything at once.  ``strict=True`` converts a
non-empty result into a :class:`PolicyDocumentError`.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..core.dimensions import Dimension
from ..exceptions import DomainError, PolicyDocumentError, UnknownPurposeError
from ..taxonomy.builder import Taxonomy
from .ast import PolicyDocument, PreferenceDocument, TupleSpec
from .parser import policy_document, preference_document

_SPEC_DIMENSIONS = (
    ("visibility", Dimension.VISIBILITY),
    ("granularity", Dimension.GRANULARITY),
    ("retention", Dimension.RETENTION),
)


def _check_spec(
    spec: TupleSpec, taxonomy: Taxonomy, *, context: str
) -> list[str]:
    """All semantic problems with one rule/preference line."""
    problems: list[str] = []
    try:
        taxonomy.purposes.validate(spec.purpose)
    except UnknownPurposeError:
        problems.append(f"{context}: unknown purpose {spec.purpose!r}")
    for field_name, dimension in _SPEC_DIMENSIONS:
        value = getattr(spec, field_name)
        try:
            taxonomy.domain(dimension).rank_of(value)
        except DomainError:
            problems.append(
                f"{context}: {field_name} value {value!r} is not on the "
                f"{taxonomy.domain(dimension).name!r} ladder"
            )
    return problems


def validate_policy_document(
    raw: Mapping | PolicyDocument,
    taxonomy: Taxonomy,
    *,
    strict: bool = False,
) -> list[str]:
    """Semantic problems in a policy document (empty list when valid)."""
    document = raw if isinstance(raw, PolicyDocument) else policy_document(raw)
    problems: list[str] = []
    for index, spec in enumerate(document.rules):
        problems.extend(
            _check_spec(
                spec,
                taxonomy,
                context=f"policy {document.name!r} rule {index}",
            )
        )
    if strict and problems:
        raise PolicyDocumentError("; ".join(problems))
    return problems


def validate_preference_document(
    raw: Mapping | PreferenceDocument,
    taxonomy: Taxonomy,
    *,
    strict: bool = False,
) -> list[str]:
    """Semantic problems in a preference document (empty list when valid)."""
    document = (
        raw if isinstance(raw, PreferenceDocument) else preference_document(raw)
    )
    problems: list[str] = []
    for index, spec in enumerate(document.preferences):
        context = f"preferences of {document.provider!r} entry {index}"
        problems.extend(_check_spec(spec, taxonomy, context=context))
        if (
            document.attributes_provided is not None
            and spec.attribute not in document.attributes_provided
        ):
            problems.append(
                f"{context}: preference for attribute {spec.attribute!r} "
                f"not listed in attributes_provided"
            )
    if strict and problems:
        raise PolicyDocumentError("; ".join(problems))
    return problems

"""Chaos: a worker death must surface as a coded error, never a leak.

The executor's ``worker_faults`` build a *fresh* fault plan inside each
worker after the fork (an inherited parent plan is disarmed — see
:class:`~repro.resilience.faults.FaultPlan`), so a ``kill`` spec at the
``parallel.task`` site SIGKILLs a real worker process mid-task.  The
parent must then (a) raise :class:`~repro.exceptions.ParallelExecutionError`
— surfaced by the CLI as ``error[PVL907]`` — and (b) shut the pool down
and unlink the shared-memory block before the exception propagates, so
nothing under ``/dev/shm`` outlives the failure.
"""

from __future__ import annotations

import argparse
import glob
import random

import pytest

from repro.exceptions import ParallelExecutionError
from repro.perf import ShardExecutor
from repro.perf.parallel import TASK_FAULT_SITE
from repro.resilience import FaultSpec
from repro.resilience.diagnostics import CLI_PARALLEL, RUNTIME_CODES

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
)


def test_worker_kill_surfaces_coded_error_and_releases_shm():
    rng = random.Random(99)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos")
    executor = ShardExecutor(
        population,
        workers=2,
        worker_faults=[FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0)],
    )
    segment = executor.segment_name
    assert glob.glob(f"/dev/shm/{segment}")
    with pytest.raises(ParallelExecutionError):
        executor.evaluate(policy)
    # The failure path already shut the pool down and unlinked the block.
    assert glob.glob(f"/dev/shm/{segment}") == []
    assert glob.glob("/dev/shm/pvl_*") == []
    executor.close()  # still safe after the failure path


def test_parent_plan_never_fires_without_worker_faults():
    """A healthy executor with no worker faults completes normally."""
    rng = random.Random(100)
    population = _random_population(rng)
    policy = _random_policy(rng, name="healthy")
    with ShardExecutor(population, workers=2) as executor:
        report = executor.evaluate(policy)
        assert report.n_providers == len(population)
    assert glob.glob("/dev/shm/pvl_*") == []


def test_pvl907_registered():
    assert CLI_PARALLEL == "PVL907"
    assert CLI_PARALLEL in RUNTIME_CODES


def test_cli_maps_parallel_failure_to_pvl907(capsys):
    from repro.cli import _dispatch

    def boom(args):
        raise ParallelExecutionError("a parallel worker died mid-task")

    assert _dispatch(argparse.Namespace(func=boom)) == 2
    err = capsys.readouterr().err
    assert "error[PVL907]" in err
    assert "worker died" in err

"""Observed default behaviour under a widening history.

A house running a legacy system sees *behaviour*, not preferences: after
each policy expansion, some providers leave.  Each departure brackets the
provider's unknown threshold ``v_i`` between the severity the previous
policy inflicted on them (they tolerated it) and the severity of the
policy that drove them out — an **interval-censored** observation.
Providers who never leave give a one-sided (right-censored) observation.

What the house *can* compute, even without knowing ``v_i``, is the
severity each policy would inflict — that only needs the preferences and
sensitivities it collects at sign-up (or, for a fully blind house, any
monotone proxy of exposure).  :func:`observe_widening_history` plays the
role of the paper's "long-term observation", producing the observation
list an estimator consumes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Hashable

from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import ValidationError
from ..perf import BatchViolationEngine


@dataclass(frozen=True, slots=True)
class DefaultObservation:
    """One provider's observed departure behaviour.

    ``lower`` is the largest severity the provider was seen to tolerate;
    ``upper`` is the severity of the policy under which they left, or
    ``None`` when they never left (right-censored): ``v_i`` lies in
    ``(lower, upper]`` under the paper's strict-inequality semantics,
    or in ``(lower, inf)`` when censored.
    """

    provider_id: Hashable
    lower: float
    upper: float | None

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise ValidationError("lower severity bound must be >= 0")
        if self.upper is not None and self.upper < self.lower:
            raise ValidationError(
                f"upper bound {self.upper} below lower bound {self.lower}"
            )

    @property
    def censored(self) -> bool:
        """True when the provider never defaulted within the history."""
        return self.upper is None


def apply_policy_observation(
    report,
    remaining: set[Hashable],
    last_tolerated: dict[Hashable, float],
    departures: dict[Hashable, float],
) -> None:
    """Fold one policy's batch report into the observation state.

    Mutates the three state maps in place: providers whose severity
    crosses their threshold move from *remaining* into *departures*;
    survivors' *last_tolerated* advances.  Shared with the resumable
    forecast runner so checkpointed replays evolve the state through the
    identical transition.

    Raises
    ------
    ValidationError
        If a provider's severity decreased relative to the severity they
        last tolerated (the history is not a monotone widening path, so
        the interval bracketing would be unsound).
    """
    for row, provider_id in enumerate(report.provider_ids):
        if provider_id not in remaining:
            continue
        violation = float(report.violations[row])
        previous = last_tolerated[provider_id]
        if violation < previous - 1e-9:
            raise ValidationError(
                "severities decreased along the policy sequence; "
                "observations would not bracket thresholds"
            )
        if report.defaulted[row]:
            departures[provider_id] = violation
            remaining.discard(provider_id)
        else:
            last_tolerated[provider_id] = violation


def observations_from_state(
    population: Population,
    last_tolerated: dict[Hashable, float],
    departures: dict[Hashable, float],
) -> list[DefaultObservation]:
    """The per-provider observation list from a replayed state."""
    return [
        DefaultObservation(
            provider_id=provider.provider_id,
            lower=last_tolerated[provider.provider_id],
            upper=departures.get(provider.provider_id),
        )
        for provider in population
    ]


def observe_widening_history(
    population: Population,
    policies: Sequence[HousePolicy],
    *,
    implicit_zero: bool = True,
) -> list[DefaultObservation]:
    """Replay a widening history and record who left after which policy.

    Parameters
    ----------
    population:
        The initial providers (with their true thresholds — used only to
        *simulate* the behaviour; the observations expose severities, not
        thresholds).
    policies:
        The policy sequence the house deployed, in order.  Severities must
        be non-decreasing along the sequence for the bracketing to be
        sound; this holds for any monotone widening path and is verified
        per provider.

    Returns
    -------
    list[DefaultObservation]
        One observation per initial provider.
    """
    if not policies:
        raise ValidationError("need at least one policy to observe")
    # A provider's severity and default verdict depend only on their own
    # preferences and threshold, never on who else is present — so the
    # whole history is evaluated once against the *full* population
    # through the batch engine (consecutive deployed policies usually
    # share most columns, which its delta path exploits), and the
    # departure bookkeeping replays over the resulting arrays.
    engine = BatchViolationEngine(population, implicit_zero=implicit_zero)
    remaining: set[Hashable] = {provider.provider_id for provider in population}
    last_tolerated: dict[Hashable, float] = {
        provider.provider_id: 0.0 for provider in population
    }
    departures: dict[Hashable, float] = {}
    for policy in policies:
        if not remaining:
            break
        report = engine.evaluate(policy)
        apply_policy_observation(report, remaining, last_tolerated, departures)
    return observations_from_state(population, last_tolerated, departures)

"""Unit tests for the fixed-width table formatter."""

from __future__ import annotations

import pytest

from repro.analysis import format_table


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "n"], [["alice", 1], ["bob", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="my table")
        assert text.splitlines()[0] == "my table"

    def test_numeric_columns_right_aligned(self):
        text = format_table(["n"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0] == "  1"
        assert rows[1] == "100"

    def test_text_columns_left_aligned(self):
        text = format_table(["name"], [["ab"], ["abcd"]])
        rows = text.splitlines()[2:]
        assert rows[0] == "ab  "

    def test_floats_compact(self):
        text = format_table(["p"], [[0.3333333333]])
        assert "0.3333" in text

    def test_integral_floats_rendered_as_ints(self):
        text = format_table(["v"], [[140.0]])
        assert "140" in text
        assert "140.0" not in text

    def test_nan_rendered(self):
        text = format_table(["v"], [[float("nan")]])
        assert "nan" in text

    def test_infinity_rendered(self):
        text = format_table(["v"], [[float("inf")], [float("-inf")]])
        assert "inf" in text
        assert "-inf" in text

    def test_bools_rendered_as_words(self):
        text = format_table(["ok"], [[True], [False]])
        assert "True" in text
        assert "False" in text

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2

    def test_generator_rows_accepted(self):
        text = format_table(["a"], ([i] for i in range(3)))
        assert len(text.splitlines()) == 5


class TestLintReportTable:
    def test_rows_carry_code_severity_location(self):
        from repro.analysis import lint_report_table
        from repro.lint import Diagnostic, LintReport, Severity, SourceLocation

        report = LintReport.from_diagnostics(
            [
                Diagnostic(
                    code="PVL001",
                    severity=Severity.ERROR,
                    message="unknown purpose 'resale'",
                    location=SourceLocation("policy", name="base", index=0),
                )
            ]
        )
        table = lint_report_table(report)
        assert "PVL001" in table
        assert "error" in table
        assert "policy 'base' rule 0" in table

    def test_empty_report_is_still_printable(self):
        from repro.analysis import lint_report_table
        from repro.lint import LintReport

        table = lint_report_table(LintReport(diagnostics=()))
        assert "no findings" in table

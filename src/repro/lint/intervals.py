"""Abstract interpretation of the severity model: interval bounds.

The severity of one provider (Eq. 15) is a sum of products::

    Violation_i = sum_{clauses} diff(p, P) x Sigma^a x s_i^a x s_i^a[dim]

The *geometric* factor — the rank exceedance ``diff(p, P)`` and with it
Definition 1's binary ``w_i`` — depends only on the lattice distance
between the policy and preference tuples, never on the weights.  This
module exploits that split to bound severities **without evaluating the
engine**:

* the raw exceedance profile of every provider is computed exactly from
  the documents (clause shapes are deduplicated, so a population in which
  thousands of providers share a handful of distinct preference tuples
  pays the geometry once per shape, not once per provider);
* the weight factor is abstracted to a per-``(attribute, dimension)``
  interval ``[w_min, w_max]`` taken over the providers supplying the
  attribute (``weight_bounds="population"``) or to the provider's own
  exact weights (``weight_bounds="provider"``, collapsing the interval to
  a point).

The result is a sound enclosure: for every provider,
``lower_i <= Violation_i <= upper_i`` where ``Violation_i`` is the exact
Eq. 15 value the :class:`~repro.core.engine.ViolationEngine` computes,
and the finding count (hence ``w_i`` and Definition 3's ``P(W)``) is
**exact**, which is what lets
:meth:`~repro.perf.batch.BatchViolationEngine.certify` skip evaluation
entirely (``static=True``) while staying verdict-identical.  The
soundness property is held against the reference engine on hundreds of
randomized populations in ``tests/properties/test_interval_soundness.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from time import perf_counter
from typing import Hashable, Iterator, Mapping

from .._validation import check_probability
from ..core.default import DefaultModel
from ..core.dimensions import ORDERED_DIMENSIONS
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import SensitivityModel
from ..exceptions import ValidationError
from ..obs import active_observer

#: The admissible ``weight_bounds`` modes of :func:`interval_analysis`.
WEIGHT_BOUND_MODES = ("population", "provider")


@dataclass(frozen=True, slots=True)
class SeverityInterval:
    """A closed interval ``[lower, upper]`` of severities."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if math.isnan(self.lower) or math.isnan(self.upper):
            raise ValidationError("severity bounds must not be NaN")
        if self.lower > self.upper:
            raise ValidationError(
                f"severity interval is empty: lower {self.lower!r} > "
                f"upper {self.upper!r}"
            )

    @classmethod
    def zero(cls) -> "SeverityInterval":
        """The point interval ``[0, 0]``."""
        return cls(0.0, 0.0)

    @classmethod
    def point(cls, value: float) -> "SeverityInterval":
        """The degenerate interval ``[value, value]``."""
        return cls(value, value)

    @property
    def width(self) -> float:
        """``upper - lower``."""
        return self.upper - self.lower

    @property
    def is_point(self) -> bool:
        """Whether the interval pins a single value."""
        return self.lower == self.upper

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def __contains__(self, value: object) -> bool:
        return isinstance(value, (int, float)) and self.contains(float(value))

    def __add__(self, other: "SeverityInterval") -> "SeverityInterval":
        if not isinstance(other, SeverityInterval):
            return NotImplemented
        return SeverityInterval(self.lower + other.lower, self.upper + other.upper)

    def as_dict(self) -> dict[str, float]:
        """The interval as a JSON-safe dict."""
        return {"lower": self.lower, "upper": self.upper}

    def __str__(self) -> str:
        return f"[{self.lower:g}, {self.upper:g}]"


@dataclass(frozen=True, slots=True)
class ProviderSeverityBounds:
    """The static verdict for one provider.

    ``interval`` encloses the exact ``Violation_i``; ``findings`` is the
    **exact** number of dimension-level exceedances (weight-independent),
    so ``violated`` is Definition 1's exact ``w_i``.  The default verdict
    is three-valued: ``must_default`` (the lower bound already trips the
    threshold), ``may_default`` (only the upper bound does), or safe.
    """

    provider_id: Hashable
    interval: SeverityInterval
    findings: int
    threshold: float
    strict: bool

    @property
    def violated(self) -> bool:
        """Definition 1's ``w_i`` — exact, not an approximation."""
        return self.findings > 0

    @property
    def provably_safe(self) -> bool:
        """No clause geometry can violate this provider under the policy."""
        return self.findings == 0

    @property
    def must_default(self) -> bool:
        """Definition 4 trips for every weight assignment in the bounds."""
        if self.strict:
            return self.interval.lower > self.threshold
        return self.interval.lower >= self.threshold

    @property
    def may_default(self) -> bool:
        """Definition 4 trips for some weight assignment in the bounds."""
        if self.strict:
            return self.interval.upper > self.threshold
        return self.interval.upper >= self.threshold

    def as_dict(self) -> dict[str, object]:
        """The bounds as a JSON-safe dict."""
        return {
            "provider": str(self.provider_id),
            "lower": self.interval.lower,
            "upper": self.interval.upper,
            "findings": self.findings,
            "violated": self.violated,
            "threshold": (
                None if math.isinf(self.threshold) else self.threshold
            ),
            "must_default": self.must_default,
            "may_default": self.may_default,
        }


@dataclass(frozen=True, slots=True)
class PopulationIntervals:
    """The static analysis of one (policy, population) pair.

    ``providers`` is in population order (the same order every engine
    report uses); ``house`` encloses Eq. 16's total ``Violations``.
    """

    policy_name: str
    providers: tuple[ProviderSeverityBounds, ...]
    house: SeverityInterval
    strict: bool
    weight_bounds: str

    def __len__(self) -> int:
        return len(self.providers)

    def __iter__(self) -> Iterator[ProviderSeverityBounds]:
        return iter(self.providers)

    @property
    def n_providers(self) -> int:
        """Population size ``N``."""
        return len(self.providers)

    @property
    def n_violated(self) -> int:
        """Exact count of providers with ``w_i = 1``."""
        return sum(1 for bounds in self.providers if bounds.violated)

    @property
    def violation_probability(self) -> float:
        """Definition 2's ``P(W)`` — exact, derived from exact ``w_i``."""
        n = len(self.providers)
        return (self.n_violated / n) if n else 0.0

    def violated_ids(self) -> tuple[Hashable, ...]:
        """Providers with ``w_i = 1``, in population order."""
        return tuple(b.provider_id for b in self.providers if b.violated)

    def provably_safe_ids(self) -> tuple[Hashable, ...]:
        """Providers no weight assignment can make violated."""
        return tuple(b.provider_id for b in self.providers if b.provably_safe)

    def default_probability_bounds(self) -> SeverityInterval:
        """Bounds on ``P(Default)`` (Definition 5) under the enclosure."""
        n = len(self.providers)
        if not n:
            return SeverityInterval.zero()
        must = sum(1 for b in self.providers if b.must_default)
        may = sum(1 for b in self.providers if b.may_default)
        return SeverityInterval(must / n, may / n)

    def bounds_for(self, provider_id: Hashable) -> ProviderSeverityBounds:
        """The bounds of one provider.

        Raises
        ------
        ValidationError
            If the provider is not in the analyzed population.
        """
        for bounds in self.providers:
            if bounds.provider_id == provider_id:
                return bounds
        raise ValidationError(
            f"provider {provider_id!r} is not in the analyzed population"
        )

    def certificate(self, alpha: float) -> PPDBCertificate:
        """Definition 3's certificate, derived without evaluation.

        Because the violated set is exact, the certificate is
        field-for-field identical to the one
        :meth:`~repro.perf.batch.BatchViolationEngine.certify` computes
        from a full evaluation (same violated tuple in population order,
        same ``P(W)`` float).
        """
        alpha = check_probability(alpha, "alpha")
        n = len(self.providers)
        if n == 0:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=0.0,
                satisfied=True,
                n_providers=0,
                violated_providers=(),
                policy_name=self.policy_name,
            )
        violated = self.violated_ids()
        p_w = len(violated) / n
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=self.policy_name,
        )

    def as_dict(self) -> dict[str, object]:
        """The analysis as a JSON-safe dict."""
        return {
            "policy": self.policy_name,
            "weight_bounds": self.weight_bounds,
            "n_providers": self.n_providers,
            "n_violated": self.n_violated,
            "violation_probability": self.violation_probability,
            "house": self.house.as_dict(),
            "providers": [b.as_dict() for b in self.providers],
        }

    def __str__(self) -> str:
        return (
            f"PopulationIntervals[{self.policy_name}]: N={self.n_providers}, "
            f"P(W)={self.violation_probability:.4f}, "
            f"Violations in {self.house}"
        )


def _policy_shapes(
    policy: HousePolicy,
) -> dict[tuple[str, str], tuple[tuple[int, int, int], ...]]:
    """Policy entries grouped by ``(attribute, purpose)`` column."""
    grouped: dict[tuple[str, str], list[tuple[int, int, int]]] = {}
    for entry in policy.entries:
        key = (entry.attribute, entry.tuple.purpose)
        grouped.setdefault(key, []).append(
            (
                entry.tuple.visibility,
                entry.tuple.granularity,
                entry.tuple.retention,
            )
        )
    return {key: tuple(sorted(ranks)) for key, ranks in grouped.items()}


def _shape_exceedance(
    policy_ranks: tuple[tuple[int, int, int], ...],
    pref_ranks: tuple[int, int, int],
) -> tuple[tuple[int, int, int], int]:
    """Eq. 12 applied to one clause shape: raw exceedances plus count.

    Returns the per-dimension exceedance totals of every policy rank
    triple in the column over *pref_ranks*, and the number of
    dimension-level findings — exactly the terms
    :func:`~repro.core.violation.find_violations` produces for the pair.
    """
    totals = [0, 0, 0]
    count = 0
    for ranks in policy_ranks:
        for axis in range(3):
            exceedance = ranks[axis] - pref_ranks[axis]
            if exceedance > 0:
                totals[axis] += exceedance
                count += 1
    return (totals[0], totals[1], totals[2]), count


def interval_analysis(
    policy: HousePolicy,
    population: Population,
    *,
    sensitivities: SensitivityModel | None = None,
    default_model: DefaultModel | None = None,
    implicit_zero: bool = True,
    weight_bounds: str = "population",
) -> PopulationIntervals:
    """Bound every ``Violation_i`` (and Eq. 16) from the documents alone.

    Parameters
    ----------
    policy, population:
        The pair to analyze.  Neither is evaluated: only lattice
        distances and sensitivity lookups are performed.
    sensitivities, default_model:
        Optional overrides, defaulting to the population's own models —
        the same contract as the engines.
    implicit_zero:
        Whether Section 5's implicit-zero completion applies.
    weight_bounds:
        ``"population"`` abstracts each ``(attribute, dimension)`` weight
        to its min/max over the providers supplying the attribute —
        cheap, and sound for any provider.  ``"provider"`` uses each
        provider's own weights, collapsing every interval to the exact
        static severity (still without invoking an engine).
    """
    if not isinstance(policy, HousePolicy):
        raise ValidationError(
            f"policy must be a HousePolicy, got {type(policy).__name__}"
        )
    if not isinstance(population, Population):
        raise ValidationError(
            f"population must be a Population, got {type(population).__name__}"
        )
    if weight_bounds not in WEIGHT_BOUND_MODES:
        raise ValidationError(
            f"weight_bounds must be one of {WEIGHT_BOUND_MODES}, "
            f"got {weight_bounds!r}"
        )
    obs = active_observer()
    start = perf_counter() if obs is not None else 0.0
    model = (
        sensitivities
        if sensitivities is not None
        else population.sensitivity_model()
    )
    defaults = (
        default_model
        if default_model is not None
        else population.default_model()
    )
    columns = _policy_shapes(policy)
    by_attribute: dict[str, dict[str, tuple[tuple[int, int, int], ...]]] = {}
    for (attribute, purpose), ranks in columns.items():
        by_attribute.setdefault(attribute, {})[purpose] = ranks

    # Pass 1 — exact geometry.  ``profiles[i]`` maps attribute -> raw
    # per-dimension exceedance totals; clause shapes are memoised so a
    # population sharing few distinct tuples pays each shape once.
    shape_cache: dict[
        tuple[str, str, tuple[int, int, int]], tuple[tuple[int, int, int], int]
    ] = {}
    profiles: list[dict[str, list[int]]] = []
    finding_counts: list[int] = []
    suppliers: dict[str, list[Hashable]] = {}
    providers = tuple(population)
    for provider in providers:
        preferences = provider.preferences
        raw: dict[str, list[int]] = {}
        findings = 0
        for entry in preferences.entries:
            attribute = entry.attribute
            purpose = entry.purpose
            policy_ranks = columns.get((attribute, purpose))
            if not policy_ranks:
                continue
            pref_ranks = (
                entry.tuple.visibility,
                entry.tuple.granularity,
                entry.tuple.retention,
            )
            shape_key = (attribute, purpose, pref_ranks)
            shape = shape_cache.get(shape_key)
            if shape is None:
                shape = _shape_exceedance(policy_ranks, pref_ranks)
                shape_cache[shape_key] = shape
            exceedance, count = shape
            if count:
                totals = raw.setdefault(attribute, [0, 0, 0])
                for axis in range(3):
                    totals[axis] += exceedance[axis]
                findings += count
        for attribute in preferences.attributes_provided:
            suppliers.setdefault(attribute, []).append(provider.provider_id)
            if not implicit_zero:
                continue
            purposes = by_attribute.get(attribute)
            if not purposes:
                continue
            covered = preferences.purposes_for(attribute)
            for purpose, policy_ranks in purposes.items():
                if purpose in covered:
                    continue
                shape_key = (attribute, purpose, (0, 0, 0))
                shape = shape_cache.get(shape_key)
                if shape is None:
                    shape = _shape_exceedance(policy_ranks, (0, 0, 0))
                    shape_cache[shape_key] = shape
                exceedance, count = shape
                if count:
                    totals = raw.setdefault(attribute, [0, 0, 0])
                    for axis in range(3):
                        totals[axis] += exceedance[axis]
                    findings += count
        profiles.append(raw)
        finding_counts.append(findings)

    # Pass 2 — the weight abstraction.
    weight_range: dict[str, tuple[list[float], list[float]]] = {}
    if weight_bounds == "population":
        for attribute, provider_ids in suppliers.items():
            attribute_weight = model.attribute_weight(attribute)
            low = [math.inf] * 3
            high = [-math.inf] * 3
            for provider_id in provider_ids:
                datum = model.datum(provider_id, attribute)
                base = attribute_weight * datum.value
                for axis, dim in enumerate(ORDERED_DIMENSIONS):
                    weight = base * datum.dimension_weight(dim)
                    if weight < low[axis]:
                        low[axis] = weight
                    if weight > high[axis]:
                        high[axis] = weight
            weight_range[attribute] = (low, high)

    bounds: list[ProviderSeverityBounds] = []
    house_lower = 0.0
    house_upper = 0.0
    for provider, raw, findings in zip(providers, profiles, finding_counts):
        lower = 0.0
        upper = 0.0
        for attribute, totals in raw.items():
            if weight_bounds == "provider":
                attribute_weight = model.attribute_weight(attribute)
                datum = model.datum(provider.provider_id, attribute)
                base = attribute_weight * datum.value
                for axis, dim in enumerate(ORDERED_DIMENSIONS):
                    if totals[axis]:
                        exact = totals[axis] * base * datum.dimension_weight(dim)
                        lower += exact
                        upper += exact
            else:
                low, high = weight_range[attribute]
                for axis in range(3):
                    if totals[axis]:
                        lower += totals[axis] * low[axis]
                        upper += totals[axis] * high[axis]
        house_lower += lower
        house_upper += upper
        bounds.append(
            ProviderSeverityBounds(
                provider_id=provider.provider_id,
                interval=SeverityInterval(lower, upper),
                findings=findings,
                threshold=defaults.threshold(provider.provider_id),
                strict=defaults.strict,
            )
        )
    result = PopulationIntervals(
        policy_name=policy.name,
        providers=tuple(bounds),
        house=SeverityInterval(house_lower, house_upper),
        strict=defaults.strict,
        weight_bounds=weight_bounds,
    )
    if obs is not None:
        obs.inc("lint.interval_analyses")
        obs.set_gauge("lint.interval_shapes", len(shape_cache))
        obs.observe("lint.interval_seconds", perf_counter() - start)
    return result

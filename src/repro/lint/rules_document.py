"""Document-semantic rules (``PVL001``-``PVL006``).

These are the linter's first layer: each document checked against the
taxonomy in isolation.  ``PVL001``-``PVL003`` are the legacy
``policy_lang.validator`` checks re-expressed as coded diagnostics (the
``validate_*`` functions are now thin wrappers over them); the rest catch
document-level redundancy and mis-ordered ladders.
"""

from __future__ import annotations

from collections.abc import Callable

from ..core.dimensions import ORDERED_DIMENSIONS, Dimension
from ..exceptions import DomainError, UnknownPurposeError
from ..policy_lang.ast import TupleSpec
from .diagnostics import SourceLocation, Severity
from .registry import Layer, LintContext, rule

#: TupleSpec field name -> ordered dimension, in the legacy check order.
SPEC_DIMENSIONS: tuple[tuple[str, Dimension], ...] = tuple(
    (dimension.value, dimension) for dimension in ORDERED_DIMENSIONS
)


@rule(
    "PVL001",
    title="unknown purpose",
    severity=Severity.ERROR,
    layer=Layer.DOCUMENT,
    scope="mixed",
    description=(
        "A rule or preference names a purpose the taxonomy does not "
        "register; the tuple can never be compared to anything."
    ),
)
def check_unknown_purpose(ctx: LintContext, emit: Callable[..., None]) -> None:
    for location, spec in ctx.iter_policy_specs():
        _check_purpose(ctx, location, spec, emit)
    for location, spec, _document in ctx.iter_preference_specs():
        _check_purpose(ctx, location, spec, emit)


def _check_purpose(
    ctx: LintContext,
    location: SourceLocation,
    spec: TupleSpec,
    emit: Callable[..., None],
) -> None:
    try:
        ctx.taxonomy.purposes.validate(spec.purpose)
    except UnknownPurposeError:
        emit(
            SourceLocation(
                location.document,
                name=location.name,
                index=location.index,
                field="purpose",
            ),
            f"unknown purpose {spec.purpose!r}",
            purpose=spec.purpose,
            known_purposes=sorted(ctx.taxonomy.purposes.purposes),
        )


@rule(
    "PVL002",
    title="unknown level",
    severity=Severity.ERROR,
    layer=Layer.DOCUMENT,
    scope="mixed",
    description=(
        "An ordered-dimension value is neither a level name on the "
        "taxonomy's ladder nor a rank within its range."
    ),
)
def check_unknown_level(ctx: LintContext, emit: Callable[..., None]) -> None:
    for location, spec in ctx.iter_policy_specs():
        _check_levels(ctx, location, spec, emit)
    for location, spec, _document in ctx.iter_preference_specs():
        _check_levels(ctx, location, spec, emit)


def _check_levels(
    ctx: LintContext,
    location: SourceLocation,
    spec: TupleSpec,
    emit: Callable[..., None],
) -> None:
    for field_name, dimension in SPEC_DIMENSIONS:
        value = getattr(spec, field_name)
        domain = ctx.taxonomy.domain(dimension)
        try:
            domain.rank_of(value)
        except DomainError:
            emit(
                SourceLocation(
                    location.document,
                    name=location.name,
                    index=location.index,
                    field=field_name,
                ),
                f"{field_name} value {value!r} is not on the "
                f"{domain.name!r} ladder",
                dimension=field_name,
                value=value,
                domain=domain.name,
            )


@rule(
    "PVL003",
    title="undeclared attribute",
    severity=Severity.ERROR,
    layer=Layer.DOCUMENT,
    scope="mixed",
    description=(
        "A preference covers an attribute the provider did not list in "
        "attributes_provided; the model would reject the document."
    ),
)
def check_undeclared_attribute(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    for location, spec, document in ctx.iter_preference_specs():
        if (
            document.attributes_provided is not None
            and spec.attribute not in document.attributes_provided
        ):
            emit(
                SourceLocation(
                    location.document,
                    name=location.name,
                    index=location.index,
                    field="attribute",
                ),
                f"preference for attribute {spec.attribute!r} not listed "
                f"in attributes_provided",
                attribute=spec.attribute,
                attributes_provided=sorted(document.attributes_provided),
            )


@rule(
    "PVL004",
    title="duplicate policy rule",
    severity=Severity.WARNING,
    layer=Layer.DOCUMENT,
    description=(
        "A policy document repeats an identical rule row; HousePolicy "
        "deduplicates silently, so the extra row is dead weight."
    ),
)
def check_duplicate_policy_rule(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    for kind, document in (
        ("policy", ctx.policy_doc),
        ("candidate", ctx.candidate_doc),
    ):
        if document is None:
            continue
        first_seen: dict[TupleSpec, int] = {}
        for index, spec in enumerate(document.rules):
            if spec in first_seen:
                emit(
                    SourceLocation(kind, name=document.name, index=index),
                    f"exact duplicate of rule {first_seen[spec]} "
                    f"({spec.attribute!r} @ {spec.purpose!r})",
                    attribute=spec.attribute,
                    purpose=spec.purpose,
                    duplicate_of=first_seen[spec],
                )
            else:
                first_seen[spec] = index


@rule(
    "PVL005",
    title="duplicate preference",
    severity=Severity.WARNING,
    layer=Layer.DOCUMENT,
    scope="provider",
    description=(
        "A provider repeats an identical preference row; the duplicate "
        "adds nothing to the model."
    ),
)
def check_duplicate_preference(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    for document in ctx.preference_docs:
        first_seen: dict[TupleSpec, int] = {}
        for index, spec in enumerate(document.preferences):
            if spec in first_seen:
                emit(
                    SourceLocation(
                        "population", name=str(document.provider), index=index
                    ),
                    f"exact duplicate of entry {first_seen[spec]} "
                    f"({spec.attribute!r} @ {spec.purpose!r})",
                    attribute=spec.attribute,
                    purpose=spec.purpose,
                    duplicate_of=first_seen[spec],
                )
            else:
                first_seen[spec] = index


@rule(
    "PVL006",
    title="non-monotone ladder",
    severity=Severity.WARNING,
    layer=Layer.DOCUMENT,
    description=(
        "A ladder's zero-exposure level ('none') sits above rank 0, so the "
        "ladder is not monotone in exposure and the implicit zero tuple "
        "<pr, 0, 0, 0> no longer means 'reveal nothing'."
    ),
)
def check_non_monotone_ladder(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    for dimension in ORDERED_DIMENSIONS:
        domain = ctx.taxonomy.domain(dimension)
        levels = getattr(domain, "levels", None)
        if not levels:
            continue  # unbounded numeric domains are monotone by construction
        if "none" in levels and levels.index("none") != 0:
            emit(
                SourceLocation("taxonomy", field=dimension.value),
                f"{dimension.value} ladder places 'none' at rank "
                f"{levels.index('none')}; exposure is not monotone in rank",
                dimension=dimension.value,
                rank=levels.index("none"),
                levels=list(levels),
            )

"""The append-only audit log and its reports.

Section 2: "Automation of this procedure makes privacy violations
auditable, so that data providers can continuously monitor the state of
their privacy."  The gate writes every decision; this module reads the log
back as typed :class:`AuditEvent` rows and summarises them into an
:class:`AuditReport` — including the *observed* violation rate, the
empirical counterpart of Definition 2's ``P(W)`` measured over actual
accesses instead of over the policy text.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from collections.abc import Iterator


@dataclass(frozen=True, slots=True)
class AuditEvent:
    """One audit-log row, decoded."""

    seq: int
    event: str
    provider_id: str | None
    attribute: str | None
    purpose: str | None
    visibility: int | None
    granularity: int | None
    retention: int | None
    detail: dict

    @property
    def is_violation(self) -> bool:
        """Whether this event records a violating access (denied or logged)."""
        return self.event in ("access-denied", "violation-logged")


@dataclass(frozen=True, slots=True)
class AuditReport:
    """Aggregate view over the audit log."""

    total_events: int
    granted: int
    denied: int
    violations_logged: int
    violated_providers: tuple[str, ...]

    @property
    def violating_accesses(self) -> int:
        """Accesses that exceeded at least one preference."""
        return self.denied + self.violations_logged

    @property
    def observed_violation_rate(self) -> float:
        """Violating accesses / all access events (0 when the log is empty).

        The access-level analogue of ``P(W)``: the fraction of actual data
        uses that conflicted with stored preferences.
        """
        accesses = self.granted + self.denied + self.violations_logged
        if accesses == 0:
            return 0.0
        return self.violating_accesses / accesses


class AuditLog:
    """Typed read access to the ``audit_log`` table."""

    def __init__(self, connection: sqlite3.Connection) -> None:
        self._connection = connection

    def events(
        self,
        *,
        provider_id: str | None = None,
        attribute: str | None = None,
        only_violations: bool = False,
    ) -> Iterator[AuditEvent]:
        """Iterate events in sequence order, optionally filtered."""
        clauses: list[str] = []
        params: list[object] = []
        if provider_id is not None:
            clauses.append("provider_id = ?")
            params.append(provider_id)
        if attribute is not None:
            clauses.append("attribute = ?")
            params.append(attribute)
        if only_violations:
            clauses.append("event IN ('access-denied', 'violation-logged')")
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        rows = self._connection.execute(
            "SELECT seq, event, provider_id, attribute, purpose, visibility, "
            f"granularity, retention, detail FROM audit_log{where} ORDER BY seq",
            params,
        )
        for row in rows:
            yield AuditEvent(
                seq=row["seq"],
                event=row["event"],
                provider_id=row["provider_id"],
                attribute=row["attribute"],
                purpose=row["purpose"],
                visibility=row["visibility"],
                granularity=row["granularity"],
                retention=row["retention"],
                detail=json.loads(row["detail"]) if row["detail"] else {},
            )

    def record_policy_change(self, description: str) -> None:
        """Append a policy-change marker (widenings are auditable too)."""
        self._connection.execute(
            "INSERT INTO audit_log (event, detail) VALUES (?, ?)",
            ("policy-changed", json.dumps({"description": description})),
        )
        self._connection.commit()

    def report(self) -> AuditReport:
        """Summarise the whole log."""
        counts = {
            row["event"]: row["n"]
            for row in self._connection.execute(
                "SELECT event, COUNT(*) AS n FROM audit_log GROUP BY event"
            )
        }
        violated: set[str] = set()
        for event in self.events(only_violations=True):
            for provider in event.detail.get("violated_providers", []):
                violated.add(provider)
        total = sum(counts.values())
        return AuditReport(
            total_events=total,
            granted=counts.get("access-granted", 0),
            denied=counts.get("access-denied", 0),
            violations_logged=counts.get("violation-logged", 0),
            violated_providers=tuple(sorted(violated)),
        )

"""Unit tests for the policy-language parser."""

from __future__ import annotations

import pytest

from repro.core import PrivacyTuple
from repro.exceptions import DomainError, PolicyDocumentError, UnknownPurposeError
from repro.policy_lang import (
    parse_policy,
    parse_preferences,
    parse_sensitivities,
    policy_from_json,
    preferences_from_json,
)
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing", "research"])


POLICY_DOC = {
    "name": "doc-policy",
    "rules": [
        {
            "attribute": "weight",
            "purpose": "billing",
            "visibility": "house",
            "granularity": "partial",
            "retention": "short-term",
        },
        {
            "attribute": "age",
            "purpose": "research",
            "visibility": 1,
            "granularity": 1,
            "retention": 1,
        },
    ],
}


class TestParsePolicy:
    def test_names_resolved_to_ranks(self, taxonomy):
        policy = parse_policy(POLICY_DOC, taxonomy)
        assert policy.name == "doc-policy"
        weight = policy.for_attribute("weight")[0]
        assert weight.tuple == PrivacyTuple("billing", 2, 2, 2)

    def test_integer_ranks_accepted(self, taxonomy):
        policy = parse_policy(POLICY_DOC, taxonomy)
        age = policy.for_attribute("age")[0]
        assert age.tuple == PrivacyTuple("research", 1, 1, 1)

    def test_default_name(self, taxonomy):
        policy = parse_policy({"rules": []}, taxonomy)
        assert policy.name == "house-policy"

    def test_missing_rules_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            parse_policy({"name": "x"}, taxonomy)

    def test_missing_rule_key_rejected(self, taxonomy):
        doc = {"rules": [{"attribute": "a", "purpose": "billing"}]}
        with pytest.raises(PolicyDocumentError):
            parse_policy(doc, taxonomy)

    def test_unknown_rule_key_rejected(self, taxonomy):
        rule = dict(POLICY_DOC["rules"][0])
        rule["extra"] = 1
        with pytest.raises(PolicyDocumentError):
            parse_policy({"rules": [rule]}, taxonomy)

    def test_unknown_purpose_raises(self, taxonomy):
        rule = dict(POLICY_DOC["rules"][0])
        rule["purpose"] = "resale"
        with pytest.raises(UnknownPurposeError):
            parse_policy({"rules": [rule]}, taxonomy)

    def test_unknown_level_raises(self, taxonomy):
        rule = dict(POLICY_DOC["rules"][0])
        rule["visibility"] = "galaxy"
        with pytest.raises(DomainError):
            parse_policy({"rules": [rule]}, taxonomy)

    def test_non_mapping_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            parse_policy(["not", "a", "mapping"], taxonomy)  # type: ignore[arg-type]


class TestParsePreferences:
    DOC = {
        "provider": "alice",
        "attributes_provided": ["weight", "height"],
        "preferences": [
            {
                "attribute": "weight",
                "purpose": "billing",
                "visibility": "owner",
                "granularity": "existential",
                "retention": "transaction",
            }
        ],
    }

    def test_parsed_fields(self, taxonomy):
        prefs = parse_preferences(self.DOC, taxonomy)
        assert prefs.provider_id == "alice"
        assert prefs.attributes_provided == {"weight", "height"}
        assert prefs.entries[0].tuple == PrivacyTuple("billing", 1, 1, 1)

    def test_attributes_provided_optional(self, taxonomy):
        doc = {k: v for k, v in self.DOC.items() if k != "attributes_provided"}
        prefs = parse_preferences(doc, taxonomy)
        assert prefs.attributes_provided == {"weight"}

    def test_missing_provider_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            parse_preferences({"preferences": []}, taxonomy)

    def test_missing_preferences_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            parse_preferences({"provider": "alice"}, taxonomy)


class TestParseSensitivities:
    def test_full_document(self):
        model = parse_sensitivities(
            {
                "attributes": {"weight": 4.0},
                "providers": {
                    "ted": {
                        "weight": {
                            "value": 3,
                            "granularity": 5,
                            "retention": 2,
                        }
                    }
                },
            }
        )
        assert model.attribute_weight("weight") == 4.0
        datum = model.datum("ted", "weight")
        assert datum.value == 3.0
        assert datum.visibility == 1.0  # defaulted
        assert datum.granularity == 5.0

    def test_empty_document_is_neutral(self):
        model = parse_sensitivities({})
        assert model.attribute_weight("x") == 1.0

    def test_unknown_record_key_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_sensitivities(
                {"providers": {"t": {"w": {"weirdness": 3}}}}
            )

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_sensitivities({"attrs": {}})


class TestJsonVariants:
    def test_policy_from_json(self, taxonomy):
        import json

        policy = policy_from_json(json.dumps(POLICY_DOC), taxonomy)
        assert len(policy) == 2

    def test_preferences_from_json(self, taxonomy):
        import json

        prefs = preferences_from_json(
            json.dumps(TestParsePreferences.DOC), taxonomy
        )
        assert prefs.provider_id == "alice"

    def test_invalid_json_wrapped(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            policy_from_json("{not json", taxonomy)

    def test_non_object_json_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            policy_from_json("[1, 2]", taxonomy)

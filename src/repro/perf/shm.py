"""Shared-memory packing of compiled-population arrays.

A :class:`SharedArrayPack` copies a dict of NumPy arrays into **one**
``multiprocessing.shared_memory`` block with a picklable offset table,
so a worker pool attaches the whole compilation with a single ``shm_open``
instead of re-pickling megabytes of arrays per task.  Ownership is
strictly parent-side:

* the creating process registers the segment with its resource tracker,
  and is the only one that ever unlinks it (:meth:`SharedArrayPack.close`);
* workers attach through :func:`attach_arrays`, which suppresses the
  child-side resource-tracker registration — otherwise a worker exiting
  (or being killed) would prompt *its* tracker to unlink a segment the
  parent still owns, and clean shutdowns would log spurious leak
  warnings for segments that were never theirs.

Segment names carry a recognisable ``pvl_`` prefix so the chaos suite
can assert nothing leaked by listing ``/dev/shm`` (see
``tests/perf/test_parallel_chaos.py``).
"""

from __future__ import annotations

import os
from multiprocessing import resource_tracker, shared_memory
from typing import Mapping

import numpy as np

#: ``(offset, dtype string, shape)`` per array — the picklable layout.
ArrayLayout = dict[str, tuple[int, str, tuple[int, ...]]]

#: Byte alignment of each packed array within the block.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


class SharedArrayPack:
    """One shared-memory block holding many named arrays.

    The block is created and filled eagerly; :attr:`name` and
    :attr:`layout` are all a worker needs to map every array back with
    :func:`attach_arrays`.  The pack owns the segment: :meth:`close`
    (idempotent, also the context-manager exit) closes the mapping and
    unlinks the name, after which no new attachments are possible.
    """

    def __init__(self, arrays: Mapping[str, np.ndarray]) -> None:
        layout: ArrayLayout = {}
        offset = 0
        contiguous: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            layout[name] = (offset, array.dtype.str, tuple(array.shape))
            offset = _aligned(offset + array.nbytes)
        self._layout = layout
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=_fresh_name()
        )
        for name, array in contiguous.items():
            start, dtype, shape = layout[name]
            view = np.ndarray(
                shape, dtype=dtype, buffer=self._shm.buf, offset=start
            )
            view[...] = array
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name workers attach to."""
        return self._shm.name

    @property
    def layout(self) -> ArrayLayout:
        """The picklable offset table (name -> offset, dtype, shape)."""
        return self._layout

    @property
    def nbytes(self) -> int:
        """Total size of the shared block in bytes."""
        return self._shm.size

    @property
    def closed(self) -> bool:
        """Whether the segment has been closed and unlinked."""
        return self._closed

    def close(self) -> None:
        """Close the mapping and unlink the segment.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already gone (e.g. external cleanup)
            pass

    def __enter__(self) -> "SharedArrayPack":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass


def attach_arrays(
    name: str, layout: ArrayLayout
) -> tuple[shared_memory.SharedMemory, dict[str, np.ndarray]]:
    """Worker-side attach: map every packed array out of segment *name*.

    Returns the open segment (the caller must keep it referenced —
    the arrays are views into its buffer) and the name -> array mapping.
    The attachment is **untracked**: the worker's resource tracker never
    learns about the segment, leaving unlink authority with the parent.
    """
    shm = _attach_untracked(name)
    arrays = {
        array_name: np.ndarray(
            shape, dtype=dtype, buffer=shm.buf, offset=offset
        )
        for array_name, (offset, dtype, shape) in layout.items()
    }
    return shm, arrays


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    try:
        # Python >= 3.13 supports opting out of tracking directly.
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


def _fresh_name() -> str:
    # Recognisable prefix (leak checks grep /dev/shm for it) + pid +
    # random suffix against collisions with concurrent executors.
    return f"pvl_{os.getpid()}_{os.urandom(4).hex()}"

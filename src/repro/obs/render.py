"""Render a saved metrics snapshot (the ``repro obs`` subcommand).

A snapshot is the JSON document ``repro <command> --metrics PATH``
writes: sorted ``counters`` / ``gauges`` / ``timers`` lists plus the
recorded ``spans`` trees.  :func:`render_snapshot` turns one back into a
human-readable report, the Prometheus exposition format (for feeding a
pushgateway or diffing against a live scrape), or canonical JSON.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..exceptions import ValidationError
from .metrics import snapshot_to_prometheus

#: The formats ``repro obs`` accepts.
FORMATS = ("text", "prometheus", "json")


def _labels_suffix(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{{{rendered}}}"


def _check_snapshot(snapshot: Mapping[str, Any]) -> None:
    sections = ("counters", "gauges", "timers")
    if not isinstance(snapshot, Mapping) or not any(
        section in snapshot for section in sections
    ):
        raise ValidationError(
            "not a metrics snapshot: expected at least one of "
            "'counters', 'gauges', 'timers' (was this written by --metrics?)"
        )
    for section in sections:
        entries = snapshot.get(section, [])
        if not isinstance(entries, list) or any(
            not isinstance(entry, dict) or "name" not in entry
            for entry in entries
        ):
            raise ValidationError(
                f"not a metrics snapshot: {section!r} must be a list of "
                f"named entries"
            )


def render_snapshot_text(snapshot: Mapping[str, Any]) -> str:
    """The snapshot as an aligned, grep-friendly text report."""
    _check_snapshot(snapshot)
    lines: list[str] = []
    counters = snapshot.get("counters", [])
    gauges = snapshot.get("gauges", [])
    timers = snapshot.get("timers", [])
    lines.append(
        f"metrics snapshot: {len(counters)} counter(s), "
        f"{len(gauges)} gauge(s), {len(timers)} timer(s)"
    )
    if counters:
        lines.append("")
        lines.append("counters:")
        for entry in counters:
            name = f"{entry['name']}{_labels_suffix(entry.get('labels', {}))}"
            lines.append(f"  {name} = {entry['value']:g}")
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for entry in gauges:
            name = f"{entry['name']}{_labels_suffix(entry.get('labels', {}))}"
            lines.append(f"  {name} = {entry['value']:g}")
    if timers:
        lines.append("")
        lines.append("timers:")
        for entry in timers:
            name = f"{entry['name']}{_labels_suffix(entry.get('labels', {}))}"
            lines.append(
                f"  {name}: count={entry['count']:g} "
                f"total={entry['total']:.6f}s mean={entry['mean']:.6f}s "
                f"p50={entry['p50']:.6f}s p95={entry['p95']:.6f}s "
                f"max={entry['max']:.6f}s"
            )
    spans = snapshot.get("spans", [])
    if spans:
        lines.append("")
        lines.append(f"span trees: {len(spans)} root(s) recorded")
    return "\n".join(lines)


def render_snapshot(snapshot: Mapping[str, Any], format: str = "text") -> str:
    """Render *snapshot* in the named format (see :data:`FORMATS`)."""
    if format == "text":
        return render_snapshot_text(snapshot)
    if format == "prometheus":
        _check_snapshot(snapshot)
        return snapshot_to_prometheus(snapshot)
    if format == "json":
        _check_snapshot(snapshot)
        return json.dumps(snapshot, indent=2, sort_keys=True)
    raise ValidationError(
        f"unknown obs output format {format!r}; expected one of "
        f"{', '.join(FORMATS)}"
    )

"""Unit tests for the government-records (captive-population) scenario."""

from __future__ import annotations

import math

import pytest

from repro.core import ViolationEngine
from repro.datasets import government_scenario
from repro.simulation import WideningStep, run_expansion_sweep, widen


@pytest.fixture(scope="module")
def scenario():
    return government_scenario(120, captive_fraction=0.7, seed=3)


class TestCaptivity:
    def test_captive_fraction_applied(self, scenario):
        captive = sum(
            1 for p in scenario.population if math.isinf(p.threshold)
        )
        assert captive == round(0.7 * 120)

    def test_baseline_is_clean(self, scenario):
        report = ViolationEngine(scenario.policy, scenario.population).report()
        assert report.violation_probability == 0.0
        assert report.default_probability == 0.0

    def test_widening_violates_everyone_equally(self, scenario):
        """Captivity changes default behaviour, never violation status."""
        voluntary = government_scenario(120, captive_fraction=0.0, seed=3)
        widened_policy = widen(
            scenario.policy, WideningStep.uniform(2), scenario.taxonomy
        )
        captive_report = ViolationEngine(
            widened_policy, scenario.population
        ).report()
        voluntary_report = ViolationEngine(
            widened_policy, voluntary.population
        ).report()
        assert (
            captive_report.violation_probability
            == voluntary_report.violation_probability
        )
        assert (
            captive_report.total_violations
            == voluntary_report.total_violations
        )

    def test_captivity_suppresses_defaults(self, scenario):
        voluntary = government_scenario(120, captive_fraction=0.0, seed=3)
        widened_policy = widen(
            scenario.policy, WideningStep.uniform(2), scenario.taxonomy
        )
        captive_defaults = ViolationEngine(
            widened_policy, scenario.population
        ).report().default_probability
        voluntary_defaults = ViolationEngine(
            widened_policy, voluntary.population
        ).report().default_probability
        assert captive_defaults < voluntary_defaults

    def test_captive_providers_never_default(self, scenario):
        widened_policy = widen(
            scenario.policy, WideningStep.uniform(3), scenario.taxonomy
        )
        engine = ViolationEngine(widened_policy, scenario.population)
        for outcome in engine.outcomes():
            if math.isinf(outcome.threshold):
                assert not outcome.defaulted

    def test_weakened_feedback_loop(self, scenario):
        """With a captive majority, widening stays 'justified' (Eq. 31)
        far longer than with a voluntary population — the policy concern
        this scenario encodes."""
        voluntary = government_scenario(120, captive_fraction=0.0, seed=3)
        kwargs = dict(
            max_steps=3,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        captive_sweep = run_expansion_sweep(
            scenario.population, scenario.policy, scenario.taxonomy, **kwargs
        )
        voluntary_sweep = run_expansion_sweep(
            voluntary.population, voluntary.policy, voluntary.taxonomy, **kwargs
        )
        for captive_row, voluntary_row in zip(
            captive_sweep.rows, voluntary_sweep.rows
        ):
            assert captive_row.n_future >= voluntary_row.n_future
        assert captive_sweep.rows[-1].utility_future >= (
            voluntary_sweep.rows[-1].utility_future
        )

    def test_invalid_captive_fraction_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            government_scenario(10, captive_fraction=1.5)

    def test_deterministic(self):
        a = government_scenario(40, seed=9)
        b = government_scenario(40, seed=9)
        for provider_a, provider_b in zip(a.population, b.population):
            assert provider_a.preferences == provider_b.preferences
            assert provider_a.threshold == provider_b.threshold

"""The run journal: round trips, tamper evidence, identity pinning."""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.exceptions import (
    JournalCorruptionError,
    JournalError,
    JournalMismatchError,
)
from repro.resilience import FaultPlan, FaultSpec, RunJournal, journal_summary


@pytest.fixture()
def path(tmp_path):
    return str(tmp_path / "run.journal")


class TestRoundTrip:
    def test_payloads_survive_reopen(self, path):
        steps = [
            {"k": 0, "x": 0.1 + 0.2, "ids": ["a", "b"]},
            {"k": 1, "x": float("inf"), "ids": []},
        ]
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            for step in steps:
                journal.record_step(step)
        with RunJournal.open(path) as journal:
            assert journal.payloads() == steps
            assert journal.kind == "sweep"
            assert journal.fingerprint == "fp"
            assert journal.n_steps == 2

    def test_floats_round_trip_bit_for_bit(self, path):
        value = 0.1 + 0.2 + 1e-17
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            journal.record_step({"v": value})
        with RunJournal.open(path) as journal:
            assert journal.payloads()[0]["v"] == value

    def test_params_preserved(self, path):
        params = {"steps": 5, "utility": 1.5}
        with RunJournal.create(
            path, kind="sweep", fingerprint="fp", params=params
        ):
            pass
        with RunJournal.open(path) as journal:
            assert journal.params == params

    def test_record_step_returns_indices(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            assert journal.record_step({"a": 1}) == 0
            assert journal.record_step({"a": 2}) == 1

    def test_head_advances_per_step(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            heads = {journal.head}
            journal.record_step({"a": 1})
            heads.add(journal.head)
            journal.record_step({"a": 2})
            heads.add(journal.head)
            assert len(heads) == 3

    def test_create_refuses_existing_file(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp"):
            pass
        with pytest.raises(JournalError, match="already exists"):
            RunJournal.create(path, kind="sweep", fingerprint="fp")

    def test_open_missing_path(self, path):
        with pytest.raises(JournalError, match="no journal"):
            RunJournal.open(path)

    def test_open_garbage_file(self, tmp_path):
        path = str(tmp_path / "garbage")
        with open(path, "wb") as handle:
            handle.write(b"not a journal at all")
        with pytest.raises(JournalCorruptionError):
            RunJournal.open(path)


class TestTamperEvidence:
    def _recorded(self, path, n=3):
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            for k in range(n):
                journal.record_step({"k": k, "value": k * 1.5})

    def test_flipped_payload_byte_detected(self, path):
        self._recorded(path)
        connection = sqlite3.connect(path)
        (blob,) = connection.execute(
            "SELECT payload FROM journal_steps WHERE step = 1"
        ).fetchone()
        tampered = bytearray(blob)
        tampered[3] ^= 0x01
        connection.execute(
            "UPDATE journal_steps SET payload = ? WHERE step = 1",
            (bytes(tampered),),
        )
        connection.commit()
        connection.close()
        with pytest.raises(JournalCorruptionError):
            RunJournal.open(path)

    def test_semantically_valid_rewrite_detected(self, path):
        # Not a bit flip: replace a payload with different *valid* JSON.
        self._recorded(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE journal_steps SET payload = ? WHERE step = 0",
            (json.dumps({"k": 0, "value": 99.0}).encode(),),
        )
        connection.commit()
        connection.close()
        with pytest.raises(JournalCorruptionError, match="checksum"):
            RunJournal.open(path)

    def test_deleted_middle_step_detected(self, path):
        self._recorded(path)
        connection = sqlite3.connect(path)
        connection.execute("DELETE FROM journal_steps WHERE step = 1")
        connection.commit()
        connection.close()
        with pytest.raises(JournalCorruptionError, match="sequence"):
            RunJournal.open(path)

    def test_truncated_tail_is_a_valid_shorter_journal(self, path):
        # Losing the most recent steps is exactly the crash model — the
        # journal must still open and report the surviving prefix.
        self._recorded(path)
        connection = sqlite3.connect(path)
        connection.execute("DELETE FROM journal_steps WHERE step = 2")
        connection.commit()
        connection.close()
        with RunJournal.open(path) as journal:
            assert journal.n_steps == 2

    def test_corrupting_write_fault_detected_on_reopen(self, path):
        plan = FaultPlan(
            [FaultSpec(site="journal.write", kind="corrupt", at=1)], seed=5
        )
        with plan.activate():
            with RunJournal.create(
                path, kind="sweep", fingerprint="fp"
            ) as journal:
                journal.record_step({"k": 0})
                journal.record_step({"k": 1})  # persisted bytes corrupted
        with pytest.raises(JournalCorruptionError):
            RunJournal.open(path)

    def test_missing_meta_key_detected(self, path):
        self._recorded(path)
        connection = sqlite3.connect(path)
        connection.execute("DELETE FROM journal_meta WHERE key = 'kind'")
        connection.commit()
        connection.close()
        with pytest.raises(JournalCorruptionError, match="kind"):
            RunJournal.open(path)

    def test_wrong_version_rejected(self, path):
        self._recorded(path)
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE journal_meta SET value = '999' "
            "WHERE key = 'journal_version'"
        )
        connection.commit()
        connection.close()
        with pytest.raises(JournalError, match="version"):
            RunJournal.open(path)


class TestIdentityPinning:
    def test_resume_or_create_resumes_matching_run(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp") as journal:
            journal.record_step({"k": 0})
        with RunJournal.resume_or_create(
            path, kind="sweep", fingerprint="fp"
        ) as journal:
            assert journal.n_steps == 1

    def test_fingerprint_mismatch_refused(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp"):
            pass
        with pytest.raises(JournalMismatchError, match="different inputs"):
            RunJournal.resume_or_create(path, kind="sweep", fingerprint="other")

    def test_kind_mismatch_refused(self, path):
        with RunJournal.create(path, kind="sweep", fingerprint="fp"):
            pass
        with pytest.raises(JournalMismatchError, match="sweep"):
            RunJournal.resume_or_create(path, kind="dynamics", fingerprint="fp")


class TestSummary:
    def test_summary_reports_verified_progress(self, path):
        with RunJournal.create(
            path, kind="dynamics", fingerprint="fp", params={"rounds": 4}
        ) as journal:
            journal.record_step({"k": 0})
        summary = journal_summary(path)
        assert summary["kind"] == "dynamics"
        assert summary["steps"] == 1
        assert summary["params"] == {"rounds": 4}
        assert summary["verified"] is True

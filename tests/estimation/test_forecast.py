"""Unit and recovery tests for default forecasting (Section 10's loop)."""

from __future__ import annotations

import pytest

from repro.estimation import (
    ThresholdEstimator,
    forecast_defaults,
    observe_widening_history,
)
from repro.core import ViolationEngine
from repro.simulation import WideningStep, widening_path


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import healthcare_scenario

    return healthcare_scenario(120, seed=17)


@pytest.fixture(scope="module")
def history(scenario):
    return [
        policy
        for _, policy in widening_path(
            scenario.policy,
            WideningStep.uniform(1),
            scenario.taxonomy,
            3,
        )
    ]


@pytest.fixture(scope="module")
def estimator(scenario, history):
    return ThresholdEstimator(
        observe_widening_history(scenario.population, history)
    )


class TestForecastRecovery:
    def test_in_sample_policies_forecast_exactly(
        self, scenario, history, estimator
    ):
        """For the policies the house already deployed, the forecast's
        certain-default set must equal the realised defaults."""
        for policy in history[1:]:
            truth = ViolationEngine(policy, scenario.population).report()
            forecast = forecast_defaults(
                estimator, scenario.population, policy
            )
            assert set(forecast.certain_defaults) == set(truth.defaulted_ids())

    def test_interpolated_policy_bounded_by_neighbors(
        self, scenario, history, estimator
    ):
        """A widening level between two observed ones forecasts a default
        count between the two realised counts."""
        from repro.simulation import widen
        from repro.core import Dimension

        half_step = widen(
            history[1],
            WideningStep.along(Dimension.RETENTION, 1),
            scenario.taxonomy,
            name="step-1.5",
        )
        step1 = ViolationEngine(history[1], scenario.population).report()
        step2 = ViolationEngine(history[2], scenario.population).report()
        forecast = forecast_defaults(estimator, scenario.population, half_step)
        assert (
            step1.n_defaulted
            <= forecast.expected_defaults
            <= step2.n_defaulted
        )

    def test_baseline_forecasts_zero(self, scenario, history, estimator):
        forecast = forecast_defaults(
            estimator, scenario.population, history[0]
        )
        assert forecast.expected_defaults == 0.0
        assert forecast.certain_defaults == ()

    def test_expected_fraction(self, scenario, history, estimator):
        forecast = forecast_defaults(
            estimator, scenario.population, history[2]
        )
        assert forecast.expected_default_fraction == pytest.approx(
            forecast.expected_defaults / len(scenario.population)
        )

    def test_break_even_uses_expected_population(
        self, scenario, history, estimator
    ):
        from repro.core import break_even_extra_utility

        forecast = forecast_defaults(
            estimator,
            scenario.population,
            history[2],
            per_provider_utility=10.0,
        )
        n = forecast.n_providers
        expected_future = max(1, round(n - forecast.expected_defaults))
        assert forecast.break_even_extra_utility == pytest.approx(
            break_even_extra_utility(10.0, n, expected_future)
        )

    def test_unknown_providers_ignored(self, scenario, history, estimator):
        """Providers without behavioural records contribute nothing."""
        subset = scenario.population.subset(
            list(scenario.population.ids())[:10]
        )
        sub_estimator = ThresholdEstimator(
            observe_widening_history(subset, history)
        )
        forecast = forecast_defaults(
            sub_estimator, scenario.population, history[2]
        )
        known = set(subset.ids())
        assert set(forecast.certain_defaults) <= known
        assert set(forecast.possible_defaults) <= known

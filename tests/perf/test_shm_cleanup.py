"""Shared-memory hygiene: no run may leave ``/dev/shm/pvl_*`` behind.

The segment name embeds the owner pid (``pvl_<pid>_<hex>``), which is
what lets :func:`~repro.perf.shm.stale_segments` distinguish a crashed
run's leak (owner gone) from a live run's working set (owner alive) —
and what makes ``repro doctor --clean-shm`` safe to run next to live
sweeps.  These tests pin the registry/atexit/SIGTERM hooks on the owner
side and the doctor on the janitor side.
"""

from __future__ import annotations

import glob
import json
import os
import random
import signal
import subprocess
import sys

import numpy as np

from repro.cli import main
from repro.perf import SharedArrayPack, clean_stale_segments, stale_segments
from repro.perf.shm import _SEGMENT_NAME

from tests.properties.test_batch_parity import _random_population


def _fake_segment(pid: int) -> str:
    name = f"pvl_{pid}_deadbeef"
    with open(f"/dev/shm/{name}", "wb") as handle:
        handle.write(b"\0" * 16)
    return name


def test_segment_names_carry_the_owner_pid():
    pack = SharedArrayPack({"x": np.arange(4, dtype=np.float64)})
    try:
        match = _SEGMENT_NAME.match(pack.name)
        assert match is not None
        assert int(match.group(1)) == os.getpid()
    finally:
        pack.close()
    assert glob.glob("/dev/shm/pvl_*") == []


def test_live_owner_segments_are_never_stale():
    pack = SharedArrayPack({"x": np.arange(4, dtype=np.float64)})
    try:
        assert pack.name not in [name for name, _ in stale_segments()]
        # And the janitor must not touch them either.
        clean_stale_segments()
        assert glob.glob(f"/dev/shm/{pack.name}")
    finally:
        pack.close()


def test_dead_owner_segments_are_stale_and_cleanable():
    # A pid from a process that exited: spawn one and wait for it.
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(probe.stdout)
    name = _fake_segment(dead_pid)
    try:
        assert (name, dead_pid) in stale_segments()
        removed = clean_stale_segments()
        assert (name, dead_pid) in removed
        assert not os.path.exists(f"/dev/shm/{name}")
    finally:
        if os.path.exists(f"/dev/shm/{name}"):
            os.unlink(f"/dev/shm/{name}")


def test_foreign_shm_names_are_ignored():
    path = "/dev/shm/psm_not_ours_0000"
    with open(path, "wb") as handle:
        handle.write(b"\0" * 16)
    try:
        assert all(
            not name.startswith("psm_") for name, _ in stale_segments()
        )
        clean_stale_segments()
        assert os.path.exists(path)
    finally:
        os.unlink(path)


def test_sigterm_unlinks_the_owners_segments():
    """A SIGTERMed owner process cleans up via the chained handler."""
    script = (
        "import os, signal, sys, time\n"
        "import numpy as np\n"
        "from repro.perf import SharedArrayPack\n"
        "pack = SharedArrayPack({'x': np.arange(8, dtype=np.float64)})\n"
        "print(pack.name, flush=True)\n"
        "signal.pause()\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
    )
    try:
        name = proc.stdout.readline().strip()
        assert glob.glob(f"/dev/shm/{name}")
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        assert glob.glob(f"/dev/shm/{name}") == []
        # The handler re-raises after cleanup: the exit reports SIGTERM.
        assert proc.returncode == -signal.SIGTERM
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        for leaked in glob.glob("/dev/shm/pvl_*"):
            os.unlink(leaked)


def test_sigkilled_executor_leak_is_found_and_cleaned_by_doctor():
    """The one leak nothing can prevent (SIGKILL) is the doctor's job."""
    script = (
        "import os, random, sys\n"
        "sys.path.insert(0, '.')\n"
        "from repro.perf import SupervisedExecutor\n"
        "from tests.properties.test_batch_parity import _random_population\n"
        "executor = SupervisedExecutor(\n"
        "    _random_population(random.Random(5)), workers=2\n"
        ")\n"
        "print(executor.segment_name, flush=True)\n"
        "os.kill(os.getpid(), 9)\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
    root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    proc = subprocess.Popen(
        [sys.executable, "-c", script],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
        cwd=root,
    )
    try:
        name = proc.stdout.readline().strip()
        proc.wait(timeout=60)
        assert proc.returncode == -signal.SIGKILL
        # SIGKILL gave the owner no chance to unlink; the segment leaked.
        assert glob.glob(f"/dev/shm/{name}")
        stale = dict(stale_segments())
        assert name in stale
        removed = clean_stale_segments()
        assert name in dict(removed)
        assert glob.glob(f"/dev/shm/{name}") == []
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        for leaked in glob.glob("/dev/shm/pvl_*"):
            os.unlink(leaked)


class TestDoctorCommand:
    def test_reports_clean_when_nothing_is_stale(self, capsys):
        assert main(["doctor"]) == 0
        assert "no stale segments" in capsys.readouterr().out

    def test_lists_stale_segments_without_touching_them(self, capsys):
        name = _fake_segment(999_999_999)
        try:
            assert main(["doctor"]) == 0
            out = capsys.readouterr().out
            assert name in out
            assert "--clean-shm" in out
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            if os.path.exists(f"/dev/shm/{name}"):
                os.unlink(f"/dev/shm/{name}")

    def test_clean_shm_removes_and_reports(self, capsys):
        name = _fake_segment(999_999_999)
        assert main(["doctor", "--clean-shm"]) == 0
        assert f"removed /dev/shm/{name}" in capsys.readouterr().out
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_json_output(self, capsys):
        name = _fake_segment(999_999_999)
        try:
            assert main(["doctor", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert {"segment": name, "pid": 999_999_999} in payload["stale"]
            assert main(["doctor", "--clean-shm", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert {"segment": name, "pid": 999_999_999} in payload["removed"]
        finally:
            if os.path.exists(f"/dev/shm/{name}"):
                os.unlink(f"/dev/shm/{name}")

    def test_doctor_spares_live_runs(self, capsys):
        rng = random.Random(6)
        pack = SharedArrayPack(
            {"x": np.arange(4, dtype=np.float64)}
        )
        del rng
        try:
            assert main(["doctor", "--clean-shm"]) == 0
            assert glob.glob(f"/dev/shm/{pack.name}")
        finally:
            pack.close()
        assert glob.glob("/dev/shm/pvl_*") == []

"""Analysis and reporting over violation-model evaluations.

* :mod:`repro.analysis.reports` — per-provider / per-attribute /
  per-dimension violation breakdowns from an engine report;
* :mod:`repro.analysis.aggregates` — population-level summary statistics
  (by segment, severity distributions);
* :mod:`repro.analysis.cdf` — the empirical cumulative distribution of
  defaults as the house widens (Section 10's proposed estimator);
* :mod:`repro.analysis.certification` — alpha-PPDB certification
  documents suitable for publishing;
* :mod:`repro.analysis.tables` — fixed-width text tables used by the
  benchmark harness to print paper-style rows.
"""

from .reports import ViolationMatrix, violation_matrix
from .aggregates import PopulationSummary, SegmentStats, summarize
from .cdf import DefaultCDF, default_cdf_from_sweep
from .certification import (
    CertificationDocument,
    batch_certification_document,
    certification_document,
)
from .frontier import (
    FrontierPoint,
    ParetoFrontier,
    pareto_frontier,
    sweep_frontier,
)
from .lint_report import LintReport, lint_report_table
from .tables import format_table

__all__ = [
    "LintReport",
    "lint_report_table",
    "FrontierPoint",
    "ParetoFrontier",
    "pareto_frontier",
    "sweep_frontier",
    "ViolationMatrix",
    "violation_matrix",
    "PopulationSummary",
    "SegmentStats",
    "summarize",
    "DefaultCDF",
    "default_cdf_from_sweep",
    "CertificationDocument",
    "batch_certification_document",
    "certification_document",
    "format_table",
]

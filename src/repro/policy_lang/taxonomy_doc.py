"""Taxonomy documents: serialise the deployment vocabulary itself.

The policy/preference documents reference purposes and level names; for a
deployment to be fully file-driven (the CLI's mode of operation) the
taxonomy too needs a document form::

    {
      "purposes": ["treatment", "billing", "research"],
      "visibility": ["none", "owner", "clinic", "public"],
      "granularity": ["none", "existential", "partial", "specific"],
      "retention": ["none", "visit", "year", "indefinite"],
      # OR, for an open-ended retention scale:
      "retention": "unbounded"
    }

Missing ladders default to the canonical ones, mirroring
:class:`~repro.taxonomy.builder.TaxonomyBuilder`.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from ..core.dimensions import Dimension, OrderedDomain, UnboundedRetention
from ..exceptions import PolicyDocumentError
from ..taxonomy.builder import Taxonomy, TaxonomyBuilder

_LADDER_KEYS = ("visibility", "granularity", "retention")


def parse_taxonomy(raw: Mapping) -> Taxonomy:
    """Build a :class:`Taxonomy` from a taxonomy document dict."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"taxonomy document must be a mapping, got {type(raw).__name__}"
        )
    unknown = set(raw) - {"purposes", *_LADDER_KEYS}
    if unknown:
        raise PolicyDocumentError(
            f"taxonomy document has unknown keys {sorted(unknown)}"
        )
    if "purposes" not in raw:
        raise PolicyDocumentError("taxonomy document missing 'purposes'")
    builder = TaxonomyBuilder().with_purposes(list(raw["purposes"]))
    if "visibility" in raw:
        builder.with_visibility(list(raw["visibility"]))
    if "granularity" in raw:
        builder.with_granularity(list(raw["granularity"]))
    if "retention" in raw:
        retention = raw["retention"]
        if retention == "unbounded":
            builder.with_retention_unbounded()
        elif isinstance(retention, (list, tuple)):
            builder.with_retention(list(retention))
        else:
            raise PolicyDocumentError(
                "retention must be a level list or the string 'unbounded', "
                f"got {retention!r}"
            )
    return builder.build()


def taxonomy_to_dict(taxonomy: Taxonomy) -> dict:
    """Render a :class:`Taxonomy` as a taxonomy document dict.

    Round-trips through :func:`parse_taxonomy` for every taxonomy built
    from named ladders or unbounded retention.
    """
    document: dict = {"purposes": sorted(taxonomy.purposes.purposes)}
    for key, dimension in (
        ("visibility", Dimension.VISIBILITY),
        ("granularity", Dimension.GRANULARITY),
        ("retention", Dimension.RETENTION),
    ):
        domain = taxonomy.domain(dimension)
        if isinstance(domain, UnboundedRetention):
            document[key] = "unbounded"
        elif isinstance(domain, OrderedDomain):
            document[key] = list(domain.levels)
    return document


def taxonomy_from_json(text: str) -> Taxonomy:
    """Parse a JSON taxonomy document string."""
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError as error:
        raise PolicyDocumentError(f"invalid taxonomy JSON: {error}") from error
    return parse_taxonomy(decoded)


def taxonomy_to_json(taxonomy: Taxonomy, *, indent: int = 2) -> str:
    """Render a :class:`Taxonomy` as JSON text."""
    return json.dumps(taxonomy_to_dict(taxonomy), indent=indent)

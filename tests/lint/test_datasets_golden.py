"""Golden lint snapshots for every bundled dataset.

Each dataset is serialised to documents (the same path ``repro lint``
consumes), linted with a fixed config, and the rendered JSON report is
compared byte-for-byte against a checked-in golden file.  This pins the
whole pipeline — serialisation, rule catalogue, diagnostic ordering,
payloads, and the key-sorted renderer — so an unintended change to any
of them shows up as a readable golden diff.

Regenerate after an *intended* change with::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/lint/test_datasets_golden.py

and review the diff like any other code change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import (
    crm_scenario,
    government_scenario,
    healthcare_scenario,
    paper_example_scenario,
    social_network_scenario,
)
from repro.datasets.export import scenario_documents
from repro.lint import (
    LintCache,
    LintConfig,
    incremental_lint,
    lint_documents,
    render_json,
)
from repro.policy_lang import parse_taxonomy

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = os.environ.get("REPRO_REGEN_GOLDEN") == "1"

#: Small fixed populations: the goldens pin diagnostics, not throughput.
DATASETS = {
    "crm": lambda: crm_scenario(12),
    "government": lambda: government_scenario(12),
    "healthcare": lambda: healthcare_scenario(12),
    "paper_example": paper_example_scenario,
    "social_network": lambda: social_network_scenario(12),
}

#: One fixed config for every golden: alpha exercises the static
#: certification rules (PVL110 / PVL213) in both directions.
CONFIG = LintConfig(alpha=0.5)


def dataset_report(name: str):
    documents = scenario_documents(DATASETS[name]())
    taxonomy = parse_taxonomy(documents["taxonomy"])
    return taxonomy, documents


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_dataset_matches_golden(name):
    taxonomy, documents = dataset_report(name)
    report = lint_documents(
        taxonomy,
        policy=documents["policy"],
        population=documents["population"],
        config=CONFIG,
    )
    rendered = render_json(report) + "\n"
    golden_path = GOLDEN_DIR / f"{name}.json"
    if REGEN:
        golden_path.write_text(rendered)
    assert golden_path.exists(), (
        f"missing golden {golden_path}; run with REPRO_REGEN_GOLDEN=1"
    )
    assert rendered == golden_path.read_text(), (
        f"lint output for {name!r} drifted from its golden snapshot; "
        f"if intended, regenerate with REPRO_REGEN_GOLDEN=1 and review "
        f"the diff"
    )


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_incremental_matches_golden(name, tmp_path):
    """The incremental runner reproduces the goldens byte-for-byte.

    Run twice against one cache so the second pass is served entirely
    from it — cache hits must render identically to fresh passes.
    """
    taxonomy, documents = dataset_report(name)
    golden = (GOLDEN_DIR / f"{name}.json").read_text()
    cache = LintCache(tmp_path / "cache.json")
    for _ in range(2):
        report = incremental_lint(
            taxonomy,
            policy=documents["policy"],
            population=documents["population"],
            config=CONFIG,
            cache=cache,
        )
        assert render_json(report) + "\n" == golden
    assert cache.hits > 0

"""Violation and default probabilities (Definitions 2 and 5).

The paper defines both probabilities through the relative-frequency view:
a trial draws a provider uniformly at random and checks the event; the
fraction of positive trials converges to ``sum_i x_i / N``.  We expose

* the **exact** value ``sum_i x_i / N`` (what the limit converges to), and
* a **seeded trial estimator** that performs the literal random experiment,
  so tests can demonstrate the convergence the paper appeals to.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from .._validation import check_int
from ..exceptions import ValidationError
from .default import DefaultModel
from .policy import HousePolicy
from .population import Population
from .sensitivity import SensitivityModel
from .severity import provider_violation
from .violation import violation_indicator


def violation_probability(
    population: Population,
    policy: HousePolicy,
    *,
    implicit_zero: bool = True,
) -> float:
    """Definition 2: ``P(W) = sum_i w_i / N`` (exact relative frequency).

    Raises
    ------
    ValidationError
        If the population is empty (the probability is undefined).
    """
    if len(population) == 0:
        raise ValidationError("P(W) is undefined for an empty population")
    total = sum(
        violation_indicator(
            provider.preferences, policy, implicit_zero=implicit_zero
        )
        for provider in population
    )
    return total / len(population)


def default_probability(
    population: Population,
    policy: HousePolicy,
    sensitivities: SensitivityModel | None = None,
    default_model: DefaultModel | None = None,
    *,
    implicit_zero: bool = True,
) -> float:
    """Definition 5: ``P(Default) = sum_i default_i / N`` (exact).

    *sensitivities* and *default_model* default to the population's own
    (``population.sensitivity_model()`` / ``population.default_model()``).
    """
    if len(population) == 0:
        raise ValidationError("P(Default) is undefined for an empty population")
    if sensitivities is None:
        sensitivities = population.sensitivity_model()
    if default_model is None:
        default_model = population.default_model()
    total = 0
    for provider in population:
        violation = provider_violation(
            provider.preferences,
            policy,
            sensitivities,
            implicit_zero=implicit_zero,
        )
        total += default_model.defaults(provider.provider_id, violation)
    return total / len(population)


@dataclass(frozen=True, slots=True)
class TrialEstimate:
    """Result of the literal random-trial experiment.

    ``estimate`` is ``tau(A) / tau``; ``exact`` is the population value the
    paper says the estimate tends towards for a large series of trials.
    """

    estimate: float
    exact: float
    positive_trials: int
    trials: int
    seed: int

    @property
    def absolute_error(self) -> float:
        """``|estimate - exact|``."""
        return abs(self.estimate - self.exact)


def estimate_probability_by_trials(
    indicators: Mapping[Hashable, int] | Sequence[int],
    n_trials: int,
    *,
    seed: int = 0,
) -> TrialEstimate:
    """Run the paper's random-selection experiment on known indicators.

    Parameters
    ----------
    indicators:
        Per-provider 0/1 outcomes (``w_i`` or ``default_i``), either as a
        mapping or a sequence.
    n_trials:
        ``tau``, the number of uniform random draws (with replacement —
        each trial is "the random selection of a data provider").
    seed:
        Seed for the NumPy generator, for reproducibility.

    Returns
    -------
    TrialEstimate
        The estimate together with the exact value it converges to.
    """
    if isinstance(indicators, Mapping):
        values = [indicators[key] for key in indicators]
    else:
        values = list(indicators)
    if not values:
        raise ValidationError("cannot run trials over an empty population")
    for value in values:
        if value not in (0, 1):
            raise ValidationError(
                f"indicators must be 0 or 1, got {value!r}"
            )
    n_trials = check_int(n_trials, "n_trials", minimum=1)
    seed = check_int(seed, "seed", minimum=0)
    outcomes = np.asarray(values, dtype=np.int64)
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, len(outcomes), size=n_trials)
    positives = int(outcomes[draws].sum())
    return TrialEstimate(
        estimate=positives / n_trials,
        exact=float(outcomes.mean()),
        positive_trials=positives,
        trials=n_trials,
        seed=seed,
    )

"""The rule registry and the context handed to every rule.

Rules are plain functions registered under a stable code via the
:func:`rule` decorator.  Each rule receives a :class:`LintContext` — the
parsed documents plus whatever could be lowered onto the core model — and
an ``emit`` callback pre-bound to the rule's code and severity.  Rules
whose inputs are absent (no population document, no candidate policy, a
document that failed to lower) simply emit nothing: the cause will have
been reported by a document-layer rule already.
"""

from __future__ import annotations

import enum
from collections.abc import Callable, Iterable, Iterator, Mapping
from dataclasses import dataclass, field

from .._validation import check_probability, check_real
from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import LintConfigurationError
from ..policy_lang.ast import PolicyDocument, PreferenceDocument, TupleSpec
from ..taxonomy.builder import Taxonomy
from .diagnostics import Diagnostic, Severity, SourceLocation, sort_key


class Layer(enum.Enum):
    """Which analysis layer a rule belongs to.

    ``DOCUMENT`` rules look at one document against the taxonomy;
    ``MODEL`` rules reason across documents about the lowered model;
    ``ECONOMICS`` rules check Section 9's widening arithmetic;
    ``POPULATION`` rules reason about the policy/population pair through
    the interval abstraction (:mod:`repro.lint.intervals`).
    """

    DOCUMENT = "document"
    MODEL = "model"
    ECONOMICS = "economics"
    POPULATION = "population"


#: The admissible rule scopes.  ``global`` rules need the whole document
#: bundle; ``provider`` rules derive each provider's findings from that
#: provider's document alone (plus the taxonomy/policy/candidate
#: envelope); ``mixed`` rules emit both kinds of findings.  The scope is
#: what :mod:`repro.lint.incremental` keys its per-provider caching and
#: parallel fan-out on.
SCOPES = ("global", "provider", "mixed")


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Tunable analysis parameters.

    ``alpha`` enables the static alpha-PPDB certification rule;
    ``utility`` is Section 9's per-provider utility ``U``;
    ``max_extra_utility`` is the largest extra per-provider utility ``T``
    the house believes a widening could realistically unlock — when set,
    break-even thresholds above it are flagged as unattainable.
    """

    alpha: float | None = None
    utility: float = 1.0
    max_extra_utility: float | None = None

    def __post_init__(self) -> None:
        if self.alpha is not None:
            check_probability(self.alpha, "alpha")
        check_real(self.utility, "utility", minimum=0.0)
        if self.max_extra_utility is not None:
            check_real(self.max_extra_utility, "max_extra_utility", minimum=0.0)


@dataclass(frozen=True)
class LintContext:
    """Everything a rule may look at.

    The documents are present as parsed ASTs whenever they were supplied;
    the lowered model objects (``policy``, ``population``, ``candidate``)
    are ``None`` when the corresponding document was absent *or* failed
    semantic lowering — model rules must tolerate both.
    """

    taxonomy: Taxonomy
    policy_doc: PolicyDocument | None = None
    preference_docs: tuple[PreferenceDocument, ...] = ()
    candidate_doc: PolicyDocument | None = None
    policy: HousePolicy | None = None
    population: Population | None = None
    candidate: HousePolicy | None = None
    attribute_sensitivities: Mapping[str, float] = field(default_factory=dict)
    config: LintConfig = field(default_factory=LintConfig)

    def iter_policy_specs(self) -> Iterator[tuple[SourceLocation, TupleSpec]]:
        """Every policy/candidate rule spec with its location."""
        for kind, document in (
            ("policy", self.policy_doc),
            ("candidate", self.candidate_doc),
        ):
            if document is None:
                continue
            for index, spec in enumerate(document.rules):
                yield (
                    SourceLocation(kind, name=document.name, index=index),
                    spec,
                )

    def iter_preference_specs(
        self,
    ) -> Iterator[tuple[SourceLocation, TupleSpec, PreferenceDocument]]:
        """Every preference spec with its location and owning document."""
        for document in self.preference_docs:
            for index, spec in enumerate(document.preferences):
                yield (
                    SourceLocation(
                        "population", name=str(document.provider), index=index
                    ),
                    spec,
                    document,
                )


#: Signature of a rule's check function.
CheckFunction = Callable[[LintContext, Callable[..., None]], None]


@dataclass(frozen=True, slots=True)
class RuleInfo:
    """One registered rule: identity, metadata, and the check function."""

    code: str
    title: str
    severity: Severity
    layer: Layer
    description: str
    check: CheckFunction
    scope: str = "global"


_REGISTRY: dict[str, RuleInfo] = {}


def rule(
    code: str,
    *,
    title: str,
    severity: Severity,
    layer: Layer,
    description: str,
    scope: str = "global",
) -> Callable[[CheckFunction], CheckFunction]:
    """Register a check function under a stable diagnostic code."""
    if scope not in SCOPES:
        raise LintConfigurationError(
            f"unknown rule scope {scope!r}; expected one of {', '.join(SCOPES)}"
        )

    def decorate(check: CheckFunction) -> CheckFunction:
        if code in _REGISTRY:
            raise LintConfigurationError(f"duplicate rule code {code!r}")
        _REGISTRY[code] = RuleInfo(
            code=code,
            title=title,
            severity=severity,
            layer=layer,
            description=description,
            check=check,
            scope=scope,
        )
        return check

    return decorate


def unregister_rule(code: str) -> bool:
    """Remove a rule from the registry (plugin teardown / tests).

    Returns whether the code was registered.  Built-in rules can be
    removed too — they come back on the next fresh interpreter, not
    within the process — so this is strictly a plugin-lifecycle helper.
    """
    return _REGISTRY.pop(code, None) is not None


def all_rules() -> tuple[RuleInfo, ...]:
    """Every registered rule, sorted by code."""
    _ensure_rules_loaded()
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def get_rule(code: str) -> RuleInfo:
    """The rule registered under *code*."""
    _ensure_rules_loaded()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise LintConfigurationError(f"unknown rule code {code!r}") from None


def resolve_codes(codes: Iterable[str]) -> frozenset[str]:
    """Validate a user-supplied code selection against the registry."""
    resolved = frozenset(code.strip().upper() for code in codes if code.strip())
    for code in resolved:
        get_rule(code)
    return resolved


def run_rules(
    context: LintContext,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    scopes: Iterable[str] | None = None,
) -> tuple[Diagnostic, ...]:
    """Run every (selected) rule over *context* and return sorted diagnostics.

    *scopes*, when given, restricts the run to rules whose ``scope`` is in
    the set — the incremental runner uses this to split the catalogue
    into a global pass and per-provider passes.
    """
    selected = None if select is None else resolve_codes(select)
    ignored = frozenset() if ignore is None else resolve_codes(ignore)
    scope_filter = None if scopes is None else frozenset(scopes)
    diagnostics: list[Diagnostic] = []
    for info in all_rules():
        if scope_filter is not None and info.scope not in scope_filter:
            continue
        if selected is not None and info.code not in selected:
            continue
        if info.code in ignored:
            continue

        def emit(
            location: SourceLocation,
            message: str,
            *,
            _info: RuleInfo = info,
            **payload: object,
        ) -> None:
            diagnostics.append(
                Diagnostic(
                    code=_info.code,
                    severity=_info.severity,
                    message=message,
                    location=location,
                    payload=payload,
                )
            )

        info.check(context, emit)
    return tuple(sorted(diagnostics, key=sort_key))


def _ensure_rules_loaded() -> None:
    """Import the rule modules so their decorators populate the registry."""
    from . import (  # noqa: F401
        rules_document,
        rules_economics,
        rules_model,
        rules_population,
    )
    from .plugins import load_entry_point_rules

    load_entry_point_rules()


def rules_fingerprint() -> str:
    """A stable digest of the active rule catalogue.

    Changes whenever a rule is added, removed, or re-severitied —
    including via plugins — so incremental caches keyed on it can never
    serve diagnostics produced by a different catalogue.
    """
    import hashlib

    _ensure_rules_loaded()
    payload = "\n".join(
        f"{code}:{info.severity.value}:{info.layer.value}:{info.scope}"
        for code, info in sorted(_REGISTRY.items())
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()

"""Unit tests for the ViolationEngine and its reports."""

from __future__ import annotations

import pytest

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.exceptions import UnknownProviderError, ValidationError


class TestEngineBasics:
    def test_report_matches_paper(self, paper_engine):
        report = paper_engine.report()
        assert report.n_providers == 3
        assert report.n_violated == 2
        assert report.n_defaulted == 1
        assert report.violation_probability == pytest.approx(2 / 3)
        assert report.default_probability == pytest.approx(1 / 3)
        assert report.total_violations == 140.0

    def test_outcomes_in_population_order(self, paper_engine):
        ids = [o.provider_id for o in paper_engine.outcomes()]
        assert ids == ["Alice", "Ted", "Bob"]

    def test_outcome_lookup(self, paper_engine):
        ted = paper_engine.outcome("Ted")
        assert ted.violated
        assert ted.defaulted
        assert ted.violation == 60.0
        assert ted.threshold == 50.0

    def test_outcome_unknown_raises(self, paper_engine):
        with pytest.raises(UnknownProviderError):
            paper_engine.outcome("Mallory")

    def test_violated_and_defaulted_ids(self, paper_engine):
        report = paper_engine.report()
        assert report.violated_ids() == ("Ted", "Bob")
        assert report.defaulted_ids() == ("Ted",)

    def test_outcome_breakdown_total_matches(self, paper_engine):
        bob = paper_engine.outcome("Bob")
        assert bob.breakdown().total == bob.violation == 80.0

    def test_invalid_constructor_arguments(self, paper_policy, paper_population):
        with pytest.raises(ValidationError):
            ViolationEngine("policy", paper_population)  # type: ignore[arg-type]
        with pytest.raises(ValidationError):
            ViolationEngine(paper_policy, "population")  # type: ignore[arg-type]

    def test_str_report(self, paper_engine):
        text = str(paper_engine.report())
        assert "P(W)=0.6667" in text


class TestEngineDerivation:
    def test_with_policy_reevaluates(self, paper_engine, paper_population):
        harmless = HousePolicy(
            [("Weight", PrivacyTuple("pr", 0, 0, 0)), ("Age", PrivacyTuple("pr", 0, 0, 0))]
        )
        sibling = paper_engine.with_policy(harmless)
        assert sibling.report().n_violated == 0
        # Original engine unchanged.
        assert paper_engine.report().n_violated == 2

    def test_with_population_reevaluates(self, paper_engine, paper_population):
        smaller = paper_population.without(["Ted"])
        sibling = paper_engine.with_population(smaller)
        report = sibling.report()
        assert report.n_providers == 2
        assert report.n_defaulted == 0

    def test_certify_delegates(self, paper_engine):
        assert not paper_engine.certify(0.5).satisfied
        assert paper_engine.certify(0.7).satisfied

    def test_implicit_zero_flag_respected(self):
        policy = HousePolicy([("w", PrivacyTuple("marketing", 1, 1, 1))])
        prefs = ProviderPreferences("i", [("w", PrivacyTuple("billing", 2, 2, 2))])
        population = Population([Provider(preferences=prefs)])
        strict = ViolationEngine(policy, population)
        lenient = ViolationEngine(policy, population, implicit_zero=False)
        assert strict.report().n_violated == 1
        assert lenient.report().n_violated == 0

    def test_empty_population_report(self, paper_policy):
        engine = ViolationEngine(paper_policy, Population([]))
        report = engine.report()
        assert report.n_providers == 0
        assert report.violation_probability == 0.0
        assert report.default_probability == 0.0

    def test_segment_labels_flow_to_outcomes(self):
        prefs = ProviderPreferences("i", [("w", PrivacyTuple("p", 1, 1, 1))])
        population = Population(
            [Provider(preferences=prefs, segment="pragmatist")]
        )
        engine = ViolationEngine(
            HousePolicy([("w", PrivacyTuple("p", 0, 0, 0))]), population
        )
        assert engine.outcome("i").segment == "pragmatist"

    def test_caching_returns_same_objects(self, paper_engine):
        first = paper_engine.outcomes()
        second = paper_engine.outcomes()
        assert first == second

    def test_explicit_sensitivity_override(self, paper_policy, paper_population):
        from repro.core import SensitivityModel

        neutral = ViolationEngine(
            paper_policy,
            paper_population,
            sensitivities=SensitivityModel.neutral(),
        )
        # Without the Table 1 weights, Ted's severity is the raw exceedance.
        assert neutral.outcome("Ted").violation == 1.0
        assert neutral.outcome("Bob").violation == 2.0
        # The binary indicator is weight-independent.
        assert neutral.report().n_violated == 2

    def test_explicit_default_model_override(self, paper_policy, paper_population):
        from repro.core import DefaultModel

        harsh = ViolationEngine(
            paper_policy,
            paper_population,
            default_model=DefaultModel({}, default_threshold=10.0),
        )
        # Everyone with severity > 10 defaults under the harsh model.
        assert harsh.report().defaulted_ids() == ("Ted", "Bob")

    def test_with_policy_preserves_overrides(self, paper_policy, paper_population):
        from repro.core import DefaultModel

        harsh = ViolationEngine(
            paper_policy,
            paper_population,
            default_model=DefaultModel({}, default_threshold=10.0),
        )
        sibling = harsh.with_policy(paper_policy)
        assert sibling.default_model is harsh.default_model
        assert sibling.report().n_defaulted == 2

"""Population synthesis and policy-expansion scenarios.

The paper defers the empirical distribution of provider sensitivities and
default thresholds to "future work in the social sciences" but cites the
Westin privacy-segmentation studies (ref [11]) as the natural source.
This package synthesises exactly those inputs:

* :mod:`repro.simulation.population` — Westin-segment populations
  (fundamentalists / pragmatists / unconcerned) with per-segment
  preference tightness, sensitivities, and default thresholds;
* :mod:`repro.simulation.widening` — Section 9's policy-expansion
  operators (uniform or per-dimension rank steps, clamped to a taxonomy);
* :mod:`repro.simulation.scenario` — widening sweeps collecting
  ``P(W)``, ``P(Default)``, and the utility trade-off per step;
* :mod:`repro.simulation.dynamics` — multi-round dynamics where defaulted
  providers permanently leave;
* :mod:`repro.simulation.whatif` — one-shot what-if assessment of a
  candidate policy.

Everything is deterministic given a seed.
"""

from .population import (
    PopulationSpec,
    WestinSegment,
    standard_segments,
    generate_population,
)
from .sampling import (
    sample_dimension_sensitivity,
    sample_preference_tuple,
    sample_threshold,
)
from .widening import (
    WideningStep,
    widen,
    widening_path,
    widening_policies,
)
from .scenario import ExpansionSweep, SweepRow, run_expansion_sweep
from .dynamics import RoundOutcome, run_dynamics
from .whatif import WhatIfAnalyzer, WhatIfResult

__all__ = [
    "PopulationSpec",
    "WestinSegment",
    "standard_segments",
    "generate_population",
    "sample_dimension_sensitivity",
    "sample_preference_tuple",
    "sample_threshold",
    "WideningStep",
    "widen",
    "widening_path",
    "widening_policies",
    "ExpansionSweep",
    "SweepRow",
    "run_expansion_sweep",
    "RoundOutcome",
    "run_dynamics",
    "WhatIfAnalyzer",
    "WhatIfResult",
]

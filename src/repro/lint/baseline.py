"""Baselines: adopt the linter on a brownfield deployment.

A baseline file records the fingerprints of currently-known diagnostics.
``repro lint --baseline known.json`` then suppresses exactly those
findings, so the severity gate (and CI) fails only on *new* findings —
the standard ratchet for introducing a linter to documents that already
carry violations nobody is fixing today.

Fingerprints hash the diagnostic's full dict form (code, severity,
message, location, payload), so a finding that moves, changes message,
or changes payload counts as new.  Baselines are plain JSON::

    {"version": 1, "fingerprints": ["<sha256>", ...]}

:func:`load_baseline` also accepts a ``repro lint --format json`` report
directly, so ``repro lint --format json > known.json`` and
``repro lint --write-baseline known.json`` produce interchangeable
inputs.
"""

from __future__ import annotations

import json
import os
from collections.abc import Iterable, Mapping

from ..exceptions import LintConfigurationError
from ..storage import atomic_write_text
from .diagnostics import Diagnostic
from .incremental import fingerprint
from .report import LintReport

#: Baseline file format version; bump on incompatible layout changes.
BASELINE_VERSION = 1


def diagnostic_fingerprint(diagnostic: Diagnostic) -> str:
    """A stable identity for one finding (SHA-256 of its dict form)."""
    return fingerprint(diagnostic.as_dict())


def load_baseline(path: str | os.PathLike) -> frozenset[str]:
    """The suppressed fingerprints recorded in a baseline file.

    Accepts either the native baseline format (``{"version": 1,
    "fingerprints": [...]}``) or a full JSON lint report (its
    ``diagnostics`` are fingerprinted on the fly).  Anything else is a
    configuration error — a malformed baseline silently suppressing
    nothing (or everything) would defeat the gate it exists to serve.
    """
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as error:
        raise LintConfigurationError(
            f"cannot read baseline {path!r}: {error}"
        ) from error
    except ValueError as error:
        raise LintConfigurationError(
            f"baseline {path!r} is not valid JSON: {error}"
        ) from error
    if isinstance(data, Mapping) and "fingerprints" in data:
        fingerprints = data["fingerprints"]
        if not isinstance(fingerprints, list) or not all(
            isinstance(fp, str) for fp in fingerprints
        ):
            raise LintConfigurationError(
                f"baseline {path!r}: 'fingerprints' must be a list of strings"
            )
        return frozenset(fingerprints)
    if isinstance(data, Mapping) and "diagnostics" in data:
        try:
            return frozenset(
                diagnostic_fingerprint(Diagnostic.from_dict(raw))
                for raw in data["diagnostics"]
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise LintConfigurationError(
                f"baseline {path!r}: malformed diagnostics: {error}"
            ) from error
    raise LintConfigurationError(
        f"baseline {path!r}: expected a 'fingerprints' list or a JSON lint "
        f"report with 'diagnostics'"
    )


def write_baseline(
    path: str | os.PathLike, report: LintReport | Iterable[Diagnostic]
) -> int:
    """Record *report*'s findings as the new baseline (atomic write).

    Returns the number of fingerprints written.  Fingerprints are
    sorted and deduplicated, so the file is byte-stable for a given
    finding set.
    """
    fingerprints = sorted(
        {diagnostic_fingerprint(diagnostic) for diagnostic in report}
    )
    atomic_write_text(
        os.fspath(path),
        json.dumps(
            {"version": BASELINE_VERSION, "fingerprints": fingerprints},
            indent=2,
            sort_keys=True,
        )
        + "\n",
    )
    return len(fingerprints)


def apply_baseline(
    report: LintReport, fingerprints: frozenset[str] | Iterable[str]
) -> tuple[LintReport, int]:
    """Drop baselined findings from *report*.

    Returns the filtered report (original diagnostic order preserved)
    and the number of findings suppressed.  Exit-code gating on the
    filtered report is what makes the baseline a ratchet: old findings
    stay visible in the baseline file, new ones fail the gate.
    """
    suppressed = frozenset(fingerprints)
    kept = tuple(
        diagnostic
        for diagnostic in report.diagnostics
        if diagnostic_fingerprint(diagnostic) not in suppressed
    )
    return LintReport(kept), len(report.diagnostics) - len(kept)

"""E7 — engineering scaling: the model is linear in providers x tuples.

The paper positions the model as deployable inside production relational
databases, so the harness verifies the computational story: full-model
evaluation scales linearly in the number of providers (R^2 of a linear fit
over a size sweep), the vectorized batch engine beats the reference
engine by an order of magnitude on policy sweeps, and the sqlite gate's
per-request overhead stays flat as the data table grows.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks every size so the module doubles
as a CI smoke test: the same code paths run, but the speedup floor is
relaxed (tiny problems are dominated by fixed overheads).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import HousePolicy, PrivacyTuple, ViolationEngine
from repro.datasets import healthcare_scenario
from repro.perf import BatchViolationEngine, ShardExecutor, make_batch_engine
from repro.simulation import WideningStep, widening_policies
from repro.storage import AccessRequest, EnforcementMode, PrivacyDatabase

from conftest import emit, record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (50, 100, 200, 400, 800)
SWEEP_PROVIDERS = 40 if SMOKE else 400
SWEEP_POLICIES = 20
#: Best-of-k repeats for every timing: robust against scheduler noise.
TIMING_REPEATS = 3
# Acceptance floor: >= 10x on the full-size sweep.  At smoke sizes the
# fixed per-call overhead dominates, so only sanity (not slower) is held.
MIN_SWEEP_SPEEDUP = 1.0 if SMOKE else 10.0

PARALLEL_PROVIDERS = 60 if SMOKE else 2000
PARALLEL_POLICIES = 8 if SMOKE else 40
PARALLEL_WORKERS = 2 if SMOKE else 4
#: Acceptance floor for the sharded executor — only meaningful when the
#: machine actually has a core per worker (and the problem is full-size).
MIN_PARALLEL_SPEEDUP = 2.5


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(repeats: int, run) -> float:
    """Best-of-*repeats* wall time of ``run()`` (fresh state per repeat)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _evaluate(n: int, repeats: int = 3) -> float:
    """Best-of-*repeats* evaluation time: robust against scheduler noise."""
    scenario = healthcare_scenario(n, seed=3)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ViolationEngine(scenario.policy, scenario.population).report()
        best = min(best, time.perf_counter() - started)
    return best


def test_engine_scales_linearly(benchmark):
    def measure():
        return [(n, _evaluate(n)) for n in SIZES]

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit(
        "E7: full-model evaluation time vs population size",
        format_table(
            ["N providers", "seconds"],
            [[n, seconds] for n, seconds in timings],
        ),
    )

    sizes = np.array([n for n, _ in timings], dtype=float)
    seconds = np.array([s for _, s in timings], dtype=float)
    # Least-squares linear fit; demand a strong linear relationship.
    coeffs = np.polyfit(sizes, seconds, 1)
    predicted = np.polyval(coeffs, sizes)
    ss_res = float(((seconds - predicted) ** 2).sum())
    ss_tot = float(((seconds - seconds.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    emit(
        "E7: linear fit",
        format_table(
            ["slope s/provider", "intercept", "R^2"],
            [[float(coeffs[0]), float(coeffs[1]), r_squared]],
        ),
    )
    assert r_squared > 0.95
    assert coeffs[0] > 0
    record(
        "engine_scaling",
        sizes=list(SIZES),
        seconds=[s for _, s in timings],
        slope_seconds_per_provider=float(coeffs[0]),
        r_squared=r_squared,
    )


def test_sweep_batch_vs_reference(benchmark):
    """The batch engine's policy sweep beats per-policy reference engines.

    A widening sweep of ``SWEEP_POLICIES`` candidates over
    ``SWEEP_PROVIDERS`` providers is evaluated twice: once the reference
    way (a fresh :class:`ViolationEngine` per candidate) and once through
    one :class:`BatchViolationEngine` (one compilation, cached reports,
    column deltas between consecutive candidates).  Both must agree on
    every aggregate; the batch path must clear ``MIN_SWEEP_SPEEDUP``.
    Each path is timed best-of-``TIMING_REPEATS`` with a fresh engine per
    repeat (the report cache is content-keyed, so a reused engine would
    measure cache hits, not evaluation).
    """
    scenario = healthcare_scenario(SWEEP_PROVIDERS, seed=3)
    policies = widening_policies(
        scenario.policy,
        WideningStep.uniform(1),
        scenario.taxonomy,
        SWEEP_POLICIES - 1,
    )
    assert len(policies) == SWEEP_POLICIES

    def measure():
        reference = [
            ViolationEngine(policy, scenario.population).report()
            for policy in policies
        ]
        reference_seconds = _best_of(
            TIMING_REPEATS,
            lambda: [
                ViolationEngine(policy, scenario.population).report()
                for policy in policies
            ],
        )
        batch = BatchViolationEngine(scenario.population).evaluate_policies(
            policies
        )
        batch_seconds = _best_of(
            TIMING_REPEATS,
            lambda: BatchViolationEngine(
                scenario.population
            ).evaluate_policies(policies),
        )
        return reference, reference_seconds, batch, batch_seconds

    reference, reference_seconds, batch, batch_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    for expected, got in zip(reference, batch):
        assert got.n_violated == expected.n_violated
        assert got.n_defaulted == expected.n_defaulted
        assert got.violated_ids() == expected.violated_ids()
        np.testing.assert_allclose(
            got.total_violations, expected.total_violations, rtol=1e-9
        )

    speedup = reference_seconds / batch_seconds if batch_seconds else float("inf")
    emit(
        "E7: policy sweep, reference vs batch engine",
        format_table(
            ["providers", "policies", "reference s", "batch s", "speedup"],
            [
                [
                    SWEEP_PROVIDERS,
                    SWEEP_POLICIES,
                    round(reference_seconds, 4),
                    round(batch_seconds, 4),
                    round(speedup, 1),
                ]
            ],
        ),
    )
    record(
        "sweep_batch_vs_reference",
        providers=SWEEP_PROVIDERS,
        policies=SWEEP_POLICIES,
        reference_seconds=reference_seconds,
        batch_seconds=batch_seconds,
        speedup=speedup,
        smoke=SMOKE,
    )
    assert speedup >= MIN_SWEEP_SPEEDUP


def test_parallel_sweep_speedup(benchmark):
    """The sharded executor vs the serial batch engine on a policy sweep.

    Compilation and pool startup are excluded from every timed region
    (the executor is built and warmed before the clock starts; the
    serial engines wrap an already-compiled population), so the numbers
    compare steady-state sweep evaluation only.  Each repeat uses a
    fresh engine/executor because report caches are content-keyed.

    The ``MIN_PARALLEL_SPEEDUP`` floor is asserted only on the full-size
    problem *and* when the machine has at least one core per worker —
    on a single-core box the workers time-slice one CPU and parallelism
    cannot win.  A full-size run on such a box is skipped loudly (a
    BENCH record with ``"skipped"`` set) rather than publishing a
    meaningless sub-1x "speedup" that downstream dashboards would read
    as a regression.
    """
    cores = _available_cores()
    if not SMOKE and cores < PARALLEL_WORKERS:
        record(
            "parallel_sweep",
            providers=PARALLEL_PROVIDERS,
            policies=PARALLEL_POLICIES,
            workers=PARALLEL_WORKERS,
            cores=cores,
            smoke=SMOKE,
            skipped="cores<workers",
        )
        pytest.skip(
            f"parallel sweep needs >= {PARALLEL_WORKERS} cores "
            f"(have {cores}); timings would be meaningless"
        )
    scenario = healthcare_scenario(PARALLEL_PROVIDERS, seed=7)
    policies = widening_policies(
        scenario.policy,
        WideningStep.uniform(1),
        scenario.taxonomy,
        PARALLEL_POLICIES - 1,
    )
    assert len(policies) == PARALLEL_POLICIES
    # A warm-up policy outside the measured list: forks the workers and
    # pays the import/attach cost without pre-caching measured content
    # (the caches are content-keyed, so it must not equal any candidate;
    # an attribute nobody provides guarantees that).
    warm_policy = HousePolicy(
        [("__warmup__", PrivacyTuple("billing", 1, 1, 1))], name="warmup"
    )
    compiled = BatchViolationEngine(scenario.population).compiled

    def measure():
        serial_reports = BatchViolationEngine(compiled).evaluate_policies(
            policies
        )
        serial_seconds = _best_of(
            TIMING_REPEATS,
            lambda: BatchViolationEngine(compiled).evaluate_policies(policies),
        )
        workers1_seconds = _best_of(
            TIMING_REPEATS,
            lambda: make_batch_engine(
                scenario.population, workers=1
            ).evaluate_policies(policies),
        )
        baseline_seconds = _best_of(
            TIMING_REPEATS,
            lambda: BatchViolationEngine(
                scenario.population
            ).evaluate_policies(policies),
        )
        parallel_seconds = float("inf")
        for _ in range(TIMING_REPEATS):
            with ShardExecutor(
                scenario.population, workers=PARALLEL_WORKERS
            ) as executor:
                executor.evaluate(warm_policy)
                started = time.perf_counter()
                parallel_reports = executor.evaluate_policies(policies)
                parallel_seconds = min(
                    parallel_seconds, time.perf_counter() - started
                )
        return (
            serial_reports,
            serial_seconds,
            workers1_seconds,
            baseline_seconds,
            parallel_reports,
            parallel_seconds,
        )

    (
        serial_reports,
        serial_seconds,
        workers1_seconds,
        baseline_seconds,
        parallel_reports,
        parallel_seconds,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    for expected, got in zip(serial_reports, parallel_reports):
        assert got.policy_name == expected.policy_name
        assert got.n_violated == expected.n_violated
        assert got.n_defaulted == expected.n_defaulted
        assert got.total_violations == expected.total_violations
        assert got.violated_ids() == expected.violated_ids()

    speedup = (
        serial_seconds / parallel_seconds if parallel_seconds else float("inf")
    )
    emit(
        "E7: policy sweep, serial vs sharded executor",
        format_table(
            ["providers", "policies", "workers", "cores",
             "serial s", "workers=1 s", "parallel s", "speedup"],
            [
                [
                    PARALLEL_PROVIDERS,
                    PARALLEL_POLICIES,
                    PARALLEL_WORKERS,
                    cores,
                    round(serial_seconds, 4),
                    round(workers1_seconds, 4),
                    round(parallel_seconds, 4),
                    round(speedup, 2),
                ]
            ],
        ),
    )
    record(
        "parallel_sweep",
        providers=PARALLEL_PROVIDERS,
        policies=PARALLEL_POLICIES,
        workers=PARALLEL_WORKERS,
        cores=cores,
        smoke=SMOKE,
        serial_seconds=serial_seconds,
        workers1_seconds=workers1_seconds,
        baseline_seconds=baseline_seconds,
        parallel_seconds=parallel_seconds,
        speedup=speedup,
    )
    # workers=1 must stay the serial code path: same engine type, and no
    # more than 5% over a direct construction (compile included in both).
    if not SMOKE:
        assert workers1_seconds <= baseline_seconds * 1.05 + 0.001
    if not SMOKE and cores >= PARALLEL_WORKERS:
        assert speedup >= MIN_PARALLEL_SPEEDUP


WARM_SWEEPS = 3 if SMOKE else 6
WARM_POLICIES_PER_SWEEP = 3 if SMOKE else 6


def test_warm_pool_amortizes_spinup(benchmark):
    """Warm supervised pool vs a cold pool per sweep.

    A service that runs many sweeps against one population should keep
    the :class:`~repro.perf.supervisor.SupervisedExecutor` open: the
    fork + shared-memory attach cost is paid once, and every later sweep
    flows straight into warm workers.  The cold path here rebuilds the
    executor per sweep over the *same pre-compiled population* (so the
    comparison isolates pool spin-up, not compilation).  Same loud
    self-skip discipline as the parallel sweep bench: on a box without a
    core per worker the record carries ``"skipped"`` instead of noise.
    """
    cores = _available_cores()
    if not SMOKE and cores < PARALLEL_WORKERS:
        record(
            "warm_pool",
            workers=PARALLEL_WORKERS,
            cores=cores,
            sweeps=WARM_SWEEPS,
            smoke=SMOKE,
            skipped="cores<workers",
        )
        pytest.skip(
            f"warm-pool bench needs >= {PARALLEL_WORKERS} cores "
            f"(have {cores}); timings would be meaningless"
        )
    from repro.perf import SupervisedExecutor

    providers = 60 if SMOKE else 1000
    scenario = healthcare_scenario(providers, seed=11)
    path = widening_policies(
        scenario.policy,
        WideningStep.uniform(1),
        scenario.taxonomy,
        WARM_SWEEPS * WARM_POLICIES_PER_SWEEP - 1,
    )
    # Disjoint policy sets per sweep: report caches are content-keyed,
    # so reuse would measure cache hits instead of evaluations.
    sweeps = [
        path[i : i + WARM_POLICIES_PER_SWEEP]
        for i in range(0, len(path), WARM_POLICIES_PER_SWEEP)
    ]
    compiled = BatchViolationEngine(scenario.population).compiled

    def measure():
        def run_cold():
            for policies in sweeps:
                with SupervisedExecutor(
                    compiled, workers=PARALLEL_WORKERS
                ) as executor:
                    executor.evaluate_policies(policies)

        def run_warm():
            with SupervisedExecutor(
                compiled, workers=PARALLEL_WORKERS
            ) as executor:
                for policies in sweeps:
                    executor.evaluate_policies(policies)

        cold_seconds = _best_of(TIMING_REPEATS, run_cold)
        warm_seconds = _best_of(TIMING_REPEATS, run_warm)
        return cold_seconds, warm_seconds

    cold_seconds, warm_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    amortization = (
        cold_seconds / warm_seconds if warm_seconds else float("inf")
    )
    emit(
        "E7: repeated sweeps, cold pool per sweep vs one warm pool",
        format_table(
            ["providers", "sweeps", "workers", "cold s", "warm s", "ratio"],
            [
                [
                    providers,
                    WARM_SWEEPS,
                    PARALLEL_WORKERS,
                    round(cold_seconds, 4),
                    round(warm_seconds, 4),
                    round(amortization, 2),
                ]
            ],
        ),
    )
    record(
        "warm_pool",
        providers=providers,
        sweeps=WARM_SWEEPS,
        policies_per_sweep=WARM_POLICIES_PER_SWEEP,
        workers=PARALLEL_WORKERS,
        cores=cores,
        smoke=SMOKE,
        cold_seconds=cold_seconds,
        warm_seconds=warm_seconds,
        amortization=amortization,
    )
    # At full size the warm pool must never lose to respawning per
    # sweep; at smoke sizes only sanity (both paths completed) is held.
    if not SMOKE:
        assert warm_seconds <= cold_seconds


def test_gate_request_throughput(benchmark, crm_200):
    with PrivacyDatabase.create(":memory:") as db:
        db.install(crm_200.policy, crm_200.population)
        for provider in crm_200.population:
            db.repository.put_datum(
                str(provider.provider_id), "email", "user@example.com"
            )
        gate = db.gate(mode=EnforcementMode.AUDIT)
        request = AccessRequest(
            "email", PrivacyTuple("fulfillment", 2, 4, 1)
        )

        decision = benchmark(gate.request, request)
        assert decision.allowed
        events = db.audit_log.report().total_events
        emit(
            "E7: gate requests audited",
            format_table(["audited events"], [[events]]),
        )
        assert events >= 1

"""The fault-injection harness itself: specs, plans, proxies."""

from __future__ import annotations

import sqlite3

import numpy as np
import pytest

from repro.exceptions import FaultConfigError, ProcessKilled
from repro.resilience import FaultPlan, FaultSpec, active_plan
from repro.storage.queries import connect


class TestFaultSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="gremlins", at=0)

    def test_at_and_probability_mutually_exclusive(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="locked", at=0, probability=0.5)

    def test_one_of_at_or_probability_required(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="locked")

    def test_negative_at_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="locked", at=-1)

    def test_zero_count_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="locked", at=0, count=0)

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultSpec(site="db.execute", kind="locked", probability=1.5)

    def test_non_spec_in_plan_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultPlan([("db.execute", "locked", 0)])


class TestScriptedFiring:
    def test_fires_exactly_at_visit(self):
        plan = FaultPlan([FaultSpec(site="s", kind="locked", at=2)])
        plan.check("s")
        plan.check("s")
        with pytest.raises(sqlite3.OperationalError, match="locked"):
            plan.check("s")
        plan.check("s")
        assert plan.fired == (("s", 2, "locked"),)

    def test_count_spans_consecutive_visits(self):
        plan = FaultPlan([FaultSpec(site="s", kind="locked", at=0, count=3)])
        for _ in range(3):
            with pytest.raises(sqlite3.OperationalError):
                plan.check("s")
        plan.check("s")
        assert plan.visits("s") == 4

    def test_disk_full_message(self):
        plan = FaultPlan([FaultSpec(site="s", kind="disk_full", at=0)])
        with pytest.raises(sqlite3.OperationalError, match="disk is full"):
            plan.check("s")

    def test_kill_raises_process_killed(self):
        plan = FaultPlan([FaultSpec(site="s", kind="kill", at=0)])
        with pytest.raises(ProcessKilled) as info:
            plan.check("s")
        assert info.value.site == "s"

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec(site="a", kind="locked", at=0)])
        plan.check("b")
        with pytest.raises(sqlite3.OperationalError):
            plan.check("a")

    def test_seeded_probability_is_replayable(self):
        def run(seed):
            plan = FaultPlan(
                [FaultSpec(site="s", kind="locked", probability=0.5)],
                seed=seed,
            )
            fired = []
            for _ in range(50):
                try:
                    plan.check("s")
                    fired.append(False)
                except sqlite3.OperationalError:
                    fired.append(True)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7))

    def test_data_kind_at_raising_site_is_a_plan_bug(self):
        plan = FaultPlan([FaultSpec(site="s", kind="corrupt", at=0)])
        with pytest.raises(FaultConfigError):
            plan.check("s")


class TestByteAndArraySites:
    def test_corrupt_flips_exactly_one_byte(self):
        plan = FaultPlan([FaultSpec(site="b", kind="corrupt", at=0)], seed=1)
        data = bytes(range(64))
        out = plan.corrupt_bytes("b", data)
        assert len(out) == len(data)
        diffs = [i for i, (x, y) in enumerate(zip(data, out)) if x != y]
        assert len(diffs) == 1
        assert out[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_clean_visit_passes_bytes_through(self):
        plan = FaultPlan()
        data = b"payload"
        assert plan.corrupt_bytes("b", data) is data

    def test_raising_kind_at_byte_site_raises(self):
        plan = FaultPlan([FaultSpec(site="b", kind="disk_full", at=0)])
        with pytest.raises(sqlite3.OperationalError, match="disk is full"):
            plan.corrupt_bytes("b", b"data")

    def test_nan_poisons_one_element_without_mutating_input(self):
        plan = FaultPlan([FaultSpec(site="a", kind="nan", at=0)], seed=3)
        array = np.arange(10, dtype=np.float64)
        out = plan.poison_array("a", array)
        assert np.isfinite(array).all()
        assert np.isnan(out).sum() == 1

    def test_scale_produces_finite_divergence(self):
        plan = FaultPlan([FaultSpec(site="a", kind="scale", at=0)], seed=3)
        array = np.ones(10, dtype=np.float64)
        out = plan.poison_array("a", array)
        assert np.isfinite(out).all()
        assert (out != array).sum() == 1

    def test_clean_visit_passes_array_through(self):
        plan = FaultPlan()
        array = np.ones(4)
        assert plan.poison_array("a", array) is array


class TestActivation:
    def test_activate_installs_and_restores(self):
        plan = FaultPlan()
        assert active_plan() is None
        with plan.activate() as active:
            assert active is plan
            assert active_plan() is plan
        assert active_plan() is None

    def test_activation_nests(self):
        outer, inner = FaultPlan(), FaultPlan()
        with outer.activate():
            with inner.activate():
                assert active_plan() is inner
            assert active_plan() is outer

    def test_restored_after_exception(self):
        plan = FaultPlan()
        with pytest.raises(RuntimeError):
            with plan.activate():
                raise RuntimeError("boom")
        assert active_plan() is None


class TestFaultProxy:
    def test_execute_fault_fires_through_connection(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="db.execute", kind="locked", at=1)])
        with plan.activate():
            connection = connect(str(tmp_path / "p.sqlite"))
            connection.execute("CREATE TABLE t (x)")
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                connection.execute("INSERT INTO t VALUES (1)")
            connection.close()

    def test_commit_fault_fires(self, tmp_path):
        plan = FaultPlan([FaultSpec(site="db.commit", kind="disk_full", at=0)])
        with plan.activate():
            connection = connect(str(tmp_path / "p.sqlite"))
            connection.execute("CREATE TABLE t (x)")
            with pytest.raises(sqlite3.OperationalError, match="disk is full"):
                connection.commit()
            connection.close()

    def test_attributes_delegate(self, tmp_path):
        plan = FaultPlan()
        with plan.activate():
            connection = connect(str(tmp_path / "p.sqlite"))
            assert connection.row_factory is sqlite3.Row
            assert connection.in_transaction is False
            connection.close()

    def test_no_proxy_without_active_plan(self, tmp_path):
        connection = connect(str(tmp_path / "p.sqlite"))
        assert isinstance(connection, sqlite3.Connection)
        connection.close()


class TestForkAwareness:
    """A plan is armed only in the process that constructed (or rearmed) it."""

    def test_plan_is_armed_in_its_owner(self):
        plan = FaultPlan([FaultSpec(site="s", kind="locked", at=0)])
        assert plan.armed
        with pytest.raises(sqlite3.OperationalError):
            plan.check("s")

    def test_inherited_plan_is_disarmed_in_forked_child(self):
        import multiprocessing

        plan = FaultPlan([FaultSpec(site="s", kind="locked", at=0)])
        context = multiprocessing.get_context("fork")
        queue = context.SimpleQueue()

        def probe(q):
            # In the child the inherited plan must be silent: visits
            # neither fire nor advance the schedule.
            try:
                plan.check("s")
                q.put(("ok", plan.armed, plan.visits("s")))
            except Exception as error:  # pragma: no cover - the failure case
                q.put(("raised", type(error).__name__, None))

        child = context.Process(target=probe, args=(queue,))
        child.start()
        outcome, armed, visits = queue.get()
        child.join()
        assert outcome == "ok"
        assert armed is False
        assert visits == 0
        # The parent's schedule was untouched: the fault still fires here.
        assert plan.armed
        with pytest.raises(sqlite3.OperationalError):
            plan.check("s")

    def test_rearm_adopts_and_restarts_the_schedule(self):
        import os

        plan = FaultPlan([FaultSpec(site="s", kind="locked", at=0)])
        with pytest.raises(sqlite3.OperationalError):
            plan.check("s")
        assert plan.visits("s") == 1
        # Simulate an inherited plan in a forked child.
        plan._owner_pid = os.getpid() + 1
        assert not plan.armed
        plan.check("s")  # silent: disarmed
        assert plan.visits("s") == 1
        plan.rearm()
        assert plan.armed
        assert plan.visits("s") == 0  # schedule restarted
        assert plan.fired == ()
        with pytest.raises(sqlite3.OperationalError):
            plan.check("s")

    def test_rearm_with_new_seed_redraws_randomness(self):
        plan = FaultPlan(
            [FaultSpec(site="s", kind="locked", probability=0.5)], seed=1
        )
        outcomes = []
        for _ in range(16):
            try:
                plan.check("s")
                outcomes.append(False)
            except sqlite3.OperationalError:
                outcomes.append(True)
        plan.rearm(seed=1)
        replay = []
        for _ in range(16):
            try:
                plan.check("s")
                replay.append(False)
            except sqlite3.OperationalError:
                replay.append(True)
        assert replay == outcomes  # same seed, same schedule

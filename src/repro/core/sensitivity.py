"""Sensitivity factors (Section 6.1, Eqs. 10-11).

The severity of a violation is weighted by three kinds of sensitivity, all
tied to a purpose-specific context:

* ``Sigma^a`` — the social sensitivity of attribute ``a`` (Westin ranks
  health and financial data highest); :class:`AttributeSensitivities`.
* ``s_i^a`` — how sensitive provider ``i`` considers the *value* they
  supplied for ``a`` (a weight deviating from the norm is more sensitive
  than an average one); the ``value`` field of
  :class:`DimensionSensitivity`.
* ``s_i^a[dim]`` — how much provider ``i`` cares about exposure along each
  ordered dimension for that datum; the per-dimension fields of
  :class:`DimensionSensitivity`.

:class:`SensitivityModel` bundles the attribute vector ``Sigma`` with the
per-provider map ``sigma`` and supplies neutral defaults (all ones) for
anything unspecified, so severity degrades gracefully to the raw geometric
exceedance when no survey data is available.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Hashable

from .._validation import check_real
from ..exceptions import ValidationError
from .dimensions import Dimension


@dataclass(frozen=True, slots=True)
class DimensionSensitivity:
    """Equation 11: ``sigma_i^j = <s, s[V], s[G], s[R]>`` for one datum.

    ``value`` is the data-value sensitivity ``s_i^j``; the remaining fields
    weight violations along each ordered dimension.  All weights must be
    non-negative; the neutral element is all ones.
    """

    value: float = 1.0
    visibility: float = 1.0
    granularity: float = 1.0
    retention: float = 1.0

    def __post_init__(self) -> None:
        for name in ("value", "visibility", "granularity", "retention"):
            check_real(getattr(self, name), name, minimum=0.0)

    def dimension_weight(self, dimension: Dimension) -> float:
        """The paper's ``s_i^a[dim]`` for an ordered dimension."""
        if not dimension.is_ordered:
            raise ValidationError(
                "purpose has no dimension sensitivity; it is categorical"
            )
        return float(getattr(self, dimension.value))

    def __getitem__(self, dimension: Dimension) -> float:
        return self.dimension_weight(dimension)

    @classmethod
    def neutral(cls) -> "DimensionSensitivity":
        """The all-ones weighting (severity equals raw exceedance)."""
        return cls()

    @classmethod
    def from_sequence(cls, values: tuple[float, float, float, float]) -> "DimensionSensitivity":
        """Build from the paper's ``<s, s[V], s[G], s[R]>`` ordering.

        Table 1 writes e.g. ``sigma_Ted^Weight = <3, 1, 5, 2>``; this
        constructor accepts exactly that ordering.
        """
        value, visibility, granularity, retention = values
        return cls(
            value=value,
            visibility=visibility,
            granularity=granularity,
            retention=retention,
        )


#: Neutral sensitivity reused wherever nothing was specified.
NEUTRAL_SENSITIVITY = DimensionSensitivity()


@dataclass(frozen=True)
class ProviderSensitivity:
    """Equation 11 aggregated: ``sigma_i`` — one provider's sensitivities.

    Maps attribute name to that datum's :class:`DimensionSensitivity`.
    Attributes absent from the map are treated as neutral (all ones).
    """

    provider_id: Hashable
    per_attribute: Mapping[str, DimensionSensitivity] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.provider_id is None:
            raise ValidationError("provider_id must not be None")
        for attribute, sens in self.per_attribute.items():
            if not isinstance(sens, DimensionSensitivity):
                raise ValidationError(
                    f"sensitivity for attribute {attribute!r} must be a "
                    f"DimensionSensitivity, got {type(sens).__name__}"
                )
        # Freeze the mapping so the dataclass is safely hashable by identity
        # of content.
        object.__setattr__(self, "per_attribute", dict(self.per_attribute))

    def for_attribute(self, attribute: str) -> DimensionSensitivity:
        """``sigma_i^a``, defaulting to neutral when unspecified."""
        return self.per_attribute.get(attribute, NEUTRAL_SENSITIVITY)


class AttributeSensitivities:
    """Equation 10's ``Sigma``: social sensitivity per attribute.

    The paper defines these as integers; we accept non-negative reals so
    calibrated survey weights fit too.  Attributes absent from the map get
    weight 1 (neutral).
    """

    __slots__ = ("_weights",)

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        self._weights: dict[str, float] = {}
        for attribute, weight in (weights or {}).items():
            self._weights[attribute] = check_real(
                weight, f"Sigma[{attribute}]", minimum=0.0
            )

    def weight(self, attribute: str) -> float:
        """``Sigma^a`` for *attribute* (1.0 when unspecified)."""
        return self._weights.get(attribute, 1.0)

    def __getitem__(self, attribute: str) -> float:
        return self.weight(attribute)

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._weights

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AttributeSensitivities):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:
        return f"AttributeSensitivities({self._weights!r})"

    def as_dict(self) -> dict[str, float]:
        """A copy of the explicit weights."""
        return dict(self._weights)


class SensitivityModel:
    """Equation 10: ``Sensitivity = <sigma, Sigma>`` for a whole population.

    Bundles the attribute vector with the per-provider sensitivities and
    answers the composite weight lookups the ``conf`` function needs.
    Missing providers or attributes resolve to neutral weights, so a
    sensitivity model is always total.
    """

    __slots__ = ("_attributes", "_providers")

    def __init__(
        self,
        attributes: AttributeSensitivities | Mapping[str, float] | None = None,
        providers: Mapping[Hashable, ProviderSensitivity] | None = None,
    ) -> None:
        if attributes is None:
            attributes = AttributeSensitivities()
        elif not isinstance(attributes, AttributeSensitivities):
            attributes = AttributeSensitivities(attributes)
        self._attributes = attributes
        self._providers: dict[Hashable, ProviderSensitivity] = {}
        for provider_id, sens in (providers or {}).items():
            if not isinstance(sens, ProviderSensitivity):
                raise ValidationError(
                    f"provider sensitivity for {provider_id!r} must be a "
                    f"ProviderSensitivity, got {type(sens).__name__}"
                )
            if sens.provider_id != provider_id:
                raise ValidationError(
                    f"sensitivity keyed {provider_id!r} carries provider "
                    f"{sens.provider_id!r}"
                )
            self._providers[provider_id] = sens

    @property
    def attributes(self) -> AttributeSensitivities:
        """The ``Sigma`` vector."""
        return self._attributes

    def attribute_weight(self, attribute: str) -> float:
        """``Sigma^a``."""
        return self._attributes.weight(attribute)

    def provider(self, provider_id: Hashable) -> ProviderSensitivity:
        """``sigma_i``, neutral when the provider was never described."""
        existing = self._providers.get(provider_id)
        if existing is not None:
            return existing
        return ProviderSensitivity(provider_id=provider_id)

    def datum(self, provider_id: Hashable, attribute: str) -> DimensionSensitivity:
        """``sigma_i^a`` — the full per-datum sensitivity record."""
        return self.provider(provider_id).for_attribute(attribute)

    def explicit_providers(self) -> dict[Hashable, ProviderSensitivity]:
        """The providers with explicit (non-neutral-by-default) records."""
        return dict(self._providers)

    def with_provider(self, sensitivity: ProviderSensitivity) -> "SensitivityModel":
        """A new model with *sensitivity* added or replaced."""
        providers = dict(self._providers)
        providers[sensitivity.provider_id] = sensitivity
        return SensitivityModel(self._attributes, providers)

    @classmethod
    def neutral(cls) -> "SensitivityModel":
        """A model in which every weight is 1."""
        return cls()

"""Declarative policy/preference documents (a P3P-lite).

The violation model needs machine-checkable statements of what the house
does (``HP``) and what providers prefer (``ProviderPref_i``).  This
package defines a small JSON-compatible document format for both, plus
sensitivity declarations, with:

* :mod:`repro.policy_lang.ast` — the parsed-document dataclasses;
* :mod:`repro.policy_lang.parser` — dict/JSON to model objects;
* :mod:`repro.policy_lang.serializer` — model objects to documents
  (round-trip guaranteed, property-tested);
* :mod:`repro.policy_lang.validator` — semantic validation against a
  :class:`~repro.taxonomy.builder.Taxonomy`.

Documents accept level *names* (``"third-party"``) wherever the taxonomy
defines a ladder, and raw integer ranks everywhere, so the same format
serves human-authored policies and machine-generated ones.
"""

from .ast import (
    PolicyDocument,
    PreferenceDocument,
    SensitivityDocument,
    TupleSpec,
)
from .parser import (
    parse_policy,
    parse_preferences,
    parse_sensitivities,
    policy_from_json,
    preferences_from_json,
)
from .serializer import (
    policy_to_dict,
    policy_to_json,
    preferences_to_dict,
    preferences_to_json,
    sensitivities_to_dict,
)
from .validator import validate_policy_document, validate_preference_document
from .taxonomy_doc import (
    parse_taxonomy,
    taxonomy_from_json,
    taxonomy_to_dict,
    taxonomy_to_json,
)
from .population_doc import (
    parse_population,
    population_from_json,
    population_to_dict,
    population_to_json,
    preference_documents,
)

__all__ = [
    "parse_taxonomy",
    "taxonomy_from_json",
    "taxonomy_to_dict",
    "taxonomy_to_json",
    "parse_population",
    "population_from_json",
    "population_to_dict",
    "population_to_json",
    "preference_documents",
    "PolicyDocument",
    "PreferenceDocument",
    "SensitivityDocument",
    "TupleSpec",
    "parse_policy",
    "parse_preferences",
    "parse_sensitivities",
    "policy_from_json",
    "preferences_from_json",
    "policy_to_dict",
    "policy_to_json",
    "preferences_to_dict",
    "preferences_to_json",
    "sensitivities_to_dict",
    "validate_policy_document",
    "validate_preference_document",
]

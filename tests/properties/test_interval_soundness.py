"""Soundness of the lint layer's severity-interval abstraction.

``repro.lint.intervals`` claims that, without invoking any engine, it
bounds every provider's exact ``Violation_i`` (Eq. 15) and the house
total (Eq. 16), decides ``w_i`` exactly (Definition 1 is
weight-independent), and — in ``"provider"`` weight-bounds mode —
collapses to the exact static severity.  These tests hold those claims
against the reference :class:`~repro.core.engine.ViolationEngine` over
the same randomized dyadic-rational corpus the batch parity suite uses,
so containment and point-equality are asserted **bit for bit**, never
within a tolerance.

Also held here: ``certify(..., static=True)`` (batch engine and shard
executor surface) returns a certificate equal, field for field, to the
evaluated one.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core import DefaultModel, ViolationEngine
from repro.lint.intervals import interval_analysis
from repro.perf import BatchViolationEngine

from .test_batch_parity import (
    N_SCENARIOS,
    _random_policy,
    _random_population,
)


def _exact_outcomes(policy, population, **model_kwargs):
    return ViolationEngine(policy, population, **model_kwargs).report().outcomes


def _assert_sound(policy, population, **model_kwargs):
    """Containment + exact w_i for both weight-bounds modes."""
    outcomes = _exact_outcomes(policy, population, **model_kwargs)
    for mode in ("population", "provider"):
        intervals = interval_analysis(
            policy, population, weight_bounds=mode, **model_kwargs
        )
        assert intervals.n_providers == len(outcomes)
        total = 0.0
        for bounds, outcome in zip(intervals, outcomes):
            assert bounds.provider_id == outcome.provider_id
            # Containment of the exact severity (the soundness claim).
            assert bounds.interval.lower <= outcome.violation
            assert outcome.violation <= bounds.interval.upper
            # Finding counts are exact geometry, so w_i is decided.
            assert bounds.violated == outcome.violated
            assert bounds.provably_safe == (not outcome.violated)
            # Default verdicts: must implies exact, exact implies may.
            if bounds.must_default:
                assert outcome.defaulted
            if outcome.defaulted:
                assert bounds.may_default
            if mode == "provider":
                # Point intervals equal the exact severity bit for bit.
                assert bounds.interval.is_point
                assert bounds.interval.lower == outcome.violation
                assert bounds.must_default == outcome.defaulted
            total += outcome.violation
        # Eq. 16: the house interval contains the exact total.
        assert intervals.house.lower <= total <= intervals.house.upper
        assert intervals.violated_ids() == tuple(
            o.provider_id for o in outcomes if o.violated
        )


@pytest.mark.parametrize("seed", range(N_SCENARIOS))
def test_randomized_interval_soundness(seed):
    rng = random.Random(0xA11 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"policy-{seed}")
    _assert_sound(policy, population)


@pytest.mark.parametrize("seed", range(40))
def test_soundness_with_model_overrides(seed):
    rng = random.Random(0xB22 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"override-{seed}")
    _assert_sound(
        policy,
        population,
        default_model=DefaultModel(strict=False),
        implicit_zero=bool(seed % 2),
    )


@pytest.mark.parametrize("seed", range(N_SCENARIOS))
def test_static_certification_matches_evaluation(seed):
    """``certify(static=True)`` equals the evaluated certificate whole."""
    rng = random.Random(0xC33 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"certify-{seed}")
    engine = BatchViolationEngine(population)
    for alpha in (0.0, 0.25, 0.5, 1.0):
        static = engine.certify(policy, alpha, static=True)
        exact = engine.certify(policy, alpha)
        # Frozen dataclasses: field-for-field equality, violated tuple
        # in population order included.
        assert static == exact


@pytest.mark.parametrize("seed", range(20))
def test_static_certification_never_evaluates(seed):
    """The static path must not touch the evaluation cache."""
    rng = random.Random(0xD44 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"lazy-{seed}")
    engine = BatchViolationEngine(population)
    engine.certify(policy, 0.5, static=True)
    assert engine.cached_policies == 0


def test_static_certify_rejects_early_exit():
    rng = random.Random(1)
    population = _random_population(rng)
    policy = _random_policy(rng, name="conflict")
    engine = BatchViolationEngine(population)
    from repro.exceptions import ValidationError

    with pytest.raises(ValidationError):
        engine.certify(policy, 0.5, static=True, early_exit=True)


def test_infinite_threshold_serialises_as_none():
    """``as_dict`` stays JSON-safe for never-defaulting providers."""
    rng = random.Random(7)
    population = _random_population(rng)
    policy = _random_policy(rng, name="json-safe")
    intervals = interval_analysis(policy, population)
    payload = intervals.as_dict()
    for entry in payload["providers"]:
        threshold = entry["threshold"]
        assert threshold is None or math.isfinite(threshold)

"""Vectorized batch evaluation of the violation model.

The reference engine (:class:`~repro.core.engine.ViolationEngine`)
evaluates one policy over one population with a per-provider Python loop
— ideal as an executable specification, linear but slow as a serving
path.  This package is the production path:

* :class:`~repro.perf.compiled.CompiledPopulation` — a one-time
  compilation of a population (plus its sensitivity and default models)
  into dense NumPy arrays;
* :class:`~repro.perf.batch.BatchViolationEngine` — vectorized
  Definition 1 / Eqs. 12-16 / Definitions 2-5 over those arrays, with
  policy fingerprinting, report caching, and incremental re-evaluation
  of single-rule policy deltas;
* :func:`~repro.perf.sweep.batch_assess_expansion` — Section 9 economics
  read directly off a batch report;
* :class:`~repro.perf.parallel.ShardExecutor` — the same evaluation
  fanned over a process pool attached zero-copy to one shared-memory
  export of the compilation, behind the ``workers=N`` execution policy
  (:func:`~repro.perf.parallel.make_batch_engine`);
* :class:`~repro.perf.supervisor.SupervisedExecutor` — the supervised
  (default) worker pool: heartbeats, a stall watchdog, crash respawn,
  shard retry with backoff, and serial degradation so sweeps complete
  bit-for-bit under partial failure;
* :func:`~repro.perf.streaming.evaluate_chunked` — bounded-memory
  chunk-by-chunk evaluation for populations larger than RAM;
* :class:`~repro.perf.delta.MutableBatchEngine` — the incremental
  facade :func:`make_batch_engine` returns: population churn (remove /
  append / update) mutates the compilation in place instead of
  rebuilding it, so one engine — and one worker pool — survives a whole
  dynamics, equilibrium, or widening run.

The batch engine matches the reference engine exactly (see
``tests/properties/test_batch_parity.py``), and the parallel and
chunked modes match the batch engine bit-for-bit
(``tests/perf/test_parallel_parity.py``); ``docs/performance.md``
describes the compile/evaluate/sweep lifecycle, the shard model, and
when to prefer which engine.
"""

from .batch import (
    BatchReport,
    BatchViolationEngine,
    ColumnPlan,
    assemble_report,
    changed_column_keys,
    column_contribution,
    column_plan,
    plan_delta,
    policy_columns,
    policy_fingerprint,
    row_contribution,
    sum_column_arrays,
)
from .compiled import CompiledColumn, CompiledPopulation, RANK_AXES
from .delta import MutableBatchEngine, MutableCompiledPopulation
from .parallel import (
    ShardExecutor,
    available_cpus,
    make_batch_engine,
    resolve_workers,
)
from .shards import shard_bounds
from .shm import (
    SharedArrayPack,
    attach_arrays,
    clean_stale_segments,
    stale_segments,
)
from .streaming import evaluate_chunked, iter_population_chunks, merge_reports
from .supervisor import DegradationRecord, SupervisedExecutor
from .sweep import batch_assess_expansion

__all__ = [
    "BatchReport",
    "BatchViolationEngine",
    "ColumnPlan",
    "CompiledColumn",
    "CompiledPopulation",
    "DegradationRecord",
    "MutableBatchEngine",
    "MutableCompiledPopulation",
    "RANK_AXES",
    "ShardExecutor",
    "SharedArrayPack",
    "SupervisedExecutor",
    "assemble_report",
    "attach_arrays",
    "available_cpus",
    "batch_assess_expansion",
    "changed_column_keys",
    "clean_stale_segments",
    "column_contribution",
    "column_plan",
    "evaluate_chunked",
    "iter_population_chunks",
    "make_batch_engine",
    "merge_reports",
    "plan_delta",
    "policy_columns",
    "policy_fingerprint",
    "resolve_workers",
    "row_contribution",
    "shard_bounds",
    "stale_segments",
    "sum_column_arrays",
]

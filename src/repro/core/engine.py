"""The :class:`ViolationEngine`: one object tying policy and population together.

The engine evaluates the whole model in one pass — per-provider findings,
``w_i``, ``Violation_i``, ``default_i`` — caches the results, and exposes
the aggregate quantities (``P(W)``, ``P(Default)``, ``Violations``,
alpha-PPDB checks).  ``with_policy`` re-evaluates the same population under
a different policy, which is the basic step of every what-if analysis and
widening sweep in :mod:`repro.simulation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Hashable

from .._validation import check_probability
from ..exceptions import UnknownProviderError, ValidationError
from ..obs import active_observer
from .default import DefaultModel
from .policy import HousePolicy
from .population import Population
from .ppdb import PPDBCertificate, certify_alpha_ppdb
from .sensitivity import SensitivityModel
from .severity import SeverityBreakdown
from .violation import ViolationFinding, find_violations


@dataclass(frozen=True, slots=True)
class ProviderOutcome:
    """Everything the model says about one provider under one policy."""

    provider_id: Hashable
    violated: bool
    violation: float
    threshold: float
    defaulted: bool
    findings: tuple[ViolationFinding, ...]
    segment: str | None = None

    def breakdown(self) -> SeverityBreakdown:
        """The severity decomposition for this provider."""
        return SeverityBreakdown.from_findings(self.provider_id, self.findings)


@dataclass(frozen=True, slots=True)
class EngineReport:
    """Aggregate view over a full evaluation.

    ``violation_probability`` is Definition 2's ``P(W)``;
    ``default_probability`` is Definition 5's ``P(Default)``;
    ``total_violations`` is Equation 16.
    """

    policy_name: str
    n_providers: int
    n_violated: int
    n_defaulted: int
    violation_probability: float
    default_probability: float
    total_violations: float
    outcomes: tuple[ProviderOutcome, ...]

    def violated_ids(self) -> tuple[Hashable, ...]:
        """Providers with ``w_i = 1``."""
        return tuple(o.provider_id for o in self.outcomes if o.violated)

    def defaulted_ids(self) -> tuple[Hashable, ...]:
        """Providers with ``default_i = 1``."""
        return tuple(o.provider_id for o in self.outcomes if o.defaulted)

    def __str__(self) -> str:
        return (
            f"EngineReport[{self.policy_name}]: N={self.n_providers}, "
            f"P(W)={self.violation_probability:.4f}, "
            f"P(Default)={self.default_probability:.4f}, "
            f"Violations={self.total_violations:g}"
        )


class ViolationEngine:
    """Evaluate the full violation model for one policy over one population.

    The evaluation is performed lazily on first access and cached; the
    engine is immutable with respect to its inputs, so the cache can never
    go stale.  Use :meth:`with_policy` (or :meth:`with_population`) to get a
    sibling engine for a different scenario.

    Parameters
    ----------
    policy:
        The house policy ``HP``.
    population:
        The providers (with their sensitivities and thresholds).
    sensitivities, default_model:
        Optional overrides; default to the population's own models.
    implicit_zero:
        Whether the implicit-zero-preference completion of Section 5 is
        applied (default True, as in the paper).
    """

    __slots__ = (
        "_policy",
        "_population",
        "_sensitivities",
        "_default_model",
        "_implicit_zero",
        "_outcomes",
    )

    def __init__(
        self,
        policy: HousePolicy,
        population: Population,
        *,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
    ) -> None:
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )
        if not isinstance(population, Population):
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        self._policy = policy
        self._population = population
        self._sensitivities = (
            sensitivities
            if sensitivities is not None
            else population.sensitivity_model()
        )
        self._default_model = (
            default_model
            if default_model is not None
            else population.default_model()
        )
        self._implicit_zero = bool(implicit_zero)
        self._outcomes: dict[Hashable, ProviderOutcome] | None = None

    @property
    def policy(self) -> HousePolicy:
        """The policy under evaluation."""
        return self._policy

    @property
    def population(self) -> Population:
        """The population under evaluation."""
        return self._population

    @property
    def sensitivities(self) -> SensitivityModel:
        """The sensitivity model in effect."""
        return self._sensitivities

    @property
    def default_model(self) -> DefaultModel:
        """The default-threshold model in effect."""
        return self._default_model

    def _evaluate(self) -> dict[Hashable, ProviderOutcome]:
        if self._outcomes is not None:
            return self._outcomes
        obs = active_observer()
        start = perf_counter() if obs is not None else 0.0
        outcomes: dict[Hashable, ProviderOutcome] = {}
        for provider in self._population:
            findings = find_violations(
                provider.preferences,
                self._policy,
                self._sensitivities,
                implicit_zero=self._implicit_zero,
            )
            violation = sum(f.weighted for f in findings)
            threshold = self._default_model.threshold(provider.provider_id)
            defaulted = bool(
                self._default_model.defaults(provider.provider_id, violation)
            )
            outcomes[provider.provider_id] = ProviderOutcome(
                provider_id=provider.provider_id,
                violated=bool(findings),
                violation=violation,
                threshold=threshold,
                defaulted=defaulted,
                findings=tuple(findings),
                segment=provider.segment,
            )
        self._outcomes = outcomes
        if obs is not None:
            obs.inc("engine.reference.evaluations")
            obs.observe(
                "engine.reference.evaluate_seconds", perf_counter() - start
            )
        return outcomes

    def outcome(self, provider_id: Hashable) -> ProviderOutcome:
        """The cached outcome for one provider."""
        outcomes = self._evaluate()
        try:
            return outcomes[provider_id]
        except KeyError:
            raise UnknownProviderError(provider_id) from None

    def outcomes(self) -> tuple[ProviderOutcome, ...]:
        """All outcomes, in population order."""
        evaluated = self._evaluate()
        return tuple(evaluated[pid] for pid in self._population.ids())

    def report(self) -> EngineReport:
        """The aggregate :class:`EngineReport` for this evaluation."""
        outcomes = self.outcomes()
        n = len(outcomes)
        n_violated = sum(1 for o in outcomes if o.violated)
        n_defaulted = sum(1 for o in outcomes if o.defaulted)
        return EngineReport(
            policy_name=self._policy.name,
            n_providers=n,
            n_violated=n_violated,
            n_defaulted=n_defaulted,
            violation_probability=(n_violated / n) if n else 0.0,
            default_probability=(n_defaulted / n) if n else 0.0,
            total_violations=sum(o.violation for o in outcomes),
            outcomes=outcomes,
        )

    def certify(self, alpha: float, *, early_exit: bool = False) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate under the current policy.

        The certificate is derived from this engine's own evaluation state
        — the same outcomes :meth:`report` aggregates — so it always
        reflects the ``sensitivities``/``default_model`` overrides and
        ``implicit_zero`` setting in effect.  (``w_i`` itself is purely
        geometric and never depends on the weight models, but deriving
        both views from one evaluation keeps them consistent by
        construction and avoids a second pass over the population.)
        Contrast :meth:`with_population`, which deliberately *re-derives*
        the models from the new population, and the free function
        :func:`~repro.core.ppdb.certify_alpha_ppdb`, which recomputes the
        indicators from raw preferences.

        With ``early_exit=True`` and no evaluation cached yet, the
        provider walk stops as soon as the ``alpha x N`` violation budget
        is exceeded; the resulting certificate is marked non-exhaustive
        (see :class:`~repro.core.ppdb.PPDBCertificate`).  When outcomes
        are already cached the flags are free and the exact certificate is
        returned regardless.
        """
        if early_exit and self._outcomes is None:
            return certify_alpha_ppdb(
                self._population,
                self._policy,
                alpha,
                implicit_zero=self._implicit_zero,
                early_exit=True,
            )
        alpha = check_probability(alpha, "alpha")
        outcomes = self.outcomes()
        violated = tuple(o.provider_id for o in outcomes if o.violated)
        n = len(outcomes)
        p_w = len(violated) / n if n else 0.0
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=self._policy.name,
        )

    def with_policy(self, policy: HousePolicy) -> "ViolationEngine":
        """A sibling engine evaluating *policy* over the same population."""
        return ViolationEngine(
            policy,
            self._population,
            sensitivities=self._sensitivities,
            default_model=self._default_model,
            implicit_zero=self._implicit_zero,
        )

    def with_population(self, population: Population) -> "ViolationEngine":
        """A sibling engine evaluating the same policy over *population*.

        The sensitivity and default models are re-derived from the new
        population (per-provider data must match the providers evaluated)
        — any overrides passed to this engine are deliberately dropped,
        because they were keyed to the old population's providers.  This
        is the opposite convention from :meth:`certify`, which sticks with
        the models in effect on this engine.
        """
        return ViolationEngine(
            self._policy,
            population,
            implicit_zero=self._implicit_zero,
        )

"""Unit tests for expansion sweeps (the Section 9 engine)."""

from __future__ import annotations

import pytest

from repro.core import Dimension, ViolationEngine
from repro.simulation import WideningStep, run_expansion_sweep


@pytest.fixture(scope="module")
def sweep(request):
    from repro.datasets import healthcare_scenario

    scenario = healthcare_scenario(80, seed=5)
    return run_expansion_sweep(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        max_steps=5,
        per_provider_utility=scenario.per_provider_utility,
        extra_utility_per_step=scenario.extra_utility_per_step,
        scenario_name="test-sweep",
    )


class TestSweepStructure:
    def test_row_count(self, sweep):
        assert len(sweep.rows) == 6

    def test_step_zero_is_clean_baseline(self, sweep):
        base = sweep.rows[0]
        assert base.step == 0
        assert base.violation_probability == 0.0
        assert base.default_probability == 0.0
        assert base.n_future == base.n_current
        assert base.utility_future == base.utility_current

    def test_n_current_constant(self, sweep):
        assert len({row.n_current for row in sweep.rows}) == 1

    def test_extra_utility_linear_in_step(self, sweep):
        for row in sweep.rows:
            assert row.extra_utility == pytest.approx(
                sweep.extra_utility_per_step * row.step
            )

    def test_policy_names_carry_step(self, sweep):
        assert all(
            row.policy_name.endswith(f"+{row.step}") for row in sweep.rows
        )


class TestSweepMonotonicity:
    def test_violation_probability_non_decreasing(self, sweep):
        probabilities = [row.violation_probability for row in sweep.rows]
        assert probabilities == sorted(probabilities)

    def test_default_probability_non_decreasing(self, sweep):
        probabilities = [row.default_probability for row in sweep.rows]
        assert probabilities == sorted(probabilities)

    def test_total_violations_non_decreasing(self, sweep):
        severities = [row.total_violations for row in sweep.rows]
        assert severities == sorted(severities)

    def test_n_future_non_increasing(self, sweep):
        futures = [row.n_future for row in sweep.rows]
        assert futures == sorted(futures, reverse=True)

    def test_break_even_non_decreasing(self, sweep):
        thresholds = [row.break_even_extra_utility for row in sweep.rows]
        assert thresholds == sorted(thresholds)


class TestSweepQueries:
    def test_best_step_maximizes_future_utility(self, sweep):
        best = sweep.best_step()
        assert best.utility_future == max(
            row.utility_future for row in sweep.rows
        )

    def test_crossover_is_first_detrimental_step(self, sweep):
        crossover = sweep.crossover_step()
        base = sweep.rows[0].utility_current
        if crossover is not None:
            for row in sweep.rows[1:]:
                if row.step < crossover:
                    assert row.utility_future >= base
                if row.step == crossover:
                    assert row.utility_future < base

    def test_default_counts_match_rows(self, sweep):
        counts = sweep.default_counts()
        for row, count in zip(sweep.rows, counts):
            assert count == row.n_current - row.n_future

    def test_series_extraction(self, sweep):
        series = sweep.series("violation_probability")
        assert series == tuple(
            row.violation_probability for row in sweep.rows
        )

    def test_justified_matches_breakeven(self, sweep):
        for row in sweep.rows:
            assert row.justified == (
                row.extra_utility > row.break_even_extra_utility
            )


class TestSweepShape:
    def test_rise_then_fall(self, sweep):
        """The paper's E4 claim: utility rises before it falls."""
        utilities = [row.utility_future for row in sweep.rows]
        peak_index = utilities.index(max(utilities))
        assert peak_index >= 1  # widening pays at first...
        assert utilities[-1] < max(utilities)  # ...but not forever

    def test_crossover_exists(self, sweep):
        assert sweep.crossover_step() is not None


class TestSweepOptions:
    def test_custom_step(self, small_crm):
        sweep = run_expansion_sweep(
            small_crm.population,
            small_crm.policy,
            small_crm.taxonomy,
            step=WideningStep.along(Dimension.RETENTION),
            max_steps=2,
        )
        assert len(sweep.rows) == 3

    def test_sweep_does_not_mutate_population(self, small_crm):
        before = ViolationEngine(
            small_crm.policy, small_crm.population
        ).report()
        run_expansion_sweep(
            small_crm.population,
            small_crm.policy,
            small_crm.taxonomy,
            max_steps=3,
        )
        after = ViolationEngine(small_crm.policy, small_crm.population).report()
        assert before.total_violations == after.total_violations

    def test_zero_steps(self, small_crm):
        sweep = run_expansion_sweep(
            small_crm.population,
            small_crm.policy,
            small_crm.taxonomy,
            max_steps=0,
        )
        assert len(sweep.rows) == 1

"""Supervised, persistent worker pool: the service-grade parallel path.

:class:`SupervisedExecutor` is the fault-tolerant counterpart of the
fail-fast :class:`~repro.perf.parallel.ShardExecutor`.  Both fan
``(policy, shard)`` tasks over forked workers attached zero-copy to one
shared-memory export of the compiled population and merge shard results
bit-for-bit with the serial engine; they differ in what happens when a
worker misbehaves.  The bare executor treats one dead worker as fatal
(``ParallelExecutionError``, CLI ``PVL907``).  The supervisor instead
manages each worker over a dedicated pipe and *keeps the sweep alive*:

* **Heartbeats** — every worker runs a daemon thread that pings its pipe
  on a fixed interval; the parent tracks the age of the latest beat
  (``supervisor.heartbeat_age_seconds`` gauge).
* **Stall watchdog** — a shard attempt that exceeds ``shard_timeout``
  wall-clock seconds (a wedged kernel, or the chaos suite's ``stall``
  fault, which makes the worker SIGSTOP itself for real) is ended by
  SIGKILLing the worker (``supervisor.watchdog_kills``).
* **Respawn** — a dead worker (crash, OOM kill, watchdog, scripted
  ``kill`` fault) is replaced by a fresh fork, up to ``max_respawns``
  for the life of the pool (``supervisor.restarts``).  The bound keeps a
  deterministic crash-on-first-task fault from turning the supervisor
  into a fork bomb.
* **Shard retry** — the task the worker was holding is re-dispatched
  with bounded exponential backoff (``retry_base_delay * 2**(attempt-1)``,
  the same shape as the storage layer's ``with_locked_retry``,
  deterministic via the injectable *sleep*), up to ``max_shard_retries``
  retries (``supervisor.shard_retries``).
* **Graceful degradation** — a shard that exhausts its retries (or any
  shard left when the respawn budget runs out) is evaluated *serially in
  the parent* over the same shared arrays and the same kernels, so the
  sweep completes with bit-for-bit-correct numbers plus a
  :class:`DegradationRecord` (``supervisor.degraded_shards``) instead of
  dying with PVL907.

The pool is **warm**: workers, their shared-memory attachment, and their
per-shard engine caches persist across ``evaluate`` / ``certify`` /
``evaluate_policies`` calls, amortizing the fork+attach cost over
repeated sweeps (see ``benchmarks/test_scaling.py``).

Determinism and parity
----------------------
Shards are contiguous provider-row ranges evaluated by the same
:class:`~repro.perf.batch.BatchViolationEngine` kernels whether they run
in a worker, in a retried worker, or serially in the parent after
degradation — per-provider sums perform identical floating-point
operations in identical order, so merged results are bit-for-bit equal
to serial evaluation no matter which failures occurred along the way
(``tests/perf/test_supervisor_chaos.py``).  Early-exit certification
keeps the bare executor's contract: the verdict always matches the
serial engine; the partial violated set of a non-exhaustive certificate
may differ (a retried shard can observe the shared "already failed"
flag earlier than its first attempt would have).

Chaos integration
-----------------
``worker_faults`` builds a fresh :class:`~repro.resilience.faults.FaultPlan`
inside each worker after the fork, seeded ``fault_seed + spawn_index``
so schedules differ per worker and per respawn.  ``fault_worker_indices``
restricts the plan to chosen spawn indices (0-based, counting every
spawn including respawns), letting a test script e.g. "exactly the
first worker dies once".  At the shared ``parallel.task`` site a
``kill`` fault SIGKILLs the worker for real and a ``stall`` fault
SIGSTOPs it — the supervisor must recover through the same signal-level
machinery a production failure would exercise.

Journal integration
-------------------
:meth:`SupervisedExecutor.evaluate_arrays_sharded` exposes shard
completions (including degraded ones) to a caller-provided callback and
accepts previously-journaled shard results keyed by ``(lo, hi)``, which
is how ``--journal --workers N`` parallel sweeps checkpoint shard-by-
shard and resume bit-for-bit (see
:func:`repro.resilience.resume.resumable_sweep`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from multiprocessing.connection import Connection, wait as _connection_wait
from typing import Any

import numpy as np

from .._validation import check_probability
from ..core.default import DefaultModel
from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import SensitivityModel
from ..exceptions import (
    ParallelExecutionError,
    ProcessKilled,
    ProcessStalled,
    ValidationError,
)
from ..obs import active_observer, observed
from .batch import (
    BatchReport,
    ColumnPlan,
    PolicyFingerprint,
    assemble_report,
    plan_delta,
    policy_columns,
    policy_fingerprint,
)
from .compiled import CompiledPopulation
from .parallel import (
    TASK_FAULT_SITE,
    _certify_walk,
    _shard_engine,
    _ShardView,
    _static_certificate,
    resolve_workers,
)
from .shards import shard_bounds
from .shm import ArrayLayout, SharedArrayPack, attach_arrays

#: Default seconds between worker heartbeat pings.
HEARTBEAT_INTERVAL = 0.2

#: Default wall-clock seconds one shard attempt may take before the
#: watchdog declares the worker wedged and SIGKILLs it.
SHARD_TIMEOUT = 120.0

#: Default retries per shard before it degrades to serial evaluation.
MAX_SHARD_RETRIES = 2

#: Default worker respawns over the life of the pool (the fork-bomb cap).
MAX_RESPAWNS = 8

#: Default first-retry backoff delay; doubles per subsequent retry.
RETRY_BASE_DELAY = 0.05


@dataclass(frozen=True, slots=True)
class DegradationRecord:
    """One shard that fell back to serial evaluation in the parent.

    Recorded (and counted on ``supervisor.degraded_shards``) when a shard
    exhausted its retries or outlived the pool's respawn budget.  The
    shard's numbers in the merged result are still exact — degradation
    changes *where* the arithmetic ran, never its outcome.
    """

    #: The ``(lo, hi)`` provider-row range that degraded.
    shard: tuple[int, int]
    #: Name of the policy being evaluated when the shard degraded.
    policy_name: str
    #: Task kind: ``"eval"`` or ``"certify"``.
    kind: str
    #: Failed worker attempts before the serial fallback.
    attempts: int
    #: Human-readable cause of the final failure.
    reason: str


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


def _visit_supervised_site(plan: Any) -> None:
    """Visit the shared task fault site, making scripted faults real.

    ``kill`` becomes an actual SIGKILL and ``stall`` an actual SIGSTOP —
    the parent must observe a dead pipe or a ceased heartbeat, not a
    picklable exception, so chaos tests exercise the same recovery paths
    a genuine crash or hang would.
    """
    if plan is None:
        return
    try:
        plan.check(TASK_FAULT_SITE)
    except ProcessKilled:
        os.kill(os.getpid(), signal.SIGKILL)
    except ProcessStalled:
        os.kill(os.getpid(), signal.SIGSTOP)


def _worker_main(
    conn: Connection,
    spawn_index: int,
    shm_name: str,
    layout: ArrayLayout,
    meta: dict[str, Any],
    implicit_zero: bool,
    flag: Any,
    fault_specs: tuple[Any, ...],
    fault_seed: int,
    heartbeat_interval: float,
) -> None:
    """One supervised worker: attach, heartbeat, serve tasks until told."""
    try:
        segment, arrays = attach_arrays(shm_name, layout)
    except FileNotFoundError:
        try:
            conn.send(("fatal", f"segment {shm_name!r} has vanished"))
        except OSError:
            pass
        return
    plan = None
    if fault_specs:
        # A fresh plan built *after* the fork is owned by this worker,
        # so it is armed — unlike any plan inherited from the parent
        # (see FaultPlan's fork awareness).  The per-spawn seed keeps
        # respawned workers on their own schedules.
        from ..resilience.faults import FaultPlan

        plan = FaultPlan(fault_specs, seed=fault_seed)
    state: dict[str, Any] = {
        "segment": segment,
        "arrays": arrays,
        "meta": meta,
        "implicit_zero": bool(implicit_zero),
        "flag": flag,
        "engines": {},
        "plan": plan,
    }
    send_lock = threading.Lock()
    stop_beating = threading.Event()

    def _heartbeat() -> None:
        while not stop_beating.wait(heartbeat_interval):
            try:
                with send_lock:
                    conn.send(("hb",))
            except OSError:  # parent gone; main loop will notice too
                return

    threading.Thread(
        target=_heartbeat, name=f"hb-{spawn_index}", daemon=True
    ).start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message[0] == "stop":
                return
            _, task_id, kind, payload = message
            try:
                _visit_supervised_site(plan)
                if kind == "eval_full":
                    result = _eval_full_shard(state, *payload)
                elif kind == "eval_delta":
                    result = _eval_delta_shard(state, *payload)
                else:
                    result = _certify_shard(state, *payload)
            except BaseException as exc:
                try:
                    with send_lock:
                        conn.send(
                            ("err", task_id, f"{type(exc).__name__}: {exc}")
                        )
                except OSError:
                    return
                continue
            try:
                with send_lock:
                    conn.send(("ok", task_id, result))
            except OSError:
                return
    finally:
        stop_beating.set()
        segment.close()


def _eval_full_shard(
    state: dict[str, Any],
    fingerprint: PolicyFingerprint,
    columns: Mapping[tuple[str, str], tuple],
    lo: int,
    hi: int,
    collect_obs: bool,
) -> tuple[int, np.ndarray, np.ndarray, int, dict[str, Any] | None]:
    """A full-decomposition eval task: the delta protocol's base form.

    The worker's shard engine still applies its *own* resident-base
    delta internally (``evaluate_decomposed``), so a "full" wire task on
    a warm worker usually pays only the changed columns; *rescored*
    reports what was actually recomputed.
    """
    engine = _shard_engine(state, lo, hi)
    if collect_obs:
        with observed() as obs:
            violations, counts, rescored = engine.evaluate_decomposed(
                fingerprint, columns
            )
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        violations, counts, rescored = engine.evaluate_decomposed(
            fingerprint, columns
        )
        snapshot = None
    return lo, violations, counts, rescored, snapshot


def _eval_delta_shard(
    state: dict[str, Any],
    base_fingerprint: PolicyFingerprint,
    fingerprint: PolicyFingerprint,
    changed: Mapping[tuple[str, str], tuple | None],
    lo: int,
    hi: int,
    collect_obs: bool,
) -> tuple[
    int, np.ndarray | None, np.ndarray | None, int, dict[str, Any] | None
]:
    """A delta eval task: only the changed columns cross the pipe.

    Returns the miss sentinel ``(lo, None, None, -1, snapshot)`` when
    this worker no longer holds *base_fingerprint* for the shard (its
    engine cache evicted it); the parent then replays a full task.
    """
    engine = _shard_engine(state, lo, hi)
    if collect_obs:
        with observed() as obs:
            patched = engine.apply_column_delta(
                base_fingerprint, fingerprint, changed
            )
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        patched = engine.apply_column_delta(
            base_fingerprint, fingerprint, changed
        )
        snapshot = None
    if patched is None:
        return lo, None, None, -1, snapshot
    violations, counts, rescored = patched
    return lo, violations, counts, rescored, snapshot


def _certify_shard(
    state: dict[str, Any],
    policy: HousePolicy,
    lo: int,
    hi: int,
    budget: float,
    collect_obs: bool,
) -> tuple[int, np.ndarray, bool, dict[str, Any] | None]:
    if collect_obs:
        with observed() as obs:
            counts, exhausted = _certify_walk(state, policy, lo, hi, budget)
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        counts, exhausted = _certify_walk(state, policy, lo, hi, budget)
        snapshot = None
    return lo, counts, exhausted, snapshot


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class _Task:
    """One dispatchable ``(policy, shard)`` unit of work.

    Eval tasks carry the policy's decomposition (*fingerprint*,
    *columns*) plus, when the executor's column plan applies, the delta
    against it (*base_fingerprint*, *changed*).  The wire form — compact
    delta vs full decomposition — is decided per worker at dispatch
    time, so a retried task can go out as a delta to one worker and as
    a full task to another.  *force_full* is set after a worker reports
    a delta miss: the replay must ship the full decomposition.
    """

    id: int
    kind: str  # "eval" | "certify"
    policy: HousePolicy
    lo: int
    hi: int
    collect: bool
    budget: float | None = None
    attempts: int = 0
    fingerprint: PolicyFingerprint | None = None
    columns: dict[tuple[str, str], tuple] | None = None
    base_fingerprint: PolicyFingerprint | None = None
    changed: dict[tuple[str, str], tuple | None] | None = None
    force_full: bool = False


@dataclass(slots=True)
class _WorkerHandle:
    """Parent-side bookkeeping for one live worker process."""

    spawn_index: int
    process: Any
    conn: Connection
    task: _Task | None = None
    dispatched_at: float = 0.0
    last_heartbeat: float = 0.0
    # Latest evaluated policy fingerprint per (lo, hi) shard this worker
    # has served: the dispatcher's base-affinity map.  A fresh handle
    # (spawn or respawn) starts empty, so a respawned worker always gets
    # full tasks first — the protocol's base replay.
    shard_bases: dict[tuple[int, int], PolicyFingerprint] = field(
        default_factory=dict
    )


#: A completion callback: receives the task and its raw result tuple in
#: completion order (degraded shards included).
_OnResult = Callable[[_Task, tuple], None]


class SupervisedExecutor:
    """A warm, supervised worker pool over one shared-memory compilation.

    Mirrors :class:`~repro.perf.parallel.ShardExecutor`'s public surface
    (``evaluate`` / ``evaluate_policies`` / ``evaluate_arrays`` /
    ``certify`` / ``report`` plus the identity properties), so it slots
    behind the same ``workers=N`` execution policy
    (:func:`~repro.perf.parallel.make_batch_engine`); the failure
    semantics differ as described in the module docstring.  The executor
    owns its shared-memory block and its worker processes for the life
    of the pool; always :meth:`close` it (or use ``with``).

    Parameters
    ----------
    population, workers, shards, sensitivities, default_model, \
implicit_zero, max_cached_reports, column_delta:
        As for :class:`~repro.perf.parallel.ShardExecutor`.
        *column_delta* enables the worker delta protocol: the parent
        tracks which policy each worker last evaluated per shard and
        ships only changed ``(attribute, purpose)`` columns when the
        worker holds the base, with base-affinity dispatch keeping
        workers on the shards they are warm for.
    worker_faults, fault_seed, fault_worker_indices:
        Chaos hook: fault specs for a fresh per-worker plan seeded
        ``fault_seed + spawn_index``; *fault_worker_indices* (an iterable
        of 0-based spawn indices, respawns included) restricts which
        spawns receive the plan — ``None`` means all of them.
    heartbeat_interval:
        Seconds between worker heartbeat pings (also the parent's idle
        poll interval).
    shard_timeout:
        Watchdog limit: wall-clock seconds one shard attempt may run
        before its worker is declared wedged and SIGKILLed.
    max_shard_retries:
        Worker retries per shard before the shard degrades to serial
        evaluation in the parent.
    max_respawns:
        Worker respawns over the pool's lifetime.  Once exhausted,
        remaining shards of a sweep degrade rather than fork further.
    retry_base_delay:
        First-retry backoff delay in seconds; retry *k* waits
        ``retry_base_delay * 2**(k-1)``.
    sleep, clock:
        Injectable time sources (the backoff sleeper and the monotonic
        clock driving the watchdog and heartbeat-age gauge), so retry
        schedules are deterministic under test.
    """

    def __init__(
        self,
        population: Population | CompiledPopulation,
        *,
        workers: int = 0,
        shards: int | None = None,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
        max_cached_reports: int = 128,
        column_delta: bool = True,
        worker_faults: Iterable[Any] = (),
        fault_seed: int = 0,
        fault_worker_indices: Iterable[int] | None = None,
        heartbeat_interval: float = HEARTBEAT_INTERVAL,
        shard_timeout: float = SHARD_TIMEOUT,
        max_shard_retries: int = MAX_SHARD_RETRIES,
        max_respawns: int = MAX_RESPAWNS,
        retry_base_delay: float = RETRY_BASE_DELAY,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        count = resolve_workers(workers)
        if isinstance(population, Population):
            compiled = CompiledPopulation(
                population,
                sensitivities=sensitivities,
                default_model=default_model,
            )
        elif isinstance(population, CompiledPopulation):
            if sensitivities is not None or default_model is not None:
                raise ValidationError(
                    "model overrides must be given when compiling, not when "
                    "wrapping an already-compiled population"
                )
            compiled = population
        else:
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        if shards is not None and shards < 1:
            raise ValidationError("shards must be >= 1")
        if max_cached_reports < 1:
            raise ValidationError("max_cached_reports must be >= 1")
        if heartbeat_interval <= 0:
            raise ValidationError("heartbeat_interval must be > 0")
        if shard_timeout <= 0:
            raise ValidationError("shard_timeout must be > 0")
        if max_shard_retries < 0:
            raise ValidationError("max_shard_retries must be >= 0")
        if max_respawns < 0:
            raise ValidationError("max_respawns must be >= 0")
        if retry_base_delay < 0:
            raise ValidationError("retry_base_delay must be >= 0")
        self._compiled = compiled
        self._implicit_zero = bool(implicit_zero)
        self._workers = count
        self._bounds = shard_bounds(
            len(compiled), shards if shards is not None else count
        )
        meta, arrays = compiled.shared_state()
        self._meta = meta
        # The parent keeps its own handle on the exported arrays (they
        # alias the compilation, so this costs no copies): degradation
        # evaluates shards right here with the same kernels the workers
        # run, which is what keeps degraded sweeps bit-for-bit.
        self._arrays = arrays
        self._pack = SharedArrayPack(arrays)
        # fingerprint -> (report | None, violations, counts): arrays are
        # always cached; the merged report is assembled lazily the first
        # time a report-shaped caller asks for it.
        self._cache: dict[
            PolicyFingerprint,
            tuple[BatchReport | None, np.ndarray, np.ndarray],
        ] = {}
        self._max_cached = int(max_cached_reports)
        self._column_delta = bool(column_delta)
        self._plan: ColumnPlan | None = None
        self._worker_faults = tuple(worker_faults)
        self._fault_seed = int(fault_seed)
        self._fault_worker_indices = (
            None
            if fault_worker_indices is None
            else frozenset(int(i) for i in fault_worker_indices)
        )
        self._heartbeat_interval = float(heartbeat_interval)
        self._shard_timeout = float(shard_timeout)
        self._max_shard_retries = int(max_shard_retries)
        self._max_respawns = int(max_respawns)
        self._retry_base_delay = float(retry_base_delay)
        self._sleep = sleep
        self._clock = clock
        self._live: list[_WorkerHandle] = []
        self._serial_engines: dict[tuple[int, int], Any] = {}
        self._degradations: list[DegradationRecord] = []
        self._restarts = 0
        self._next_spawn = 0
        self._task_ids = itertools.count(1)
        self._closed = False
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else None
        self._context = multiprocessing.get_context(start_method)
        self._flag = self._context.Value("i", 0)
        try:
            for _ in range(count):
                self._spawn_worker()
        except Exception:
            self.close()
            raise
        obs = active_observer()
        if obs is not None:
            obs.set_gauge("supervisor.workers", count)
            obs.set_gauge("supervisor.shards", len(self._bounds))
            obs.set_gauge("supervisor.shm_bytes", self._pack.nbytes)

    # -- identity -----------------------------------------------------------

    @property
    def compiled(self) -> CompiledPopulation:
        """The compiled population backing the shared block."""
        return self._compiled

    @property
    def population(self) -> Population:
        """The underlying population."""
        return self._compiled.population

    @property
    def implicit_zero(self) -> bool:
        """Whether the implicit-zero completion is applied."""
        return self._implicit_zero

    @property
    def workers(self) -> int:
        """The target worker-process count."""
        return self._workers

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """The ``(lo, hi)`` provider-row range of every shard."""
        return tuple(self._bounds)

    @property
    def segment_name(self) -> str:
        """The shared-memory segment's name (for leak diagnostics)."""
        return self._pack.name

    @property
    def cached_policies(self) -> int:
        """Number of memoised merged reports."""
        return len(self._cache)

    # -- supervision state --------------------------------------------------

    @property
    def restarts(self) -> int:
        """Workers respawned after a death, over the pool's lifetime."""
        return self._restarts

    @property
    def degradations(self) -> tuple[DegradationRecord, ...]:
        """Every shard that fell back to serial evaluation so far."""
        return tuple(self._degradations)

    @property
    def live_workers(self) -> int:
        """Worker processes currently alive."""
        return len(self._live)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink the shared block.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for handle in self._live:
            try:
                handle.conn.send(("stop",))
            except OSError:
                pass
        for handle in self._live:
            handle.process.join(timeout=2.0)
            if handle.process.is_alive():
                # Wedged (or SIGSTOPped by a stall fault): end it hard.
                self._kill_process(handle)
                handle.process.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._live.clear()
        self._pack.close()

    def __enter__(self) -> "SupervisedExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, policy: HousePolicy) -> BatchReport:
        """The merged :class:`BatchReport` for *policy* (cached by content)."""
        self._check_policy(policy)
        fingerprint = policy_fingerprint(policy)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            obs = active_observer()
            if obs is not None:
                obs.inc("supervisor.cache_hits")
            report = cached[0]
            if report is None or report.policy_name != policy.name:
                # Assemble (or re-label) from the cached arrays: the
                # serial engine reports the *requested* policy's name on
                # content hits, so renamed same-fingerprint policies —
                # e.g. a widening path past saturation — match it here.
                report = self._assemble(policy.name, cached[1], cached[2])
                self._cache[fingerprint] = (report, cached[1], cached[2])
            return report
        violations, counts = self._fan_out(policy)
        report = self._assemble(policy.name, violations, counts)
        self._remember(fingerprint, report, violations, counts)
        return report

    def report(self, policy: HousePolicy) -> BatchReport:
        """Alias of :meth:`evaluate` (mirrors the serial engine)."""
        return self.evaluate(policy)

    def evaluate_arrays(
        self, policy: HousePolicy
    ) -> tuple[np.ndarray, np.ndarray]:
        """Raw merged ``(violations, counts)`` arrays for *policy*.

        Served parent-side from the executor cache on repeats, like the
        serial engine; the returned arrays are cached state and must not
        be mutated.
        """
        self._check_policy(policy)
        fingerprint = policy_fingerprint(policy)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            obs = active_observer()
            if obs is not None:
                obs.inc("supervisor.cache_hits")
            return cached[1], cached[2]
        violations, counts = self._fan_out(policy)
        self._remember(fingerprint, None, violations, counts)
        return violations, counts

    def evaluate_arrays_sharded(
        self,
        policy: HousePolicy,
        *,
        precomputed: Mapping[tuple[int, int], tuple] | None = None,
        on_shard: Callable[[int, int, np.ndarray, np.ndarray], None] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`evaluate_arrays` with shard-level replay and callbacks.

        *precomputed* maps ``(lo, hi)`` to already-known
        ``(violations, counts)`` sequences for that shard (a resuming
        journal's restored steps); matching shards are not dispatched.
        *on_shard* is called as ``on_shard(lo, hi, violations, counts)``
        for every **newly computed** shard in completion order —
        degraded shards included — which is where a journaling caller
        checkpoints.  Shards whose journaled bounds no longer match the
        current shard layout are simply recomputed; results are
        identical either way, merging stays deterministic.
        """
        self._check_policy(policy)
        restored = dict(precomputed or {})
        parts: list[tuple] = []
        tasks: list[_Task] = []
        decomposition = self._decompose(policy)
        for lo, hi in self._bounds:
            known = restored.get((lo, hi))
            if known is not None:
                violations = np.asarray(known[0], dtype=np.float64)
                counts = np.asarray(known[1], dtype=np.float64)
                parts.append((lo, violations, counts, None))
                continue
            tasks.append(
                self._make_task(
                    "eval", policy, lo, hi, decomposition=decomposition
                )
            )
        on_result: _OnResult | None = None
        if on_shard is not None:
            by_id = {task.id: task for task in tasks}
            def on_result(task: _Task, result: tuple) -> None:
                shard = by_id[task.id]
                on_shard(shard.lo, shard.hi, result[1], result[2])
        done = self._execute(tasks, on_result)
        parts.extend(done[task.id] for task in tasks)
        return self._merge_parts(parts)

    def evaluate_policies(
        self, policies: Iterable[HousePolicy]
    ) -> list[BatchReport]:
        """Evaluate a policy sweep with cross-policy pipelining.

        All uncached ``(policy, shard)`` tasks enter one scheduling pass,
        so warm workers flow straight from one policy's shards into the
        next's; merged reports come back in input order.
        """
        policies = list(policies)
        for policy in policies:
            self._check_policy(policy)
        pending_tasks: dict[int, list[_Task]] = {}
        all_tasks: list[_Task] = []
        for index, policy in enumerate(policies):
            if policy_fingerprint(policy) in self._cache:
                continue
            decomposition = self._decompose(policy)
            shard_tasks = [
                self._make_task(
                    "eval", policy, lo, hi, decomposition=decomposition
                )
                for lo, hi in self._bounds
            ]
            pending_tasks[index] = shard_tasks
            all_tasks.extend(shard_tasks)
        done = self._execute(all_tasks, None)
        reports: list[BatchReport] = []
        for index, policy in enumerate(policies):
            fingerprint = policy_fingerprint(policy)
            cached = self._cache.get(fingerprint)
            if cached is not None and index not in pending_tasks:
                report = cached[0]
                if report is None:
                    report = self._assemble(policy.name, cached[1], cached[2])
                    self._cache[fingerprint] = (report, cached[1], cached[2])
                reports.append(report)
                continue
            parts = [done[task.id] for task in pending_tasks[index]]
            violations, counts = self._merge_parts(parts)
            report = self._assemble(policy.name, violations, counts)
            self._remember(fingerprint, report, violations, counts)
            reports.append(report)
        return reports

    def certify(
        self,
        policy: HousePolicy,
        alpha: float,
        *,
        early_exit: bool = False,
        static: bool = False,
    ) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate under *policy*.

        Semantics match :meth:`ShardExecutor.certify
        <repro.perf.parallel.ShardExecutor.certify>` — exact by default,
        shared-flag early exit on request, parent-side static path —
        except that worker failures degrade instead of raising.  A
        degraded early-exit shard walks its columns in the parent under
        the same shared flag, so verdicts still always match the serial
        engine.
        """
        self._check_policy(policy)
        if static:
            if early_exit:
                raise ValidationError(
                    "static certification never evaluates, so early_exit "
                    "does not apply; pass one or the other"
                )
            return _static_certificate(
                self._compiled,
                policy,
                alpha,
                implicit_zero=self._implicit_zero,
                obs_counter="supervisor.static_certifications",
            )
        alpha = check_probability(alpha, "alpha")
        n = len(self._compiled)
        if n == 0:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=0.0,
                satisfied=True,
                n_providers=0,
                violated_providers=(),
                policy_name=policy.name,
            )
        fingerprint = policy_fingerprint(policy)
        if early_exit and fingerprint not in self._cache:
            return self._certify_early_exit(policy, alpha, n)
        report = self.evaluate(policy)
        violated = report.violated_ids()
        p_w = len(violated) / n
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
        )

    def assemble(
        self, policy_name: str, violations: np.ndarray, counts: np.ndarray
    ) -> BatchReport:
        """A full :class:`BatchReport` from merged per-provider arrays.

        Pairs with :meth:`evaluate_arrays_sharded`: a journaling caller
        restores/merges shard arrays and assembles the same report an
        uninterrupted :meth:`evaluate` would have produced.
        """
        return self._assemble(
            policy_name,
            np.asarray(violations, dtype=np.float64),
            np.asarray(counts, dtype=np.float64),
        )

    def reference_engine(self, policy: HousePolicy) -> ViolationEngine:
        """The reference oracle for *policy*: same inputs, Python loop."""
        return ViolationEngine(
            policy,
            self._compiled.population,
            sensitivities=self._compiled.sensitivities,
            default_model=self._compiled.default_model,
            implicit_zero=self._implicit_zero,
        )

    # -- scheduling ---------------------------------------------------------

    def _certify_early_exit(
        self, policy: HousePolicy, alpha: float, n: int
    ) -> PPDBCertificate:
        with self._flag.get_lock():
            self._flag.value = 0
        budget = alpha * n
        tasks = [
            self._make_task("certify", policy, lo, hi, budget=budget)
            for lo, hi in self._bounds
        ]
        done = self._execute(tasks, None)
        parts = sorted(
            (done[task.id] for task in tasks), key=lambda part: part[0]
        )
        counts = (
            np.concatenate([part[1] for part in parts])
            if parts
            else np.zeros(0, dtype=np.float64)
        )
        exhaustive = all(part[2] for part in parts)
        violated = tuple(
            pid
            for pid, count in zip(self._meta["ids"], counts)
            if count > 0
        )
        p_w = len(violated) / n
        if exhaustive:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=p_w,
                satisfied=p_w <= alpha,
                n_providers=n,
                violated_providers=violated,
                policy_name=policy.name,
            )
        obs = active_observer()
        if obs is not None:
            obs.inc("supervisor.certify_early_exits")
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=False,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
            exhaustive=False,
        )

    def _fan_out(self, policy: HousePolicy) -> tuple[np.ndarray, np.ndarray]:
        decomposition = self._decompose(policy)
        tasks = [
            self._make_task(
                "eval", policy, lo, hi, decomposition=decomposition
            )
            for lo, hi in self._bounds
        ]
        done = self._execute(tasks, None)
        return self._merge_parts(done[task.id] for task in tasks)

    @property
    def plan(self) -> ColumnPlan | None:
        """The current column plan (None before the first eval fan-out)."""
        return self._plan

    def adopt_plan(self, plan: ColumnPlan | None) -> None:
        """Warm-start the delta protocol from another executor's plan.

        Called by the incremental engine when a structural mutation
        rebuilds the worker pool: the plan is population-independent
        (fingerprint + column decomposition only), so the next policy's
        delta is computed against it immediately.  Fresh workers hold no
        base, so their first tasks go out full regardless — adopting a
        plan never risks correctness, it only skips the parent-side
        plan warm-up round.  A no-op when the protocol is disabled.
        """
        if self._column_delta:
            self._plan = plan

    def _decompose(
        self, policy: HousePolicy
    ) -> tuple[
        PolicyFingerprint,
        dict[tuple[str, str], tuple],
        PolicyFingerprint | None,
        dict[tuple[str, str], tuple | None] | None,
    ]:
        """Per-policy delta bookkeeping, computed once per fan-out.

        Returns ``(fingerprint, columns, base_fingerprint, changed)``
        and advances the executor's column plan, so consecutive policies
        chain deltas even while earlier fan-outs are still in flight
        (``evaluate_policies`` pipelining).  ``base_fingerprint`` /
        ``changed`` are ``None`` when no plan applies (protocol off,
        first policy, or the delta would touch every column).
        """
        fingerprint = policy_fingerprint(policy)
        columns = policy_columns(policy)
        base_fingerprint: PolicyFingerprint | None = None
        changed: dict[tuple[str, str], tuple | None] | None = None
        if self._column_delta:
            delta = plan_delta(self._plan, columns)
            if delta is not None and self._plan is not None:
                base_fingerprint = self._plan.fingerprint
                changed = delta
            if self._plan is None or self._plan.fingerprint != fingerprint:
                self._plan = ColumnPlan(
                    fingerprint=fingerprint, columns=dict(columns)
                )
        return fingerprint, dict(columns), base_fingerprint, changed

    def _make_task(
        self,
        kind: str,
        policy: HousePolicy,
        lo: int,
        hi: int,
        *,
        budget: float | None = None,
        decomposition: tuple | None = None,
    ) -> _Task:
        task = _Task(
            id=next(self._task_ids),
            kind=kind,
            policy=policy,
            lo=lo,
            hi=hi,
            collect=active_observer() is not None,
            budget=budget,
        )
        if decomposition is not None:
            (
                task.fingerprint,
                task.columns,
                task.base_fingerprint,
                task.changed,
            ) = decomposition
        return task

    def _execute(
        self, tasks: list[_Task], on_result: _OnResult | None
    ) -> dict[int, tuple]:
        """Drive *tasks* to completion; every task ends done or degraded."""
        self._ensure_open()
        done: dict[int, tuple] = {}
        if not tasks:
            return done
        pending: deque[_Task] = deque(tasks)
        while len(done) < len(tasks):
            self._replenish_workers()
            if not self._live:
                # Respawn budget exhausted with nobody left: finish the
                # sweep serially rather than hanging or raising PVL907.
                while pending:
                    self._degrade(
                        pending.popleft(),
                        done,
                        on_result,
                        "no live workers and the respawn budget is exhausted",
                    )
                continue
            self._dispatch(pending, done, on_result)
            ready = _connection_wait(
                self._wait_objects(), timeout=self._wait_timeout()
            )
            serviced: set[int] = set()
            for obj in ready:
                handle = self._handle_for(obj)
                if handle is None or id(handle) in serviced:
                    continue
                serviced.add(id(handle))
                if handle not in self._live:
                    continue
                if obj is handle.conn:
                    self._service(handle, pending, done, on_result)
                elif not handle.process.is_alive():
                    self._worker_died(
                        handle, pending, done, on_result,
                        "worker process died",
                    )
            self._check_watchdog(pending, done, on_result)
            self._publish_heartbeat_age()
        return done

    def _spawn_worker(self) -> _WorkerHandle:
        index = self._next_spawn
        self._next_spawn += 1
        if self._worker_faults and (
            self._fault_worker_indices is None
            or index in self._fault_worker_indices
        ):
            specs = self._worker_faults
        else:
            specs = ()
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                index,
                self._pack.name,
                self._pack.layout,
                self._meta,
                self._implicit_zero,
                self._flag,
                specs,
                self._fault_seed + index,
                self._heartbeat_interval,
            ),
            name=f"pvl-supervised-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            spawn_index=index,
            process=process,
            conn=parent_conn,
            last_heartbeat=self._clock(),
        )
        self._live.append(handle)
        return handle

    def _replenish_workers(self) -> None:
        obs = active_observer()
        while len(self._live) < self._workers:
            if self._restarts >= self._max_respawns:
                break
            self._restarts += 1
            if obs is not None:
                obs.inc("supervisor.restarts")
            self._spawn_worker()

    def _pick_task(
        self, handle: _WorkerHandle, pending: deque[_Task], force: bool
    ) -> _Task | None:
        """Pop the pending task this worker should run next, or decline.

        Base affinity: prefer a task for a shard this worker has already
        served (its engine holds that shard's arrays and base), then a
        task for a shard *no* live worker has served (route fresh shards
        to fresh workers instead of stealing a warm worker's shard).
        Past that, unless *force*, decline tasks whose shard another
        **idle** worker is warm for — the dispatch loop's first pass lets
        that worker claim them, its second pass force-assigns whatever
        is left so no worker ever idles while tasks are pending.  Keeps
        each worker patching its own shards round over round, which is
        what makes delta tasks the steady state under the column
        protocol.
        """
        if self._column_delta:
            if handle.shard_bases:
                for index, task in enumerate(pending):
                    if (task.lo, task.hi) in handle.shard_bases:
                        del pending[index]
                        return task
            served = set()
            for other in self._live:
                served.update(other.shard_bases)
            for index, task in enumerate(pending):
                if (task.lo, task.hi) not in served:
                    del pending[index]
                    return task
            if not force:
                reserved = set()
                for other in self._live:
                    if other is not handle and other.task is None:
                        reserved.update(other.shard_bases)
                for index, task in enumerate(pending):
                    if (task.lo, task.hi) not in reserved:
                        del pending[index]
                        return task
                return None
        return pending.popleft()

    def _wire_message(self, handle: _WorkerHandle, task: _Task) -> tuple:
        """The pipe message for *task*, shaped for this specific worker."""
        if task.kind != "eval":
            payload = (task.policy, task.lo, task.hi, task.budget, task.collect)
            return ("task", task.id, "certify", payload)
        if (
            not task.force_full
            and task.changed is not None
            and task.base_fingerprint is not None
            and handle.shard_bases.get((task.lo, task.hi))
            == task.base_fingerprint
        ):
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.delta_tasks")
            payload = (
                task.base_fingerprint,
                task.fingerprint,
                task.changed,
                task.lo,
                task.hi,
                task.collect,
            )
            return ("task", task.id, "eval_delta", payload)
        payload = (task.fingerprint, task.columns, task.lo, task.hi, task.collect)
        return ("task", task.id, "eval_full", payload)

    def _dispatch(
        self,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
    ) -> None:
        for force in (False, True):
            for handle in list(self._live):
                if not pending:
                    return
                if handle.task is not None:
                    continue
                task = self._pick_task(handle, pending, force)
                if task is None:
                    continue
                try:
                    handle.conn.send(self._wire_message(handle, task))
                except (OSError, ValueError):
                    # Found dead at dispatch: the task was never
                    # attempted, so requeue it without charging a retry.
                    pending.appendleft(task)
                    self._worker_died(
                        handle, pending, done, on_result,
                        "worker pipe closed before dispatch",
                    )
                    continue
                handle.task = task
                handle.dispatched_at = self._clock()

    def _wait_objects(self) -> list[Any]:
        objects: list[Any] = []
        for handle in self._live:
            objects.append(handle.conn)
            objects.append(handle.process.sentinel)
        return objects

    def _handle_for(self, obj: Any) -> _WorkerHandle | None:
        for handle in self._live:
            if obj is handle.conn or obj == handle.process.sentinel:
                return handle
        return None

    def _wait_timeout(self) -> float:
        timeout = self._heartbeat_interval
        now = self._clock()
        for handle in self._live:
            if handle.task is None:
                continue
            slack = handle.dispatched_at + self._shard_timeout - now
            timeout = min(timeout, slack)
        return max(timeout, 0.01)

    def _service(
        self,
        handle: _WorkerHandle,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
    ) -> None:
        try:
            while handle.conn.poll(0):
                message = handle.conn.recv()
                self._handle_message(handle, message, pending, done, on_result)
        except (EOFError, OSError):
            self._worker_died(
                handle, pending, done, on_result, "worker process died mid-task"
            )

    def _handle_message(
        self,
        handle: _WorkerHandle,
        message: tuple,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
    ) -> None:
        kind = message[0]
        if kind == "hb":
            handle.last_heartbeat = self._clock()
            return
        if kind == "ok":
            _, task_id, result = message
            task = handle.task
            handle.task = None
            if task is None or task.id != task_id or task.id in done:
                return
            if task.kind == "eval" and result[1] is None:
                # Delta miss: the worker's engine cache evicted the base
                # for this shard.  Replay the full decomposition without
                # charging a retry — nothing failed, state just aged out.
                handle.shard_bases.pop((task.lo, task.hi), None)
                task.force_full = True
                obs = active_observer()
                if obs is not None:
                    obs.inc("parallel.base_replays")
                    snapshot = result[-1]
                    if snapshot:
                        obs.merge_snapshot(snapshot)
                pending.append(task)
                return
            if task.kind == "eval":
                handle.shard_bases[(task.lo, task.hi)] = task.fingerprint
            self._complete(task, result, done, on_result)
            return
        if kind == "err":
            _, task_id, reason = message
            task = handle.task
            handle.task = None
            if task is not None and task.id == task_id and task.id not in done:
                self._task_failed(task, pending, done, on_result, reason)
            return
        # "fatal": the worker could not attach and is exiting; its death
        # is handled through the sentinel like any other.

    def _complete(
        self,
        task: _Task,
        result: tuple,
        done: dict[int, tuple],
        on_result: _OnResult | None,
    ) -> None:
        done[task.id] = result
        obs = active_observer()
        if obs is not None:
            obs.inc("supervisor.tasks")
            if (
                task.kind == "eval"
                and len(result) >= 5
                and result[3] is not None
            ):
                obs.inc("parallel.columns_rescored", int(result[3]))
            snapshot = result[-1]
            if snapshot:
                obs.merge_snapshot(snapshot)
        if on_result is not None:
            on_result(task, result)

    def _worker_died(
        self,
        handle: _WorkerHandle,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
        reason: str,
    ) -> None:
        if handle not in self._live:
            return
        self._live.remove(handle)
        # Drain the pipe first: a result the worker finished sending
        # before it died (or before the watchdog killed it) is still a
        # valid, deterministic shard result — accept it.
        try:
            while handle.conn.poll(0):
                message = handle.conn.recv()
                if message[0] in ("ok", "hb"):
                    self._handle_message(
                        handle, message, pending, done, on_result
                    )
        except (EOFError, OSError):
            pass
        handle.process.join(timeout=10.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        task = handle.task
        handle.task = None
        if task is not None and task.id not in done:
            self._task_failed(task, pending, done, on_result, reason)

    def _task_failed(
        self,
        task: _Task,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
        reason: str,
    ) -> None:
        task.attempts += 1
        if task.attempts <= self._max_shard_retries:
            obs = active_observer()
            if obs is not None:
                obs.inc("supervisor.shard_retries")
            self._sleep(self._retry_base_delay * 2 ** (task.attempts - 1))
            pending.append(task)
            return
        self._degrade(task, done, on_result, reason)

    def _degrade(
        self,
        task: _Task,
        done: dict[int, tuple],
        on_result: _OnResult | None,
        reason: str,
    ) -> None:
        obs = active_observer()
        if obs is not None:
            obs.inc("supervisor.degraded_shards")
        self._degradations.append(
            DegradationRecord(
                shard=(task.lo, task.hi),
                policy_name=task.policy.name,
                kind=task.kind,
                attempts=task.attempts,
                reason=reason,
            )
        )
        if task.kind == "eval":
            # The parent's per-shard serial engines persist across
            # sweeps, so degradation rides the serial engine's own
            # column-delta cache: a degraded round-over-round shard
            # still pays only its changed columns.
            engine = self._serial_engine(task.lo, task.hi)
            violations, counts, rescored = engine.evaluate_decomposed(
                task.fingerprint, task.columns
            )
            result: tuple = (task.lo, violations, counts, rescored, None)
        else:
            counts, exhausted = _certify_walk(
                self._parent_state(),
                task.policy,
                task.lo,
                task.hi,
                task.budget,
            )
            result = (task.lo, counts, exhausted, None)
        self._complete(task, result, done, on_result)

    def _check_watchdog(
        self,
        pending: deque[_Task],
        done: dict[int, tuple],
        on_result: _OnResult | None,
    ) -> None:
        now = self._clock()
        for handle in list(self._live):
            if handle.task is None:
                continue
            if now - handle.dispatched_at <= self._shard_timeout:
                continue
            obs = active_observer()
            if obs is not None:
                obs.inc("supervisor.watchdog_kills")
            self._kill_process(handle)
            self._worker_died(
                handle,
                pending,
                done,
                on_result,
                f"shard exceeded the {self._shard_timeout:g}s watchdog timeout",
            )

    def _kill_process(self, handle: _WorkerHandle) -> None:
        # SIGKILL ends the worker even while it is SIGSTOPped (a real
        # hang or the chaos suite's stall fault); a race with a natural
        # death is fine.
        try:
            os.kill(handle.process.pid, signal.SIGKILL)
        except (ProcessLookupError, TypeError):
            pass

    def _publish_heartbeat_age(self) -> None:
        obs = active_observer()
        if obs is None or not self._live:
            return
        now = self._clock()
        age = max(now - handle.last_heartbeat for handle in self._live)
        obs.set_gauge("supervisor.heartbeat_age_seconds", age)

    # -- serial fallback ----------------------------------------------------

    def _parent_state(self) -> dict[str, Any]:
        return {
            "meta": self._meta,
            "arrays": self._arrays,
            "implicit_zero": self._implicit_zero,
            "flag": self._flag,
        }

    def _serial_engine(self, lo: int, hi: int):
        engine = self._serial_engines.get((lo, hi))
        if engine is None:
            from .batch import BatchViolationEngine

            view = _ShardView(self._meta, self._arrays, lo, hi)
            engine = BatchViolationEngine(
                view, implicit_zero=self._implicit_zero
            )
            self._serial_engines[(lo, hi)] = engine
        return engine

    # -- shared internals ---------------------------------------------------

    def _merge_parts(self, parts: Iterable[tuple]) -> tuple[np.ndarray, np.ndarray]:
        parts = sorted(parts, key=lambda part: part[0])
        if not parts:  # pragma: no cover - bounds are never empty
            empty = np.zeros(0, dtype=np.float64)
            return empty, empty.copy()
        violations = np.concatenate([part[1] for part in parts])
        counts = np.concatenate([part[2] for part in parts])
        return violations, counts

    def _assemble(
        self, policy_name: str, violations: np.ndarray, counts: np.ndarray
    ) -> BatchReport:
        return assemble_report(
            policy_name,
            violations,
            counts,
            ids=self._meta["ids"],
            segments=self._meta["segments"],
            thresholds=self._compiled.thresholds,
            strict=bool(self._meta["strict"]),
        )

    def _remember(
        self,
        fingerprint: PolicyFingerprint,
        report: BatchReport | None,
        violations: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        if fingerprint not in self._cache and len(self._cache) >= self._max_cached:
            del self._cache[next(iter(self._cache))]
        self._cache[fingerprint] = (report, violations, counts)

    def _check_policy(self, policy: HousePolicy) -> None:
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ParallelExecutionError(
                "executor is closed; create a new SupervisedExecutor"
            )

"""Unit tests for the purpose-aware access gate."""

from __future__ import annotations

import pytest

from repro.core import Dimension, PrivacyTuple, ProviderPreferences
from repro.exceptions import AccessDeniedError
from repro.storage import (
    AccessRequest,
    EnforcementMode,
    PrivacyDatabase,
)


@pytest.fixture()
def db():
    database = PrivacyDatabase.create(":memory:")
    repo = database.repository
    repo.ensure_attribute("weight", 4.0)
    repo.ensure_purpose("billing")
    for pid, rank, value in (("alice", 3, 60), ("bob", 1, 82)):
        repo.add_provider(pid)
        repo.put_datum(pid, "weight", value)
        repo.add_preferences(
            ProviderPreferences(
                pid, [("weight", PrivacyTuple("billing", rank, rank, rank))]
            )
        )
    yield database
    database.close()


class TestEnforceMode:
    def test_compliant_request_returns_values(self, db):
        gate = db.gate()
        decision = gate.request(
            AccessRequest("weight", PrivacyTuple("billing", 1, 1, 1))
        )
        assert decision.allowed
        assert not decision.violates
        assert decision.values == {"alice": "60", "bob": "82"}

    def test_violating_request_denied(self, db):
        gate = db.gate()
        with pytest.raises(AccessDeniedError) as excinfo:
            gate.request(
                AccessRequest("weight", PrivacyTuple("billing", 2, 2, 2))
            )
        decision = excinfo.value.decision
        assert not decision.allowed
        assert decision.violated_providers == ("bob",)
        assert decision.values is None

    def test_findings_identify_dimensions(self, db):
        gate = db.gate()
        with pytest.raises(AccessDeniedError) as excinfo:
            gate.request(
                AccessRequest("weight", PrivacyTuple("billing", 2, 1, 1))
            )
        findings = excinfo.value.decision.findings
        assert {f.dimension for f in findings} == {Dimension.VISIBILITY}
        assert all(f.provider_id == "bob" for f in findings)
        assert all(f.amount == 1 for f in findings)

    def test_scoped_request_only_checks_one_provider(self, db):
        gate = db.gate()
        decision = gate.request(
            AccessRequest(
                "weight", PrivacyTuple("billing", 2, 2, 2), provider_id="alice"
            )
        )
        assert decision.allowed
        assert decision.values == {"alice": "60"}

    def test_scoped_request_to_violated_provider_denied(self, db):
        gate = db.gate()
        with pytest.raises(AccessDeniedError):
            gate.request(
                AccessRequest(
                    "weight", PrivacyTuple("billing", 2, 2, 2), provider_id="bob"
                )
            )

    def test_request_for_absent_data_trivially_allowed(self, db):
        gate = db.gate()
        decision = gate.request(
            AccessRequest(
                "weight",
                PrivacyTuple("billing", 4, 4, 4),
                provider_id="nobody",
            )
        )
        assert decision.allowed
        assert decision.values == {"nobody": None}


class TestImplicitZeroAtGate:
    def test_unknown_purpose_violates_everyone(self, db):
        db.repository.ensure_purpose("marketing")
        gate = db.gate()
        with pytest.raises(AccessDeniedError) as excinfo:
            gate.request(
                AccessRequest("weight", PrivacyTuple("marketing", 1, 0, 0))
            )
        assert excinfo.value.decision.violated_providers == ("alice", "bob")

    def test_implicit_zero_disabled_allows(self, db):
        db.repository.ensure_purpose("marketing")
        gate = db.gate(implicit_zero=False)
        decision = gate.request(
            AccessRequest("weight", PrivacyTuple("marketing", 1, 0, 0))
        )
        assert decision.allowed
        assert not decision.violates


class TestAuditMode:
    def test_violating_request_allowed_but_logged(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        decision = gate.request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 2, 2))
        )
        assert decision.allowed
        assert decision.violates
        assert decision.values is not None
        report = db.audit_log.report()
        assert report.violations_logged == 1
        assert report.denied == 0

    def test_observed_violation_rate(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(AccessRequest("weight", PrivacyTuple("billing", 1, 1, 1)))
        gate.request(AccessRequest("weight", PrivacyTuple("billing", 2, 2, 2)))
        report = db.audit_log.report()
        assert report.observed_violation_rate == pytest.approx(0.5)


class TestLogging:
    def test_every_decision_logged(self, db):
        gate = db.gate()
        gate.request(AccessRequest("weight", PrivacyTuple("billing", 1, 1, 1)))
        with pytest.raises(AccessDeniedError):
            gate.request(
                AccessRequest("weight", PrivacyTuple("billing", 4, 4, 4))
            )
        events = list(db.audit_log.events())
        assert [e.event for e in events] == ["access-granted", "access-denied"]

    def test_denied_event_carries_findings_detail(self, db):
        gate = db.gate()
        with pytest.raises(AccessDeniedError):
            gate.request(
                AccessRequest("weight", PrivacyTuple("billing", 4, 4, 4))
            )
        event = list(db.audit_log.events(only_violations=True))[0]
        assert event.detail["violated_providers"] == ["alice", "bob"]
        assert event.detail["findings"]

    def test_event_filtering_by_attribute(self, db):
        gate = db.gate()
        gate.request(AccessRequest("weight", PrivacyTuple("billing", 1, 1, 1)))
        assert list(db.audit_log.events(attribute="weight"))
        assert not list(db.audit_log.events(attribute="age"))

"""Property-based tests for the Section 10 estimation machinery."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.estimation import DefaultObservation, ThresholdEstimator

severities = st.floats(min_value=0.0, max_value=1e4, allow_nan=False)


@st.composite
def observations(draw):
    n = draw(st.integers(1, 12))
    result = []
    for index in range(n):
        lower = draw(severities)
        if draw(st.booleans()):
            gap = draw(st.floats(min_value=0.0, max_value=1e3, allow_nan=False))
            upper = lower + gap
        else:
            upper = None
        result.append(DefaultObservation(f"p{index}", lower, upper))
    return result


class TestEstimatorProperties:
    @given(obs=observations(), grid=st.lists(severities, min_size=2, max_size=10))
    @settings(max_examples=200)
    def test_curve_monotone(self, obs, grid):
        estimator = ThresholdEstimator(obs)
        ordered = sorted(grid)
        values = [estimator.default_fraction(s) for s in ordered]
        assert values == sorted(values)

    @given(obs=observations(), severity=severities)
    def test_curve_bounded(self, obs, severity):
        estimator = ThresholdEstimator(obs)
        assert 0.0 <= estimator.default_fraction(severity) <= 1.0

    @given(obs=observations())
    def test_curve_zero_at_zero(self, obs):
        # At severity 0 no interval has positive mass below (lower >= 0),
        # except degenerate (0, 0] intervals which default immediately.
        estimator = ThresholdEstimator(obs)
        degenerate = sum(
            1 for o in obs if o.upper is not None and o.upper == 0.0
        )
        assert estimator.default_fraction(0.0) == degenerate / len(obs)

    @given(obs=observations())
    def test_points_inside_brackets(self, obs):
        estimator = ThresholdEstimator(obs)
        for estimate in estimator.estimates():
            if estimate.censored:
                assert estimate.point == estimate.lower
            else:
                assert estimate.lower <= estimate.point <= estimate.upper

    @given(obs=observations(), budget=st.floats(0.0, 0.99, allow_nan=False))
    @settings(max_examples=100)
    def test_severity_at_budget_respects_budget(self, obs, budget):
        estimator = ThresholdEstimator(obs)
        severity = estimator.severity_at_budget(budget)
        if estimator.default_fraction(0.0) > budget:
            # Infeasible budget (degenerate zero-severity departures):
            # the documented answer is "no positive severity is safe".
            assert severity == 0.0
            return
        # Bisection converges from below; allow the tolerance of 60 halvings.
        assert estimator.default_fraction(severity) <= budget + 1e-6

    @given(obs=observations())
    def test_fully_censored_never_predicts_defaults(self, obs):
        censored_only = [
            DefaultObservation(o.provider_id, o.lower, None) for o in obs
        ]
        estimator = ThresholdEstimator(censored_only)
        assert estimator.default_fraction(1e9) == 0.0
        assert estimator.n_departed() == 0

"""Chunked (streaming) evaluation for populations larger than RAM.

:class:`~repro.perf.compiled.CompiledPopulation` holds every weight
tensor of every provided attribute at once — fine for millions of rows
of a few attributes, not for a population that only exists as a stream.
This module evaluates policies **chunk by chunk**: each chunk of
providers is compiled, evaluated (serially or through the parallel
executor), reduced to its per-provider arrays, and released before the
next chunk is compiled, so peak memory is bounded by the chunk size
rather than the population size.

Exactness: chunks are contiguous provider slices and every per-provider
quantity (weights, thresholds, finding counts) depends only on that
provider and the population-level models, which are resolved **once**
from the full population and passed to every chunk compilation.  The
concatenated result is therefore bit-for-bit the report the one-shot
engine produces (``tests/perf/test_parallel_parity.py`` holds this).

Aggregates that need the whole population (``P(W)``, ``P(Default)``,
Eq. 16 totals) are computed after the merge through the same
:func:`~repro.perf.batch.assemble_report` as every other execution mode.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import ValidationError
from ..obs import active_observer
from .batch import BatchReport, assemble_report
from .parallel import make_batch_engine


def iter_population_chunks(
    population: Population, chunk_size: int
) -> Iterator[Population]:
    """Contiguous sub-populations of at most *chunk_size* providers.

    Chunks carry the parent's ``Sigma`` vector; provider order (and
    hence row order after concatenation) is preserved.
    """
    if not isinstance(population, Population):
        raise ValidationError(
            f"population must be a Population, got {type(population).__name__}"
        )
    if chunk_size < 1:
        raise ValidationError("chunk_size must be >= 1")
    providers = population.providers
    for start in range(0, len(providers), chunk_size):
        yield Population(
            providers[start : start + chunk_size],
            population.attribute_sensitivities,
        )


def merge_reports(
    policy_name: str, parts: Sequence[BatchReport], *, strict: bool = True
) -> BatchReport:
    """One population-wide report from per-chunk reports, in chunk order.

    Concatenates the row-aligned arrays and recomputes the aggregates
    over the full population — chunk-level probabilities are *not*
    averaged (they would weight small tail chunks incorrectly).
    *strict* must match the default model the parts were evaluated with
    (``violated`` is fed back as the finding indicator, so the per-row
    flags survive the round trip either way).
    """
    if not parts:
        raise ValidationError("merge_reports needs at least one part")
    violations = np.concatenate([part.violations for part in parts])
    counts = np.concatenate(
        [part.violated.astype(np.float64) for part in parts]
    )
    ids: tuple = ()
    segments: tuple = ()
    for part in parts:
        ids += part.provider_ids
        segments += part.segments
    thresholds = np.concatenate([part.thresholds for part in parts])
    return assemble_report(
        policy_name,
        violations,
        counts,
        ids=ids,
        segments=segments,
        thresholds=thresholds,
        strict=strict,
    )


def evaluate_chunked(
    population: Population,
    policies: Iterable[HousePolicy],
    *,
    chunk_size: int,
    workers: int = 1,
    implicit_zero: bool = True,
) -> list[BatchReport]:
    """Evaluate *policies* over *population* in bounded-memory chunks.

    Each chunk is compiled against the **full population's** sensitivity
    and default models (so chunking never changes a weight or threshold),
    evaluated for every policy through the ``workers=N`` execution
    policy (:func:`~repro.perf.parallel.make_batch_engine`), and dropped
    before the next chunk compiles.  Returns one merged
    :class:`~repro.perf.batch.BatchReport` per policy, in policy order —
    bit-for-bit what a one-shot engine over the whole population returns.
    """
    policies = list(policies)
    if not policies:
        return []
    if len(population) == 0:
        engine = make_batch_engine(population, implicit_zero=implicit_zero)
        return engine.evaluate_policies(policies)
    sensitivities = population.sensitivity_model()
    default_model = population.default_model()
    per_policy: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in policies
    ]
    ids: tuple = ()
    segments: tuple = ()
    thresholds_parts: list[np.ndarray] = []
    n_chunks = 0
    for chunk in iter_population_chunks(population, chunk_size):
        n_chunks += 1
        with make_batch_engine(
            chunk,
            workers=workers,
            sensitivities=sensitivities,
            default_model=default_model,
            implicit_zero=implicit_zero,
        ) as engine:
            compiled = engine.compiled
            ids += compiled.ids
            segments += compiled.segments
            thresholds_parts.append(np.array(compiled.thresholds, copy=True))
            for slot, policy in enumerate(policies):
                per_policy[slot].append(engine.evaluate_arrays(policy))
    thresholds = np.concatenate(thresholds_parts)
    strict = default_model.strict
    obs = active_observer()
    if obs is not None:
        obs.inc("parallel.chunks", n_chunks)
    reports = []
    for slot, policy in enumerate(policies):
        violations = np.concatenate([part[0] for part in per_policy[slot]])
        counts = np.concatenate([part[1] for part in per_policy[slot]])
        reports.append(
            assemble_report(
                policy.name,
                violations,
                counts,
                ids=ids,
                segments=segments,
                thresholds=thresholds,
                strict=strict,
            )
        )
    return reports

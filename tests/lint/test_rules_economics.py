"""Fire/silent tests for the economics sanity rules PVL201-PVL202."""

from __future__ import annotations

import pytest

from repro.lint import LintConfig, lint_documents

from .conftest import rule

WIDE = dict(visibility="all", granularity="specific", retention="indefinite")


def codes(report):
    return [d.code for d in report.diagnostics]


def run(taxonomy, code, **kwargs):
    return lint_documents(taxonomy, select=[code], **kwargs)


@pytest.fixture()
def fragile_population():
    """Two providers that default as soon as anything violates them."""
    return {
        "providers": [
            {
                "provider": "alice",
                "threshold": 0,
                "preferences": [
                    rule(visibility="owner", granularity="existential",
                         retention="transaction")
                ],
            },
            {
                "provider": "bob",
                "threshold": 0,
                "preferences": [
                    rule(visibility="owner", granularity="existential",
                         retention="transaction")
                ],
            },
        ],
    }


class TestPVL201WideningAnnihilates:
    def test_fires_when_all_providers_default(self, taxonomy, clean_policy,
                                              fragile_population):
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = run(taxonomy, "PVL201", policy=clean_policy,
                     population=fragile_population, candidate=candidate)
        assert codes(report) == ["PVL201"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.document == "candidate"
        assert diagnostic.payload["n_future"] == 0
        assert sorted(diagnostic.payload["defaulted_providers"]) == [
            "alice",
            "bob",
        ]

    def test_silent_when_someone_survives(self, taxonomy, clean_policy,
                                          fragile_population):
        fragile_population["providers"][0]["preferences"] = [rule(**WIDE)]
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = run(taxonomy, "PVL201", policy=clean_policy,
                     population=fragile_population, candidate=candidate)
        assert codes(report) == []

    def test_silent_without_candidate(self, taxonomy, clean_policy,
                                      fragile_population):
        report = run(taxonomy, "PVL201", policy=clean_policy,
                     population=fragile_population)
        assert codes(report) == []


class TestPVL202UnattainableBreakEven:
    def _survivor_population(self, fragile_population):
        # alice tolerates everything; bob defaults -> N: 2 -> 1, T* = U.
        fragile_population["providers"][0]["preferences"] = [rule(**WIDE)]
        return fragile_population

    def test_fires_when_break_even_exceeds_bound(self, taxonomy, clean_policy,
                                                 fragile_population):
        population = self._survivor_population(fragile_population)
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = run(
            taxonomy, "PVL202", policy=clean_policy, population=population,
            candidate=candidate,
            config=LintConfig(utility=1.0, max_extra_utility=0.5),
        )
        assert codes(report) == ["PVL202"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["break_even_extra_utility"] == 1.0
        assert diagnostic.payload["n_current"] == 2
        assert diagnostic.payload["n_future"] == 1
        assert diagnostic.payload["defaulted_providers"] == ["bob"]

    def test_silent_when_bound_is_attainable(self, taxonomy, clean_policy,
                                             fragile_population):
        population = self._survivor_population(fragile_population)
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = run(
            taxonomy, "PVL202", policy=clean_policy, population=population,
            candidate=candidate,
            config=LintConfig(utility=1.0, max_extra_utility=2.0),
        )
        assert codes(report) == []

    def test_silent_without_configured_bound(self, taxonomy, clean_policy,
                                             fragile_population):
        population = self._survivor_population(fragile_population)
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = run(taxonomy, "PVL202", policy=clean_policy,
                     population=population, candidate=candidate)
        assert codes(report) == []

    def test_defers_to_pvl201_when_population_annihilated(
        self, taxonomy, clean_policy, fragile_population
    ):
        candidate = {"name": "wider", "rules": [rule(**WIDE)]}
        report = lint_documents(
            taxonomy, policy=clean_policy, population=fragile_population,
            candidate=candidate,
            config=LintConfig(utility=1.0, max_extra_utility=0.5),
            select=["PVL201", "PVL202"],
        )
        assert codes(report) == ["PVL201"]

"""Unit tests for granularity-aware value degradation."""

from __future__ import annotations

import pytest

from repro.core import PrivacyTuple, ProviderPreferences
from repro.exceptions import ValidationError
from repro.storage import (
    AccessRequest,
    EXISTENCE_MARKER,
    EnforcementMode,
    PrivacyDatabase,
    ValueDegrader,
    numeric_degrader,
)


class TestValueDegrader:
    @pytest.fixture()
    def degrader(self) -> ValueDegrader:
        # Canonical granularity ladder: none < existential < partial < specific.
        return ValueDegrader(exact_rank=3, bucket_widths={2: 10.0})

    def test_rank_zero_reveals_nothing(self, degrader):
        assert degrader.degrade("82", 0) is None

    def test_existential_rank(self, degrader):
        assert degrader.degrade("82", 1) == EXISTENCE_MARKER

    def test_partial_rank_buckets(self, degrader):
        assert degrader.degrade("82", 2) == "80..90"
        assert degrader.degrade("80", 2) == "80..90"
        assert degrader.degrade("79.5", 2) == "70..80"

    def test_exact_rank_raw(self, degrader):
        assert degrader.degrade("82", 3) == "82"
        assert degrader.degrade("82", 5) == "82"

    def test_none_stays_none(self, degrader):
        for rank in range(4):
            assert degrader.degrade(None, rank) is None

    def test_non_numeric_bucket_falls_back_to_existence(self, degrader):
        assert degrader.degrade("heavy", 2) == EXISTENCE_MARKER

    def test_fractional_widths(self):
        degrader = ValueDegrader(exact_rank=2, bucket_widths={1: 0.5})
        assert degrader.degrade("1.7", 1) == "1.5..2.0"

    def test_category_map_precedence(self):
        degrader = ValueDegrader(
            exact_rank=3,
            bucket_widths={2: 10.0},
            category_maps={2: lambda raw: "obese" if float(raw) > 80 else "normal"},
        )
        assert degrader.degrade("82", 2) == "obese"
        assert degrader.degrade("60", 2) == "normal"

    def test_bucket_rank_at_or_above_exact_rejected(self):
        with pytest.raises(ValidationError):
            ValueDegrader(exact_rank=2, bucket_widths={2: 10.0})

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValidationError):
            ValueDegrader(exact_rank=3, bucket_widths={2: 0.0})

    def test_non_callable_category_rejected(self):
        with pytest.raises(ValidationError):
            ValueDegrader(exact_rank=3, category_maps={1: "not callable"})  # type: ignore[dict-item]

    def test_numeric_factory(self):
        degrader = numeric_degrader(3, {2: 5.0})
        assert degrader.degrade("12", 2) == "10..15"


class TestGateIntegration:
    @pytest.fixture()
    def db(self):
        database = PrivacyDatabase.create(":memory:")
        repo = database.repository
        repo.ensure_attribute("weight")
        repo.ensure_purpose("billing")
        repo.add_provider("alice")
        repo.put_datum("alice", "weight", 82)
        repo.add_preferences(
            ProviderPreferences(
                "alice", [("weight", PrivacyTuple("billing", 4, 3, 4))]
            )
        )
        yield database
        database.close()

    def _gate(self, db):
        return db.gate(
            mode=EnforcementMode.ENFORCE,
            degraders={
                "weight": ValueDegrader(exact_rank=3, bucket_widths={2: 10.0})
            },
        )

    def test_specific_request_gets_raw_value(self, db):
        decision = self._gate(db).request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 3, 2))
        )
        assert decision.values == {"alice": "82"}

    def test_partial_request_gets_bucket(self, db):
        decision = self._gate(db).request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 2, 2))
        )
        assert decision.values == {"alice": "80..90"}

    def test_existential_request_gets_marker(self, db):
        decision = self._gate(db).request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 1, 2))
        )
        assert decision.values == {"alice": EXISTENCE_MARKER}

    def test_zero_granularity_reveals_nothing(self, db):
        decision = self._gate(db).request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 0, 2))
        )
        assert decision.values == {"alice": None}

    def test_attribute_without_degrader_stays_raw(self, db):
        gate = db.gate(degraders={})
        decision = gate.request(
            AccessRequest("weight", PrivacyTuple("billing", 2, 1, 2))
        )
        assert decision.values == {"alice": "82"}

"""E2 — Figure 1 (Section 3): violations as failures of box containment.

The figure's three panels encode a checkable geometric claim: within one
purpose group, a violation along dimension ``S`` is exactly the policy box
poking out of the preference box along ``S``.  This bench regenerates the
three panels, asserts the dimension sets exactly, and cross-checks the
taxonomy-layer geometry against the core model's ``exceeded_dimensions``
over an exhaustive grid of small boxes.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import Dimension, PrivacyTuple, exceeded_dimensions
from repro.taxonomy import violation_dimensions

from conftest import emit

#: Figure 1's panels as (preference, policy, expected escaping dimensions).
PANELS = [
    (
        "a (contained: no violation)",
        PrivacyTuple("pr", 3, 3, 3),
        PrivacyTuple("pr", 2, 2, 2),
        (),
    ),
    (
        "b (one-dimension violation)",
        PrivacyTuple("pr", 3, 1, 3),
        PrivacyTuple("pr", 2, 2, 2),
        (Dimension.GRANULARITY,),
    ),
    (
        "c (two-dimension violation)",
        PrivacyTuple("pr", 1, 1, 3),
        PrivacyTuple("pr", 2, 2, 2),
        (Dimension.VISIBILITY, Dimension.GRANULARITY),
    ),
]


def test_figure1_panels(benchmark):
    def run_panels():
        return [
            violation_dimensions(preference, policy)
            for _, preference, policy, _ in PANELS
        ]

    results = benchmark(run_panels)

    rows = []
    for (label, preference, policy, expected), actual in zip(PANELS, results):
        rows.append(
            [
                label,
                str(preference),
                str(policy),
                "/".join(d.symbol for d in expected) or "-",
                "/".join(d.symbol for d in actual) or "-",
            ]
        )
    emit(
        "Figure 1 panels: escaping dimensions",
        format_table(
            ["panel", "preference", "policy", "paper", "measured"], rows
        ),
    )
    for (_, _, _, expected), actual in zip(PANELS, results):
        assert actual == expected


def test_figure1_grid_agreement(benchmark):
    """Taxonomy geometry == core arithmetic over every small box pair."""

    def run_grid():
        mismatches = 0
        checked = 0
        for pv in range(4):
            for pg in range(4):
                for pr_ in range(4):
                    preference = PrivacyTuple("pr", pv, pg, pr_)
                    for qv in range(4):
                        for qg in range(4):
                            for qr in range(4):
                                policy = PrivacyTuple("pr", qv, qg, qr)
                                checked += 1
                                if violation_dimensions(
                                    preference, policy
                                ) != exceeded_dimensions(preference, policy):
                                    mismatches += 1
        return checked, mismatches

    checked, mismatches = benchmark(run_grid)
    emit(
        "Figure 1 grid cross-check",
        format_table(
            ["box pairs checked", "mismatches"], [[checked, mismatches]]
        ),
    )
    assert checked == 4**6
    assert mismatches == 0

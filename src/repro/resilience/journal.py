"""The :class:`RunJournal`: a checksummed, sqlite-backed checkpoint store.

Long runs — widening sweeps, multi-round dynamics, forecast replays —
checkpoint one journal **step** per unit of work.  Each step stores a
canonical-JSON payload plus a SHA-256 checksum *chained* through every
preceding step (``checksum_k = H(checksum_{k-1} | k | payload_k)``), so

* any bit flip in any persisted payload is detected on open;
* steps cannot be silently reordered, dropped, or truncated from the
  middle — the chain breaks;
* the journal head is a compact commitment to the entire recorded run.

The journal also pins the run's identity: a *kind* (``"sweep"``,
``"dynamics"``, ``"forecast"``) and an input *fingerprint* (a hash over
the population, policy, and parameters — see
:func:`repro.resilience.resume.journal_fingerprint`).  Resuming with
different inputs is refused with :class:`JournalMismatchError` instead
of producing a ledger that silently mixes two runs.

Writes go through :func:`repro.storage.queries.connect`, so journals get
the hardened storage behaviour (WAL, busy timeout, locked-database
retry, fault interposition) for free; each step is committed atomically
before the runner proceeds, which is what makes kill-between-rounds
recoverable.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from time import perf_counter
from typing import Any

from ..exceptions import (
    JournalCorruptionError,
    JournalError,
    JournalMismatchError,
)
from ..obs import active_observer
from ..storage.queries import connect, with_locked_retry
from .faults import active_plan

#: Bump when the journal schema changes incompatibly.
JOURNAL_VERSION = 1

_DDL = (
    """
    CREATE TABLE journal_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE journal_steps (
        step     INTEGER PRIMARY KEY,
        payload  BLOB NOT NULL,
        checksum TEXT NOT NULL
    )
    """,
)


def _canonical(payload: dict[str, Any]) -> str:
    """The canonical JSON rendering checksums are computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _chain(previous: str, step: int, payload_text: str) -> str:
    digest = hashlib.sha256()
    digest.update(previous.encode("utf-8"))
    digest.update(b"|")
    digest.update(str(step).encode("ascii"))
    digest.update(b"|")
    digest.update(payload_text.encode("utf-8"))
    return digest.hexdigest()


class RunJournal:
    """Checkpointed run state over one sqlite file.

    Obtain instances through the classmethods::

        journal = RunJournal.create("run.journal", kind="sweep",
                                    fingerprint=fp)
        journal = RunJournal.open("run.journal")
        journal = RunJournal.resume_or_create("run.journal", kind="sweep",
                                              fingerprint=fp)

    The object is a context manager; leaving the ``with`` block closes
    the connection (steps are already durable — each
    :meth:`record_step` commits before returning).
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        *,
        path: str,
        kind: str,
        fingerprint: str,
        params: dict[str, Any],
        payloads: list[dict[str, Any]],
        head: str,
    ) -> None:
        self._connection = connection
        self._path = path
        self._kind = kind
        self._fingerprint = fingerprint
        self._params = params
        self._payloads = payloads
        self._head = head

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        *,
        kind: str,
        fingerprint: str,
        params: dict[str, Any] | None = None,
    ) -> "RunJournal":
        """Create a fresh journal at *path* (refusing to clobber one)."""
        if path != ":memory:" and os.path.exists(path):
            raise JournalError(
                f"{path!r} already exists; use RunJournal.open() or "
                f"resume_or_create()"
            )
        params = dict(params or {})
        connection = connect(path)
        try:
            for statement in _DDL:
                connection.execute(statement)
            rows = (
                ("journal_version", str(JOURNAL_VERSION)),
                ("kind", kind),
                ("fingerprint", fingerprint),
                ("params", _canonical(params)),
            )
            connection.executemany(
                "INSERT INTO journal_meta (key, value) VALUES (?, ?)", rows
            )
            connection.commit()
        except BaseException:
            connection.close()
            raise
        return cls(
            connection,
            path=path,
            kind=kind,
            fingerprint=fingerprint,
            params=params,
            payloads=[],
            head=fingerprint,
        )

    @classmethod
    def open(cls, path: str) -> "RunJournal":
        """Open an existing journal, verifying the full checksum chain.

        Raises
        ------
        JournalError
            If *path* does not exist or is not a run journal.
        JournalCorruptionError
            If the file is unreadable or any step fails verification.
        """
        if not os.path.exists(path):
            raise JournalError(f"no journal at {path!r}")
        try:
            connection = connect(path)
        except sqlite3.DatabaseError as error:
            raise JournalCorruptionError(
                f"{path!r} is not a readable journal: {error}"
            ) from error
        try:
            try:
                meta = {
                    row["key"]: row["value"]
                    for row in connection.execute(
                        "SELECT key, value FROM journal_meta"
                    )
                }
            except sqlite3.DatabaseError as error:
                raise JournalCorruptionError(
                    f"{path!r} is not a readable journal: {error}"
                ) from error
            version = meta.get("journal_version")
            if version != str(JOURNAL_VERSION):
                raise JournalError(
                    f"{path!r} has journal version {version!r}, "
                    f"expected {JOURNAL_VERSION!r}"
                )
            for key in ("kind", "fingerprint", "params"):
                if key not in meta:
                    raise JournalCorruptionError(
                        f"{path!r} journal metadata is missing {key!r}"
                    )
            payloads, head = cls._verify_steps(
                connection, path, meta["fingerprint"]
            )
        except BaseException:
            connection.close()
            raise
        return cls(
            connection,
            path=path,
            kind=meta["kind"],
            fingerprint=meta["fingerprint"],
            params=json.loads(meta["params"]),
            payloads=payloads,
            head=head,
        )

    @classmethod
    def resume_or_create(
        cls,
        path: str,
        *,
        kind: str,
        fingerprint: str,
        params: dict[str, Any] | None = None,
    ) -> "RunJournal":
        """Open *path* if it exists (requiring a matching run), else create."""
        if path != ":memory:" and os.path.exists(path):
            journal = cls.open(path)
            try:
                journal.require(kind=kind, fingerprint=fingerprint)
            except BaseException:
                journal.close()
                raise
            return journal
        return cls.create(
            path, kind=kind, fingerprint=fingerprint, params=params
        )

    @staticmethod
    def _verify_steps(
        connection: sqlite3.Connection, path: str, fingerprint: str
    ) -> tuple[list[dict[str, Any]], str]:
        payloads: list[dict[str, Any]] = []
        head = fingerprint
        expected_step = 0
        for row in connection.execute(
            "SELECT step, payload, checksum FROM journal_steps ORDER BY step"
        ):
            step = row["step"]
            if step != expected_step:
                raise JournalCorruptionError(
                    f"{path!r} step sequence broken: expected step "
                    f"{expected_step}, found {step}"
                )
            try:
                payload_text = bytes(row["payload"]).decode("utf-8")
                payload = json.loads(payload_text)
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise JournalCorruptionError(
                    f"{path!r} step {step} payload is corrupt: {error}"
                ) from error
            checksum = _chain(head, step, payload_text)
            if checksum != row["checksum"]:
                raise JournalCorruptionError(
                    f"{path!r} step {step} failed checksum verification"
                )
            payloads.append(payload)
            head = checksum
            expected_step += 1
        obs = active_observer()
        if obs is not None:
            obs.inc("journal.steps_verified", len(payloads))
        return payloads, head

    def require(self, *, kind: str, fingerprint: str) -> None:
        """Refuse to continue a run this journal does not belong to."""
        if self._kind != kind:
            raise JournalMismatchError(
                f"{self._path!r} journals a {self._kind!r} run, "
                f"not a {kind!r} run"
            )
        if self._fingerprint != fingerprint:
            raise JournalMismatchError(
                f"{self._path!r} was recorded for different inputs "
                f"(fingerprint {self._fingerprint[:12]}..., "
                f"resuming run has {fingerprint[:12]}...)"
            )

    def close(self) -> None:
        """Close the underlying connection."""
        self._connection.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    # -- recorded state ----------------------------------------------------

    @property
    def path(self) -> str:
        """Where this journal lives."""
        return self._path

    @property
    def kind(self) -> str:
        """The run kind (``"sweep"``, ``"dynamics"``, ``"forecast"``)."""
        return self._kind

    @property
    def fingerprint(self) -> str:
        """The input fingerprint the run was started with."""
        return self._fingerprint

    @property
    def params(self) -> dict[str, Any]:
        """The run parameters recorded at creation."""
        return dict(self._params)

    @property
    def head(self) -> str:
        """The chained checksum over everything recorded so far."""
        return self._head

    @property
    def n_steps(self) -> int:
        """Number of completed, verified steps."""
        return len(self._payloads)

    def payloads(self) -> list[dict[str, Any]]:
        """The recorded step payloads, in step order."""
        return [dict(payload) for payload in self._payloads]

    # -- writing -----------------------------------------------------------

    def record_step(self, payload: dict[str, Any]) -> int:
        """Append one step atomically; returns its index.

        The checksum is computed over the clean payload *before* the
        ``journal.write`` fault site may corrupt the stored bytes — which
        is exactly how real media corruption relates to a checksum
        computed at write time, and what lets :meth:`open` detect it.
        """
        obs = active_observer()
        start = perf_counter() if obs is not None else 0.0
        step = len(self._payloads)
        payload_text = _canonical(payload)
        checksum = _chain(self._head, step, payload_text)
        stored = payload_text.encode("utf-8")
        plan = active_plan()
        if plan is not None:
            stored = plan.corrupt_bytes("journal.write", stored)

        def _write() -> None:
            try:
                self._connection.execute(
                    "INSERT INTO journal_steps (step, payload, checksum) "
                    "VALUES (?, ?, ?)",
                    (step, stored, checksum),
                )
                self._connection.commit()
            except sqlite3.Error:
                # Roll the half-open transaction back so a retry (or a
                # later step after the caller handles the error) starts
                # from the journal's last durable state.
                try:
                    self._connection.rollback()
                except sqlite3.Error:
                    pass
                raise

        with_locked_retry(_write)
        self._payloads.append(json.loads(payload_text))
        self._head = checksum
        if obs is not None:
            obs.inc("journal.steps_recorded")
            obs.observe("journal.record_step_seconds", perf_counter() - start)
        return step


def journal_summary(path: str) -> dict[str, Any]:
    """Inspect and verify a journal; the ``repro journal`` payload.

    Opens (and therefore chain-verifies) the journal, returning its
    identity and progress as a JSON-safe dict.
    """
    with RunJournal.open(path) as journal:
        return {
            "path": path,
            "kind": journal.kind,
            "fingerprint": journal.fingerprint,
            "params": journal.params,
            "steps": journal.n_steps,
            "head": journal.head,
            "verified": True,
        }

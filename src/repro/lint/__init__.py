"""``repro.lint`` — a static policy analyzer with coded diagnostics.

The paper's violation model is decidable from the documents alone: a
house policy tuple exceeding a provider preference tuple (Definition 1)
can be detected before any data is collected, and alpha-PPDB
certification (Definition 3) is a static property of the
policy/population pair.  This package performs that reasoning as a
linter: a registry of rules with stable codes (``PVL001``...), each
consuming the parsed documents and emitting structured
:class:`Diagnostic` objects with severities, source locations, and
machine-readable payloads.

Three layers (see ``docs/linting.md`` for the full catalogue):

* **document** (``PVL0xx``) — each document against the taxonomy:
  unknown purposes/levels, undeclared attributes, duplicate rows,
  non-monotone ladders;
* **model** (``PVL1xx``) — cross-document analysis: guaranteed
  violations, shadowed rules, unreachable purposes, zero sensitivities,
  dead rules, inert/dominated preferences, static alpha-PPDB
  certification with the witness segment;
* **economics** (``PVL2xx``) — Eq. 31 sanity for candidate widenings:
  annihilated populations and unattainable break-even utilities.

Entry points: :func:`lint_documents` (documents in, :class:`LintReport`
out) and the ``repro lint`` CLI subcommand (``--format
text|json|sarif``, severity-gated exit codes).
"""

from .diagnostics import Diagnostic, Severity, SourceLocation
from .formats import (
    FORMATS,
    render,
    render_json,
    render_sarif,
    render_text,
)
from .registry import (
    Layer,
    LintConfig,
    LintContext,
    RuleInfo,
    all_rules,
    get_rule,
    run_rules,
)
from .report import LintReport
from .runner import build_context, lint_documents

__all__ = [
    "Diagnostic",
    "FORMATS",
    "Layer",
    "LintConfig",
    "LintContext",
    "LintReport",
    "RuleInfo",
    "Severity",
    "SourceLocation",
    "all_rules",
    "build_context",
    "get_rule",
    "lint_documents",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "run_rules",
]

"""SARIF output validated against the (vendored) SARIF 2.1.0 schema.

The schema at ``data/sarif-2.1.0-subset.schema.json`` is a strict subset
of the OASIS schema covering every construct ``render_sarif`` emits —
see its ``description`` for the vendoring rationale.  These tests
validate real reports (clean, dirty, and every bundled dataset) against
it, plus the structural invariants the subset cannot express (ruleIndex
consistency with the rules array).
"""

from __future__ import annotations

import json
from pathlib import Path

import jsonschema
import pytest

from repro.datasets import (
    crm_scenario,
    paper_example_scenario,
)
from repro.datasets.export import scenario_documents
from repro.lint import LintConfig, lint_documents, render_sarif
from repro.policy_lang import parse_taxonomy

from .conftest import rule

SCHEMA = json.loads(
    (Path(__file__).parent / "data" / "sarif-2.1.0-subset.schema.json")
    .read_text()
)
VALIDATOR = jsonschema.Draft202012Validator(SCHEMA)


def assert_valid_sarif(text: str) -> dict:
    log = json.loads(text)
    errors = sorted(VALIDATOR.iter_errors(log), key=lambda e: list(e.path))
    assert not errors, "\n".join(
        f"{list(error.path)}: {error.message}" for error in errors
    )
    return log


class TestSchemaConformance:
    def test_clean_report(self, taxonomy, clean_policy, clean_population):
        report = lint_documents(
            taxonomy, policy=clean_policy, population=clean_population
        )
        log = assert_valid_sarif(render_sarif(report))
        assert log["runs"][0]["results"] == []

    def test_dirty_report_with_artifacts(self, taxonomy, clean_policy):
        population = {
            "providers": [
                {
                    "provider": "p",
                    "preferences": [
                        rule(purpose="nonsense"),
                        rule(),
                        rule(),
                    ],
                }
            ]
        }
        report = lint_documents(
            taxonomy, policy=clean_policy, population=population
        )
        assert report, "fixture must produce findings"
        log = assert_valid_sarif(
            render_sarif(
                report,
                artifacts={
                    "policy": "docs/policy.json",
                    "population": "docs/population.json",
                },
            )
        )
        uris = {
            location["physicalLocation"]["artifactLocation"]["uri"]
            for result in log["runs"][0]["results"]
            for location in result["locations"]
        }
        assert uris <= {"docs/policy.json", "docs/population.json"}

    @pytest.mark.parametrize(
        "scenario_factory",
        [paper_example_scenario, lambda: crm_scenario(12)],
        ids=["paper_example", "crm"],
    )
    def test_bundled_dataset_reports(self, scenario_factory):
        scenario = scenario_factory()
        documents = scenario_documents(scenario)
        taxonomy = parse_taxonomy(documents["taxonomy"])
        report = lint_documents(
            taxonomy,
            policy=documents["policy"],
            population=documents["population"],
            config=LintConfig(alpha=0.5),
        )
        assert_valid_sarif(render_sarif(report))


class TestStructuralInvariants:
    def test_rule_index_points_at_its_rule(self, taxonomy, clean_policy):
        population = {
            "providers": [{"provider": "p", "preferences": [rule(), rule()]}]
        }
        report = lint_documents(
            taxonomy, policy=clean_policy, population=population
        )
        assert report
        log = json.loads(render_sarif(report))
        run = log["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        for result in run["results"]:
            index = result["ruleIndex"]
            assert rules[index]["id"] == result["ruleId"]

    def test_rules_carry_layer_and_scope(self, taxonomy):
        log = json.loads(render_sarif(lint_documents(taxonomy)))
        for descriptor in log["runs"][0]["tool"]["driver"]["rules"]:
            assert descriptor["properties"]["layer"]
            assert descriptor["properties"]["scope"] in (
                "global",
                "provider",
                "mixed",
            )

    def test_region_defaults_without_index_or_field(self, taxonomy):
        report = lint_documents(
            taxonomy, policy={"name": "p", "rules": []}
        )  # empty-policy finding points at the document, not an entry
        assert report
        log = assert_valid_sarif(render_sarif(report))
        region = log["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region == {"startColumn": 1, "startLine": 1}

"""Unit tests for privacy dimensions and ordered domains."""

from __future__ import annotations

import pytest

from repro.core.dimensions import (
    Dimension,
    ORDERED_DIMENSIONS,
    OrderedDomain,
    UnboundedRetention,
)
from repro.exceptions import DomainError, ValidationError


class TestDimension:
    def test_four_dimensions_exist(self):
        assert {d.value for d in Dimension} == {
            "purpose",
            "visibility",
            "granularity",
            "retention",
        }

    def test_symbols_match_paper_notation(self):
        assert Dimension.PURPOSE.symbol == "Pr"
        assert Dimension.VISIBILITY.symbol == "V"
        assert Dimension.GRANULARITY.symbol == "G"
        assert Dimension.RETENTION.symbol == "R"

    def test_purpose_is_not_ordered(self):
        assert not Dimension.PURPOSE.is_ordered

    def test_other_dimensions_are_ordered(self):
        for dim in (Dimension.VISIBILITY, Dimension.GRANULARITY, Dimension.RETENTION):
            assert dim.is_ordered

    def test_ordered_dimensions_excludes_purpose(self):
        assert Dimension.PURPOSE not in ORDERED_DIMENSIONS
        assert len(ORDERED_DIMENSIONS) == 3


class TestOrderedDomain:
    @pytest.fixture()
    def domain(self) -> OrderedDomain:
        return OrderedDomain(
            Dimension.VISIBILITY, ["none", "owner", "house", "all"]
        )

    def test_rank_of_level_name(self, domain):
        assert domain.rank_of("none") == 0
        assert domain.rank_of("all") == 3

    def test_rank_of_integer_passthrough(self, domain):
        assert domain.rank_of(2) == 2

    def test_rank_of_unknown_name_raises(self, domain):
        with pytest.raises(DomainError):
            domain.rank_of("third-party")

    def test_rank_of_out_of_range_raises(self, domain):
        with pytest.raises(DomainError):
            domain.rank_of(4)
        with pytest.raises(DomainError):
            domain.rank_of(-1)

    def test_level_of_round_trips_rank(self, domain):
        for rank, level in enumerate(domain.levels):
            assert domain.level_of(rank) == level
            assert domain.rank_of(level) == rank

    def test_level_of_out_of_range_raises(self, domain):
        with pytest.raises(DomainError):
            domain.level_of(99)

    def test_max_rank(self, domain):
        assert domain.max_rank == 3

    def test_len_and_iter(self, domain):
        assert len(domain) == 4
        assert list(domain) == ["none", "owner", "house", "all"]

    def test_contains_names_and_ranks(self, domain):
        assert "owner" in domain
        assert "nope" not in domain
        assert 0 in domain
        assert 3 in domain
        assert 4 not in domain
        assert True not in domain  # booleans are not ranks

    def test_clamp(self, domain):
        assert domain.clamp(-5) == 0
        assert domain.clamp(99) == 3
        assert domain.clamp(2) == 2

    def test_purpose_domain_rejected(self):
        with pytest.raises(ValidationError):
            OrderedDomain(Dimension.PURPOSE, ["a", "b"])

    def test_empty_ladder_rejected(self):
        with pytest.raises(ValidationError):
            OrderedDomain(Dimension.VISIBILITY, [])

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValidationError):
            OrderedDomain(Dimension.VISIBILITY, ["a", "b", "a"])

    def test_blank_level_rejected(self):
        with pytest.raises(ValidationError):
            OrderedDomain(Dimension.VISIBILITY, ["a", "  "])

    def test_equality_and_hash(self):
        a = OrderedDomain(Dimension.VISIBILITY, ["x", "y"])
        b = OrderedDomain(Dimension.VISIBILITY, ["x", "y"])
        c = OrderedDomain(Dimension.VISIBILITY, ["x", "z"])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_non_dimension_rejected(self):
        with pytest.raises(ValidationError):
            OrderedDomain("visibility", ["a"])  # type: ignore[arg-type]


class TestUnboundedRetention:
    @pytest.fixture()
    def domain(self) -> UnboundedRetention:
        return UnboundedRetention()

    def test_dimension_is_retention(self, domain):
        assert domain.dimension is Dimension.RETENTION

    def test_any_non_negative_int_is_valid(self, domain):
        assert domain.rank_of(0) == 0
        assert domain.rank_of(10_000) == 10_000

    def test_negative_rejected(self, domain):
        with pytest.raises(ValidationError):
            domain.rank_of(-1)

    def test_names_rejected(self, domain):
        with pytest.raises(DomainError):
            domain.rank_of("forever")

    def test_no_max_rank(self, domain):
        assert domain.max_rank is None

    def test_clamp_floors_at_zero_only(self, domain):
        assert domain.clamp(-3) == 0
        assert domain.clamp(123456) == 123456

    def test_contains(self, domain):
        assert 5 in domain
        assert -1 not in domain
        assert "x" not in domain
        assert True not in domain

    def test_level_of_is_stringified_rank(self, domain):
        assert domain.level_of(12) == "12"

"""E9 — the game-theoretic extension: what different houses leave on the table.

Sections 9-10 sketch the game the model enables.  This bench plays three
house strategies against the same population and compares outcomes:

* **best response** (full information — the house simulates every level
  before committing; only possible *because* the violation model makes
  defaults predictable);
* **greedy** (myopic — widen until the last move hurt; overshoots once);
* **cautious** (attrition budget — stops at 10% churn).

Assertions are ordering claims: full information weakly dominates the
myopic equilibrium utility, and the cautious house never exceeds its
churn budget before stopping.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.game import (
    CautiousHouse,
    GreedyWidening,
    best_response,
    play_widening_game,
)
from repro.simulation import WideningStep

from conftest import emit


def test_strategy_comparison(benchmark, crm_200):
    scenario = crm_200
    step = WideningStep.uniform(1)

    def play_all():
        response = best_response(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=6,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        greedy_trace = play_widening_game(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            GreedyWidening(step),
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_round=scenario.extra_utility_per_step,
        )
        cautious_trace = play_widening_game(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            CautiousHouse(step, attrition_budget=0.10),
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_round=scenario.extra_utility_per_step,
        )
        return response, greedy_trace, cautious_trace

    response, greedy_trace, cautious_trace = benchmark(play_all)

    greedy_eq = greedy_trace.equilibrium_round()
    cautious_eq = cautious_trace.equilibrium_round()
    initial = len(scenario.population)
    rows = [
        [
            "best response (full info)",
            response.step,
            response.row.n_future,
            response.row.utility_future,
            initial - response.row.n_future,
        ],
        [
            "greedy (myopic)",
            greedy_eq.round_index,
            greedy_eq.n_remaining,
            greedy_eq.utility,
            greedy_trace.total_defaults(),
        ],
        [
            "cautious (10% churn budget)",
            cautious_eq.round_index,
            cautious_eq.n_remaining,
            cautious_eq.utility,
            cautious_trace.total_defaults(),
        ],
    ]
    emit(
        "E9: house strategies against the same population (crm, N=200)",
        format_table(
            ["strategy", "stop step", "N kept", "utility", "providers lost"],
            rows,
        ),
    )

    # Full information weakly dominates the myopic equilibrium.
    assert response.row.utility_future >= greedy_eq.utility
    # The greedy house realises at least one overshoot round unless capped:
    # its final round is never strictly better than its equilibrium round.
    assert greedy_trace.final_round.utility <= greedy_eq.utility
    # Cautious: every round it *continued from* stayed within budget.
    for game_round in cautious_trace.rounds[:-1]:
        lost = initial - game_round.n_remaining
        assert lost / initial <= 0.10 + 1e-9
    # And the cautious house keeps more providers than the greedy one.
    assert cautious_eq.n_remaining >= greedy_eq.n_remaining

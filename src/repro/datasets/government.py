"""Government-records scenario: a registry with citizens who cannot leave.

The introduction lists government records among the domains where the
model applies — with a twist that stresses a different corner of the
model: participation is *not* fully voluntary.  We model that as a
population in which a configurable fraction of citizens is **captive**
(default threshold ``v_i = inf``: whatever the violation, they cannot
default), while the rest can opt out of non-mandatory programmes.

Consequences the tests pin down:

* ``P(W)`` is unaffected by captivity — violations are violations;
* ``P(Default)`` is *suppressed* relative to an otherwise identical
  voluntary population, so Section 9's feedback loop is weakened: the
  registry can widen with far less economic push-back, which is exactly
  the policy concern the paper's transparency agenda answers (the
  violations remain auditable even when defaulting is impossible).

Utility here is non-commercial (Section 9: "public safety, public
security or public health"), expressed as cost savings per citizen.
"""

from __future__ import annotations

import math

from .._validation import check_probability
from ..core.policy import HousePolicy
from ..core.population import Population, Provider
from ..simulation.population import (
    PopulationSpec,
    WestinSegment,
    generate_population,
)
from ..taxonomy.builder import Taxonomy, TaxonomyBuilder
from .scenario import Scenario

#: Attribute -> social sensitivity (tax and health data most sensitive).
GOVERNMENT_ATTRIBUTES: dict[str, float] = {
    "name": 1.0,
    "address": 2.0,
    "tax_return": 5.0,
    "health_record": 5.0,
    "vehicle_registration": 1.0,
}

#: Purposes a registry collects for.
GOVERNMENT_PURPOSES: tuple[str, ...] = (
    "administration",
    "law-enforcement",
    "statistics",
)


def government_taxonomy() -> Taxonomy:
    """Registry-specific ladders (agency-sharing visibility rungs)."""
    return (
        TaxonomyBuilder()
        .with_purposes(GOVERNMENT_PURPOSES)
        .with_visibility(
            [
                "none",
                "citizen",
                "issuing-agency",
                "other-agencies",
                "contractors",
                "public",
            ]
        )
        .with_granularity(["none", "existential", "category", "range", "specific"])
        .with_retention(
            ["none", "case", "year", "decade", "permanent"]
        )
        .build()
    )


def government_policy(taxonomy: Taxonomy | None = None) -> HousePolicy:
    """The registry's baseline policy."""
    taxonomy = taxonomy if taxonomy is not None else government_taxonomy()
    entries = []
    for attribute in GOVERNMENT_ATTRIBUTES:
        entries.append(
            (
                attribute,
                taxonomy.tuple(
                    "administration", "issuing-agency", "specific", "decade"
                ),
            )
        )
    entries.append(
        (
            "tax_return",
            taxonomy.tuple("statistics", "issuing-agency", "range", "decade"),
        )
    )
    entries.append(
        (
            "health_record",
            taxonomy.tuple("statistics", "issuing-agency", "category", "decade"),
        )
    )
    return HousePolicy(entries, name="registry-baseline")


def government_segments() -> tuple[WestinSegment, ...]:
    """Westin segments calibrated to the registry's severity scale."""
    return (
        WestinSegment(
            name="fundamentalist",
            fraction=0.25,
            tightness=0.7,
            value_sensitivity=(2.0, 4.0),
            dimension_sensitivity=(2.0, 5.0),
            threshold=(700.0, 2400.0),
            headroom=(0, 0),
        ),
        WestinSegment(
            name="pragmatist",
            fraction=0.57,
            tightness=0.4,
            value_sensitivity=(1.0, 3.0),
            dimension_sensitivity=(1.0, 3.0),
            threshold=(200.0, 1200.0),
            headroom=(0, 2),
        ),
        WestinSegment(
            name="unconcerned",
            fraction=0.18,
            tightness=0.1,
            value_sensitivity=(0.5, 1.5),
            dimension_sensitivity=(0.5, 1.5),
            threshold=(350.0, 1800.0),
            headroom=(1, 4),
        ),
    )


def government_scenario(
    n_providers: int = 400,
    *,
    captive_fraction: float = 0.7,
    seed: int = 31,
) -> Scenario:
    """A registry scenario with a captive majority.

    Parameters
    ----------
    captive_fraction:
        Share of citizens who cannot default (threshold forced to
        infinity), applied deterministically to the first
        ``round(captive_fraction * n)`` generated citizens **after** the
        seeded shuffle, so captivity is independent of segment.
    """
    captive_fraction = check_probability(captive_fraction, "captive_fraction")
    taxonomy = government_taxonomy()
    policy = government_policy(taxonomy)
    spec = PopulationSpec(
        taxonomy=taxonomy,
        attributes=GOVERNMENT_ATTRIBUTES,
        n_providers=n_providers,
        segments=government_segments(),
        seed=seed,
        id_prefix="citizen-",
        anchor_policy=policy,
    )
    generated = generate_population(spec)
    n_captive = round(captive_fraction * len(generated))
    citizens = []
    for index, provider in enumerate(generated):
        if index < n_captive:
            citizens.append(
                Provider(
                    preferences=provider.preferences,
                    sensitivity=provider.sensitivity,
                    threshold=math.inf,
                    segment=provider.segment,
                )
            )
        else:
            citizens.append(provider)
    return Scenario(
        name="government",
        taxonomy=taxonomy,
        policy=policy,
        population=Population(
            citizens, attribute_sensitivities=GOVERNMENT_ATTRIBUTES
        ),
        per_provider_utility=3.0,
        extra_utility_per_step=0.5,
    )

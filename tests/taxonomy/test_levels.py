"""Unit tests for the canonical ladders."""

from __future__ import annotations

from repro.core import Dimension
from repro.taxonomy import (
    GRANULARITY_LEVELS,
    RETENTION_LEVELS,
    VISIBILITY_LEVELS,
    granularity_domain,
    retention_domain,
    visibility_domain,
)
from repro.taxonomy.levels import PURPOSE_LEVELS, purpose_breadth_chain


class TestCanonicalLadders:
    def test_visibility_order(self):
        assert VISIBILITY_LEVELS == ("none", "owner", "house", "third-party", "all")

    def test_granularity_order(self):
        assert GRANULARITY_LEVELS == ("none", "existential", "partial", "specific")

    def test_retention_order(self):
        assert RETENTION_LEVELS[0] == "none"
        assert RETENTION_LEVELS[-1] == "indefinite"

    def test_none_is_always_rank_zero(self):
        assert visibility_domain().rank_of("none") == 0
        assert granularity_domain().rank_of("none") == 0
        assert retention_domain().rank_of("none") == 0

    def test_domains_bind_correct_dimensions(self):
        assert visibility_domain().dimension is Dimension.VISIBILITY
        assert granularity_domain().dimension is Dimension.GRANULARITY
        assert retention_domain().dimension is Dimension.RETENTION

    def test_factories_return_fresh_objects(self):
        assert visibility_domain() is not visibility_domain()
        assert visibility_domain() == visibility_domain()

    def test_third_party_more_exposed_than_house(self):
        domain = visibility_domain()
        assert domain.rank_of("third-party") > domain.rank_of("house")

    def test_specific_most_exposed_granularity(self):
        domain = granularity_domain()
        assert domain.rank_of("specific") == domain.max_rank


class TestPurposeBreadthChain:
    def test_is_chain(self):
        assert purpose_breadth_chain().is_chain()

    def test_order_matches_levels(self):
        order = purpose_breadth_chain().total_order()
        for rank, name in enumerate(PURPOSE_LEVELS):
            assert order[name] == rank

    def test_any_is_broadest(self):
        lattice = purpose_breadth_chain()
        assert all(
            lattice.leq(purpose, "any") for purpose in lattice.purposes
        )

"""End-to-end tests for the command-line interface.

The CLI is exercised through ``main(argv)`` with real JSON documents on
disk (the Section 8 example, expressed in the policy language), checking
output, exit codes, and the sqlite subcommands.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main

TAXONOMY = {
    "purposes": ["pr"],
    "visibility": [f"v{i}" for i in range(6)],
    "granularity": [f"g{i}" for i in range(6)],
    "retention": [f"r{i}" for i in range(6)],
}

POLICY = {
    "name": "section-8",
    "rules": [
        {
            "attribute": "Weight",
            "purpose": "pr",
            "visibility": 2,
            "granularity": 2,
            "retention": 2,
        },
        {
            "attribute": "Age",
            "purpose": "pr",
            "visibility": 1,
            "granularity": 1,
            "retention": 1,
        },
    ],
}


def _provider(name, ranks, sigma, threshold):
    v, g, r = ranks
    return {
        "provider": name,
        "threshold": threshold,
        "preferences": [
            {
                "attribute": "Weight",
                "purpose": "pr",
                "visibility": v,
                "granularity": g,
                "retention": r,
            },
            {
                "attribute": "Age",
                "purpose": "pr",
                "visibility": 2,
                "granularity": 2,
                "retention": 2,
            },
        ],
        "sensitivities": {
            "Weight": {
                "value": sigma[0],
                "visibility": sigma[1],
                "granularity": sigma[2],
                "retention": sigma[3],
            }
        },
    }


POPULATION = {
    "attribute_sensitivities": {"Weight": 4.0, "Age": 1.0},
    "providers": [
        _provider("Alice", (4, 3, 5), (1, 1, 2, 1), 10),
        _provider("Ted", (4, 1, 4), (3, 1, 5, 2), 50),
        _provider("Bob", (2, 1, 1), (4, 1, 3, 2), 100),
    ],
}


@pytest.fixture()
def documents(tmp_path):
    paths = {}
    for name, payload in (
        ("taxonomy", TAXONOMY),
        ("policy", POLICY),
        ("population", POPULATION),
    ):
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(payload))
        paths[name] = str(path)
    return paths


def _base_args(documents):
    return [
        "--taxonomy",
        documents["taxonomy"],
        "--policy",
        documents["policy"],
        "--population",
        documents["population"],
    ]


class TestEvaluate:
    def test_table_output(self, documents, capsys):
        assert main(["evaluate", *_base_args(documents)]) == 0
        out = capsys.readouterr().out
        assert "P(W)       = 0.6667" in out
        assert "P(Default) = 0.3333" in out
        assert "Violations = 140" in out

    def test_json_output(self, documents, capsys):
        assert main(["evaluate", *_base_args(documents), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_violations"] == 140.0
        providers = {p["provider"]: p for p in payload["providers"]}
        assert providers["Ted"]["defaulted"] is True
        assert providers["Bob"]["violation"] == 80.0


class TestCertify:
    def test_satisfied_exit_zero(self, documents, capsys):
        code = main(["certify", *_base_args(documents), "--alpha", "0.7"])
        assert code == 0
        assert "SATISFIED" in capsys.readouterr().out

    def test_violated_exit_one(self, documents, capsys):
        code = main(["certify", *_base_args(documents), "--alpha", "0.5"])
        assert code == 1
        assert "VIOLATED" in capsys.readouterr().out

    def test_json_document(self, documents, capsys):
        main(["certify", *_base_args(documents), "--alpha", "0.7", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["satisfied"] is True
        assert payload["violated_providers"] == ["Ted", "Bob"]


class TestSweep:
    def test_ledger(self, documents, capsys):
        code = main(
            [
                "sweep",
                *_base_args(documents),
                "--steps",
                "2",
                "--utility",
                "10",
                "--extra-per-step",
                "6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "expansion sweep" in out
        assert "peak at step" in out

    def test_json(self, documents, capsys):
        main(
            ["sweep", *_base_args(documents), "--steps", "1", "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["step"] == 0
        assert len(payload) == 2


class TestWhatIf:
    def test_candidate_comparison(self, documents, tmp_path, capsys):
        candidate = dict(POLICY)
        candidate["name"] = "wider"
        candidate = json.loads(json.dumps(candidate))
        candidate["rules"][0]["granularity"] = 3
        path = tmp_path / "candidate.json"
        path.write_text(json.dumps(candidate))
        code = main(
            [
                "whatif",
                *_base_args(documents),
                "--candidate",
                str(path),
                "--utility",
                "10",
                "--extra",
                "6",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["candidate"] == "wider"
        assert payload["violation_probability_delta"] >= 0


class TestValidate:
    def test_valid_documents(self, documents, capsys):
        code = main(
            [
                "validate",
                "--taxonomy",
                documents["taxonomy"],
                "--policy",
                documents["policy"],
                "--population",
                documents["population"],
            ]
        )
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid_policy_exit_one(self, documents, tmp_path, capsys):
        bad = json.loads(json.dumps(POLICY))
        bad["rules"][0]["purpose"] = "resale"
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        code = main(
            [
                "validate",
                "--taxonomy",
                documents["taxonomy"],
                "--policy",
                str(path),
            ]
        )
        assert code == 1
        assert "PROBLEM" in capsys.readouterr().out


class TestDatabaseCommands:
    def test_init_report_evict_cycle(self, documents, tmp_path, capsys):
        db_path = str(tmp_path / "ppdb.sqlite")
        assert (
            main(
                [
                    "init-db",
                    *_base_args(documents),
                    "--database",
                    db_path,
                ]
            )
            == 0
        )
        assert "created" in capsys.readouterr().out

        assert main(["db-report", db_path]) == 0
        out = capsys.readouterr().out
        assert "P(W)=0.6667" in out

        assert main(["db-evict", db_path]) == 0
        assert "Ted" in capsys.readouterr().out

        assert main(["db-evict", db_path]) == 0
        assert "no defaulted providers" in capsys.readouterr().out


class TestForecast:
    def test_forecast_from_history(self, documents, tmp_path, capsys):
        # History: the baseline, then a granularity widening that evicts
        # Ted.  Candidate: the same widening (in-sample -> exact).
        widened = json.loads(json.dumps(POLICY))
        widened["name"] = "wider"
        widened["rules"][0]["granularity"] = 3
        widened_path = tmp_path / "wider.json"
        widened_path.write_text(json.dumps(widened))
        code = main(
            [
                "forecast",
                "--taxonomy",
                documents["taxonomy"],
                "--population",
                documents["population"],
                "--history",
                documents["policy"],
                str(widened_path),
                "--candidate",
                str(widened_path),
                "--utility",
                "10",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # Ted departed at the baseline already (60 > 50); the widening
        # raises Bob to 60 + 2*4*4*3 - 48 = 128 > 100, so he goes too.
        assert payload["certain_defaults"] == ["Ted", "Bob"]
        assert payload["expected_defaults"] == 2.0
        # N 3 -> 1: T* = 10 * (3/1 - 1) = 20.
        assert payload["break_even_extra_utility"] == pytest.approx(20.0)

    def test_forecast_text_output(self, documents, capsys):
        code = main(
            [
                "forecast",
                "--taxonomy",
                documents["taxonomy"],
                "--population",
                documents["population"],
                "--history",
                documents["policy"],
                "--candidate",
                documents["policy"],
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # Ted already defaults at the baseline policy (Violation 60 > 50).
        assert "expected 1.0 defaults" in out


class TestErrorHandling:
    def test_missing_file_exit_two(self, documents, capsys):
        code = main(
            [
                "evaluate",
                "--taxonomy",
                "/nonexistent.json",
                "--policy",
                documents["policy"],
                "--population",
                documents["population"],
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_json_exit_two(self, documents, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        code = main(
            [
                "evaluate",
                "--taxonomy",
                str(path),
                "--policy",
                documents["policy"],
                "--population",
                documents["population"],
            ]
        )
        assert code == 2

    def test_model_error_exit_two(self, documents, tmp_path, capsys):
        bad = json.loads(json.dumps(POLICY))
        bad["rules"][0]["purpose"] = "resale"  # unknown purpose
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        code = main(
            [
                "evaluate",
                "--taxonomy",
                documents["taxonomy"],
                "--policy",
                str(path),
                "--population",
                documents["population"],
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

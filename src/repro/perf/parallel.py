"""Parallel sharded evaluation over shared-memory compiled populations.

:class:`ShardExecutor` is the machine-wide counterpart of the in-process
:class:`~repro.perf.batch.BatchViolationEngine`.  It exports a
:class:`~repro.perf.compiled.CompiledPopulation`'s policy-independent
arrays into one :class:`~repro.perf.shm.SharedArrayPack`, partitions the
provider rows into contiguous shards (:func:`~repro.perf.shards.shard_bounds`),
and fans ``(policy, shard)`` tasks across a ``ProcessPoolExecutor``.
Workers attach the block zero-copy, rebuild shard-restricted column
views (:class:`_ShardView`), and run the *same* kernels as the serial
engine — per-provider sums inside a shard perform identical floating
point operations in identical order, so merged reports are bit-for-bit
equal to serial ones (``tests/perf/test_parallel_parity.py``).

Execution model
---------------
* **Evaluate** — each shard returns raw ``(violations, counts)`` arrays;
  the parent concatenates them in shard order (deterministic regardless
  of completion order) and assembles one
  :class:`~repro.perf.batch.BatchReport` through the shared
  :func:`~repro.perf.batch.assemble_report`.  Tasks carry a column
  decomposition, not a pickled policy: the parent keeps a
  :class:`~repro.perf.batch.ColumnPlan` naming the policy whose full
  decomposition the workers last saw, and a consecutive policy sharing
  that base ships only its changed ``(attribute, purpose)`` columns
  (``parallel.delta_tasks``) — a worker holding the base patches its
  resident shard arrays via the serial engine's column-delta kernels and
  reports how many columns it rescored (``parallel.columns_rescored``).
  A worker without the base (fresh fork, evicted cache) returns a miss
  sentinel and the shard is replayed with the full decomposition
  (``parallel.base_replays``); merged results are bit-for-bit identical
  either way.
* **Certify with early exit** — shards walk the policy's columns and
  share an "already failed" flag: a shard whose *local* violated count
  alone exceeds the global ``alpha x N`` budget trips the flag, other
  shards abort between columns, and the merged certificate is a
  non-exhaustive refutation (its verdict always matches the serial
  engine's; the partial violated set may differ, as documented for the
  serial early-exit path too).
* **Observability** — when the parent has an active observer, each task
  runs under a fresh worker-side observer and ships back a metrics
  snapshot (with raw timer samples); the parent merges them via
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`, so
  ``--metrics`` output stays complete under parallelism.  Worker span
  trees are process-local and are not reparented.

Failure model: a worker dying mid-task (crash, OOM kill, or the chaos
suite's scripted ``kill`` fault via ``worker_faults``) surfaces as
:class:`~repro.exceptions.ParallelExecutionError` (CLI code ``PVL907``)
after the executor has shut the pool down and unlinked its
shared-memory block — errors never leak segments.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from typing import Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from .._validation import check_probability
from ..core.default import DefaultModel
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import SensitivityModel
from ..exceptions import ParallelExecutionError, ProcessKilled, ValidationError
from ..obs import active_observer, observed
from .batch import (
    BatchReport,
    ColumnDelta,
    ColumnPlan,
    PolicyFingerprint,
    assemble_report,
    column_contribution,
    plan_delta,
    policy_columns,
    policy_fingerprint,
)
from .compiled import CompiledColumn, CompiledPopulation
from .shards import shard_bounds
from .shm import ArrayLayout, SharedArrayPack, attach_arrays

#: The fault-injection site visited once per worker task; a ``kill``
#: fault here terminates the worker process for real (SIGKILL), which is
#: how the chaos suite exercises the broken-pool error path.
TASK_FAULT_SITE = "parallel.task"


def _static_certificate(
    compiled: CompiledPopulation,
    policy: HousePolicy,
    alpha: float,
    *,
    implicit_zero: bool,
    obs_counter: str = "parallel.static_certifications",
) -> PPDBCertificate:
    """The parent-side static certification path, shared by executors.

    Derives the certificate from the lint layer's severity intervals over
    the compiled population — no shard tasks are dispatched at all.
    Identical to the serial engine's ``certify(..., static=True)``.
    """
    from ..lint.intervals import interval_analysis

    alpha = check_probability(alpha, "alpha")
    if len(compiled) == 0:
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=0.0,
            satisfied=True,
            n_providers=0,
            violated_providers=(),
            policy_name=policy.name,
        )
    intervals = interval_analysis(
        policy,
        compiled.population,
        sensitivities=compiled.sensitivities,
        default_model=compiled.default_model,
        implicit_zero=implicit_zero,
        weight_bounds="provider",
    )
    obs = active_observer()
    if obs is not None:
        obs.inc(obs_counter)
    return intervals.certificate(alpha)


def resolve_workers(workers: int) -> int:
    """The effective worker count for a ``workers=N`` execution policy.

    ``0`` means auto: the number of CPUs available to this process
    (``sched_getaffinity`` where supported, ``cpu_count`` otherwise).
    Negative or non-integer values are rejected.
    """
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValidationError(
            f"workers must be an int, got {type(workers).__name__}"
        )
    if workers < 0:
        raise ValidationError("workers must be >= 0 (0 = one per CPU)")
    if workers == 0:
        return max(1, available_cpus())
    return workers


def available_cpus() -> int:
    """CPUs usable by this process (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


class _ShardView:
    """A :class:`~repro.perf.batch.CompiledLike` view over shared arrays.

    Restricts the exported compilation to population rows ``[lo, hi)``.
    Because every exported row/provider array is non-decreasing (rows
    are emitted in population order), restriction is a ``searchsorted``
    slice; provider indices are re-based to shard-local rows so the
    batch kernels' ``bincount`` calls stay dense.
    """

    __slots__ = (
        "_arrays",
        "_lo",
        "_hi",
        "_ids",
        "_segments",
        "_thresholds",
        "_strict",
        "_attr_index",
        "_col_index",
        "_columns",
        "_zero_weights",
    )

    def __init__(
        self,
        meta: dict[str, Any],
        arrays: dict[str, np.ndarray],
        lo: int,
        hi: int,
    ) -> None:
        self._arrays = arrays
        self._lo = int(lo)
        self._hi = int(hi)
        self._ids: tuple[Hashable, ...] = tuple(meta["ids"][lo:hi])
        self._segments: tuple[str | None, ...] = tuple(meta["segments"][lo:hi])
        self._thresholds = arrays["thresholds"][lo:hi]
        self._strict = bool(meta["strict"])
        self._attr_index = {a: i for i, a in enumerate(meta["attributes"])}
        self._col_index = {
            tuple(k): j for j, k in enumerate(meta["column_keys"])
        }
        self._columns: dict[tuple[str, str], CompiledColumn] = {}
        self._zero_weights: np.ndarray | None = None

    def __len__(self) -> int:
        return self._hi - self._lo

    @property
    def ids(self) -> tuple[Hashable, ...]:
        return self._ids

    @property
    def segments(self) -> tuple[str | None, ...]:
        return self._segments

    @property
    def thresholds(self) -> np.ndarray:
        return self._thresholds

    @property
    def strict(self) -> bool:
        return self._strict

    def column(self, attribute: str, purpose: str) -> CompiledColumn:
        key = (attribute, purpose)
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        lo, hi = self._lo, self._hi
        attr_slot = self._attr_index.get(attribute)
        if attr_slot is None:
            # Attribute nobody supplied: the column has no explicit rows
            # and no implicit completion, so the weight values are never
            # read — a shared zero tensor keeps the gathers well-formed.
            weights = self._zeros()
            supplied = np.empty(0, dtype=np.int64)
        else:
            weights = self._arrays[f"w{attr_slot}"][lo:hi]
            supplied_all = self._arrays[f"p{attr_slot}"]
            s0, s1 = np.searchsorted(supplied_all, (lo, hi))
            supplied = supplied_all[s0:s1] - lo
        col_slot = self._col_index.get(key)
        if col_slot is None:
            row_providers = np.empty(0, dtype=np.int64)
            row_ranks = np.empty((0, 3), dtype=np.int64)
        else:
            providers_all = self._arrays[f"cp{col_slot}"]
            r0, r1 = np.searchsorted(providers_all, (lo, hi))
            row_providers = providers_all[r0:r1] - lo
            row_ranks = self._arrays[f"cr{col_slot}"][r0:r1]
        row_weights = weights[row_providers]
        if supplied.size == 0:
            implicit_providers = np.empty(0, dtype=np.int64)
        else:
            holders = np.unique(row_providers)
            if holders.size:
                implicit_providers = supplied[
                    np.isin(supplied, holders, invert=True)
                ]
            else:
                implicit_providers = supplied
        column = CompiledColumn(
            attribute=attribute,
            purpose=purpose,
            row_providers=row_providers,
            row_ranks=row_ranks,
            row_weights=row_weights,
            implicit_providers=implicit_providers,
            implicit_weights=weights[implicit_providers],
        )
        self._columns[key] = column
        return column

    def _zeros(self) -> np.ndarray:
        if self._zero_weights is None:
            self._zero_weights = np.zeros((len(self), 3), dtype=np.float64)
        return self._zero_weights


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

#: Per-worker state installed by :func:`_init_worker`.
_WORKER: dict[str, Any] | None = None


def _init_worker(
    shm_name: str,
    layout: ArrayLayout,
    meta: dict[str, Any],
    implicit_zero: bool,
    flag: Any,
    fault_specs: tuple[Any, ...],
    fault_seed: int,
) -> None:
    global _WORKER
    try:
        segment, arrays = attach_arrays(shm_name, layout)
    except FileNotFoundError as exc:
        raise ParallelExecutionError(
            f"shared-memory segment {shm_name!r} has vanished"
        ) from exc
    plan = None
    if fault_specs:
        # A fresh plan built *after* the fork is owned by this worker,
        # so it is armed — unlike any plan inherited from the parent
        # (see FaultPlan's fork awareness).
        from ..resilience.faults import FaultPlan

        plan = FaultPlan(fault_specs, seed=fault_seed)
    _WORKER = {
        "segment": segment,
        "arrays": arrays,
        "meta": meta,
        "implicit_zero": bool(implicit_zero),
        "flag": flag,
        "engines": {},
        "plan": plan,
    }


def _worker_state() -> dict[str, Any]:
    state = _WORKER
    if state is None:  # pragma: no cover - initializer always runs first
        raise ParallelExecutionError("worker used before initialization")
    return state


def _visit_task_site(state: dict[str, Any]) -> None:
    plan = state["plan"]
    if plan is None:
        return
    try:
        plan.check(TASK_FAULT_SITE)
    except ProcessKilled:
        # Make the scripted death real: the parent must observe an
        # actual broken pool, not a picklable exception.
        os.kill(os.getpid(), signal.SIGKILL)


def _shard_engine(state: dict[str, Any], lo: int, hi: int):
    engines = state["engines"]
    engine = engines.get((lo, hi))
    if engine is None:
        # Imported lazily: batch imports this module's sibling package
        # members at module scope and workers only pay it once.
        from .batch import BatchViolationEngine

        view = _ShardView(state["meta"], state["arrays"], lo, hi)
        engine = BatchViolationEngine(
            view, implicit_zero=state["implicit_zero"]
        )
        engines[(lo, hi)] = engine
    return engine


#: A worker eval result: ``(lo, violations, counts, rescored, snapshot)``.
#: ``rescored`` counts the columns the shard engine actually recomputed;
#: a delta task that found no resident base returns the miss sentinel
#: ``(lo, None, None, -1, snapshot)`` and the parent replays the shard
#: with a full decomposition.
_EvalResult = tuple[
    int, "np.ndarray | None", "np.ndarray | None", int, "dict[str, Any] | None"
]


def _eval_full_task(
    fingerprint: PolicyFingerprint,
    columns: Mapping[tuple[str, str], tuple],
    lo: int,
    hi: int,
    collect_obs: bool,
) -> _EvalResult:
    """Evaluate one shard from a full column decomposition.

    Establishes (or refreshes) the shard engine's resident base, so a
    subsequent delta task against *fingerprint* can patch instead of
    recompute.  The shard engine still applies its own delta cache when
    it already holds a neighbouring base, so even "full" tasks pay only
    the changed columns on a warm worker.
    """
    state = _worker_state()
    _visit_task_site(state)
    engine = _shard_engine(state, lo, hi)
    if collect_obs:
        with observed() as obs:
            violations, counts, rescored = engine.evaluate_decomposed(
                fingerprint, columns
            )
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        violations, counts, rescored = engine.evaluate_decomposed(
            fingerprint, columns
        )
        snapshot = None
    return lo, violations, counts, rescored, snapshot


def _eval_delta_task(
    base_fingerprint: PolicyFingerprint,
    fingerprint: PolicyFingerprint,
    changed: ColumnDelta,
    lo: int,
    hi: int,
    collect_obs: bool,
) -> _EvalResult:
    """Patch one shard's resident base with the changed columns only.

    The delta protocol's O(changed columns) fast path: the payload
    carries no policy and no unchanged columns.  When this worker's
    shard engine does not hold *base_fingerprint* (fresh fork, evicted
    base, or a pool where another worker owns the shard) the miss
    sentinel is returned and the parent resubmits a full task.
    """
    state = _worker_state()
    _visit_task_site(state)
    engine = _shard_engine(state, lo, hi)
    if collect_obs:
        with observed() as obs:
            patched = engine.apply_column_delta(
                base_fingerprint, fingerprint, changed
            )
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        patched = engine.apply_column_delta(
            base_fingerprint, fingerprint, changed
        )
        snapshot = None
    if patched is None:
        return lo, None, None, -1, snapshot
    violations, counts, rescored = patched
    return lo, violations, counts, rescored, snapshot


def _certify_task(
    policy: HousePolicy,
    lo: int,
    hi: int,
    budget: float,
    collect_obs: bool,
) -> tuple[int, np.ndarray, bool, dict[str, Any] | None]:
    state = _worker_state()
    _visit_task_site(state)
    if collect_obs:
        with observed() as obs:
            counts, exhausted = _certify_walk(state, policy, lo, hi, budget)
            snapshot = obs.registry.snapshot(include_samples=True)
    else:
        counts, exhausted = _certify_walk(state, policy, lo, hi, budget)
        snapshot = None
    return lo, counts, exhausted, snapshot


def _certify_walk(
    state: dict[str, Any],
    policy: HousePolicy,
    lo: int,
    hi: int,
    budget: float,
) -> tuple[np.ndarray, bool]:
    """Column walk with the shared "already failed" flag.

    Accumulates this shard's finding counts column by column; trips the
    flag as soon as the shard-local violated count *alone* blows the
    global budget (a sufficient refutation), and aborts between columns
    once any shard has tripped it.
    """
    view = _ShardView(state["meta"], state["arrays"], lo, hi)
    implicit_zero = state["implicit_zero"]
    flag = state["flag"]
    counts = np.zeros(len(view), dtype=np.float64)
    for key, entries in policy_columns(policy).items():
        if flag.value:
            return counts, False
        contribution = column_contribution(
            view, key, entries, implicit_zero=implicit_zero
        )
        counts += contribution[1]
        if int((counts > 0).sum()) > budget:
            with flag.get_lock():
                flag.value = 1
            return counts, False
    return counts, True


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ShardExecutor:
    """Fan ``(policy, shard)`` tasks over a worker pool; merge exactly.

    Mirrors :class:`~repro.perf.batch.BatchViolationEngine`'s public
    surface (``evaluate`` / ``evaluate_policies`` / ``evaluate_arrays``
    / ``certify`` / ``report``) so callers can hold either behind the
    ``workers=N`` execution policy (:func:`make_batch_engine`).  The
    executor owns one shared-memory block for the life of the pool;
    always :meth:`close` it (or use ``with``) — segments outlive the
    process otherwise.

    Parameters
    ----------
    population:
        A :class:`~repro.core.population.Population` (compiled here) or
        a ready :class:`~repro.perf.compiled.CompiledPopulation`.
    workers:
        Worker processes (``0`` = one per CPU).  Also the default shard
        count.
    shards:
        Override the shard count (e.g. more shards than workers for
        better load balancing on skewed populations).
    sensitivities, default_model, implicit_zero, max_cached_reports:
        As for the serial engine.
    worker_faults, fault_seed:
        Chaos hook: :class:`~repro.resilience.faults.FaultSpec`\\ s for a
        *fresh* plan built inside each worker after the fork (inherited
        parent plans are disarmed in children by design).  A ``kill``
        fault at :data:`TASK_FAULT_SITE` terminates the worker with
        SIGKILL, exercising the real broken-pool path.
    column_delta:
        Whether the worker column-delta protocol is enabled (default).
        When on, consecutive policies sharing a worker-resident base ship
        only their changed ``(attribute, purpose)`` columns per shard
        task; a worker without the base returns a miss sentinel and the
        shard is replayed with the full decomposition
        (``parallel.base_replays``).  Pass ``False`` to force every task
        to carry the full decomposition — the parity suites use this as
        the reference fan-out.
    """

    def __init__(
        self,
        population: Population | CompiledPopulation,
        *,
        workers: int = 0,
        shards: int | None = None,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
        max_cached_reports: int = 128,
        worker_faults: Iterable[Any] = (),
        fault_seed: int = 0,
        column_delta: bool = True,
    ) -> None:
        count = resolve_workers(workers)
        if isinstance(population, Population):
            compiled = CompiledPopulation(
                population,
                sensitivities=sensitivities,
                default_model=default_model,
            )
        elif isinstance(population, CompiledPopulation):
            if sensitivities is not None or default_model is not None:
                raise ValidationError(
                    "model overrides must be given when compiling, not when "
                    "wrapping an already-compiled population"
                )
            compiled = population
        else:
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        if shards is not None and shards < 1:
            raise ValidationError("shards must be >= 1")
        if max_cached_reports < 1:
            raise ValidationError("max_cached_reports must be >= 1")
        self._compiled = compiled
        self._implicit_zero = bool(implicit_zero)
        self._workers = count
        self._bounds = shard_bounds(
            len(compiled), shards if shards is not None else count
        )
        meta, arrays = compiled.shared_state()
        self._meta = meta
        self._pack = SharedArrayPack(arrays)
        # Merged report plus the raw (violations, counts) arrays, so
        # evaluate_arrays repeats are served parent-side without a
        # fan-out, exactly like the serial engine's cache.
        self._cache: dict[
            PolicyFingerprint, tuple[BatchReport, np.ndarray, np.ndarray]
        ] = {}
        self._max_cached = int(max_cached_reports)
        self._column_delta = bool(column_delta)
        # The worker delta protocol's parent-side state: the policy whose
        # full decomposition the shard workers hold as their base.
        self._plan: ColumnPlan | None = None
        self._closed = False
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else None
        context = multiprocessing.get_context(start_method)
        self._flag = context.Value("i", 0)
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=count,
                mp_context=context,
                initializer=_init_worker,
                initargs=(
                    self._pack.name,
                    self._pack.layout,
                    meta,
                    self._implicit_zero,
                    self._flag,
                    tuple(worker_faults),
                    int(fault_seed),
                ),
            )
        except Exception:
            self._pack.close()
            raise
        obs = active_observer()
        if obs is not None:
            obs.set_gauge("parallel.workers", count)
            obs.set_gauge("parallel.shards", len(self._bounds))
            obs.set_gauge("parallel.shm_bytes", self._pack.nbytes)

    # -- identity -----------------------------------------------------------

    @property
    def compiled(self) -> CompiledPopulation:
        """The compiled population backing the shared block."""
        return self._compiled

    @property
    def population(self) -> Population:
        """The underlying population."""
        return self._compiled.population

    @property
    def implicit_zero(self) -> bool:
        """Whether the implicit-zero completion is applied."""
        return self._implicit_zero

    @property
    def workers(self) -> int:
        """The worker-process count."""
        return self._workers

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """The ``(lo, hi)`` provider-row range of every shard."""
        return tuple(self._bounds)

    @property
    def segment_name(self) -> str:
        """The shared-memory segment's name (for leak diagnostics)."""
        return self._pack.name

    @property
    def cached_policies(self) -> int:
        """Number of memoised merged reports."""
        return len(self._cache)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut the pool down and unlink the shared block.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # a broken pool may refuse a clean shutdown
            pass
        self._pack.close()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # last-resort leak guard
        try:
            self.close()
        except Exception:
            pass

    # -- evaluation ---------------------------------------------------------

    def evaluate(self, policy: HousePolicy) -> BatchReport:
        """The merged :class:`BatchReport` for *policy* (cached by content)."""
        self._check_policy(policy)
        fingerprint = policy_fingerprint(policy)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.cache_hits")
            report = cached[0]
            if report.policy_name != policy.name:
                # Mirror the serial engine: a content hit reports the
                # requested policy's name (renamed same-fingerprint
                # policies, e.g. widening past saturation).
                report = self._assemble(policy.name, cached[1], cached[2])
                self._cache[fingerprint] = (report, cached[1], cached[2])
            return report
        violations, counts = self._fan_out(policy)
        report = self._assemble(policy.name, violations, counts)
        self._remember(fingerprint, report, violations, counts)
        return report

    def report(self, policy: HousePolicy) -> BatchReport:
        """Alias of :meth:`evaluate` (mirrors the serial engine)."""
        return self.evaluate(policy)

    def evaluate_arrays(self, policy: HousePolicy) -> tuple[np.ndarray, np.ndarray]:
        """Raw merged ``(violations, counts)`` arrays for *policy*.

        Served parent-side from the same cache as :meth:`evaluate` (the
        cache keeps the raw arrays alongside the merged report), so
        repeats cost no fan-out at all.  The returned arrays are cached
        state and must not be mutated.
        """
        self._check_policy(policy)
        fingerprint = policy_fingerprint(policy)
        cached = self._cache.get(fingerprint)
        if cached is not None:
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.cache_hits")
            return cached[1], cached[2]
        violations, counts = self._fan_out(policy)
        report = self._assemble(policy.name, violations, counts)
        self._remember(fingerprint, report, violations, counts)
        return violations, counts

    def evaluate_policies(
        self, policies: Iterable[HousePolicy]
    ) -> list[BatchReport]:
        """Evaluate a policy sweep with cross-policy pipelining.

        All uncached ``(policy, shard)`` tasks are submitted up front,
        so workers flow straight from one policy's shards into the
        next's while the parent merges completed ones in order.  The
        column plan is advanced at submit time, so each candidate's
        tasks carry only its delta against the previous candidate —
        the widening-path shape stays O(changed columns) per shard even
        inside one pipelined call.
        """
        policies = list(policies)
        for policy in policies:
            self._check_policy(policy)
        pending: dict[
            int, tuple[PolicyFingerprint, Mapping, list[Future]]
        ] = {}
        collect = active_observer() is not None
        self._ensure_open()
        for index, policy in enumerate(policies):
            fingerprint = policy_fingerprint(policy)
            if fingerprint in self._cache:
                continue
            columns = policy_columns(policy)
            futures = self._submit_eval(fingerprint, columns, collect)
            pending[index] = (fingerprint, columns, futures)
        reports: list[BatchReport] = []
        for index, policy in enumerate(policies):
            fingerprint = policy_fingerprint(policy)
            cached = self._cache.get(fingerprint)
            if cached is not None and index not in pending:
                reports.append(cached[0])
                continue
            fingerprint, columns, futures = pending[index]
            parts = self._finish_eval(
                fingerprint, columns, self._gather(futures), collect
            )
            violations, counts = self._merge_parts(parts)
            report = self._assemble(policy.name, violations, counts)
            self._remember(fingerprint, report, violations, counts)
            reports.append(report)
        return reports

    def adopt_plan(self, plan: ColumnPlan | None) -> None:
        """Install a previous executor's column plan as this pool's.

        The incremental engine calls this after an append/update pool
        rebuild: the plan describes the policy (not the providers), so
        the delta chain continues across the rebuild — the first
        evaluation's shard tasks still diff against the pre-rebuild
        policy, and the fresh workers' misses are replayed as ordinary
        base replays.  A no-op when the delta protocol is disabled.
        """
        if self._column_delta:
            self._plan = plan

    @property
    def plan(self) -> ColumnPlan | None:
        """The worker-resident base the next evaluation will diff against."""
        return self._plan

    def certify(
        self,
        policy: HousePolicy,
        alpha: float,
        *,
        early_exit: bool = False,
        static: bool = False,
    ) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate under *policy*.

        The exact path (the default, and any cached policy) derives the
        certificate from a merged evaluation — identical to the serial
        engine's.  With ``early_exit=True`` the shards share the
        "already failed" flag described in the module docstring; a
        tripped run yields a non-exhaustive certificate whose
        ``violation_probability`` is a lower bound sufficient to prove
        the check failed.  Verdicts always match the serial engine.

        With ``static=True`` the certificate is derived parent-side from
        the lint layer's severity intervals over the compiled population
        — no shard tasks are dispatched at all.  Identical to
        :meth:`~repro.perf.batch.BatchViolationEngine.certify`'s static
        path; mutually exclusive with ``early_exit``.
        """
        self._check_policy(policy)
        if static:
            if early_exit:
                raise ValidationError(
                    "static certification never evaluates, so early_exit "
                    "does not apply; pass one or the other"
                )
            return _static_certificate(
                self._compiled,
                policy,
                alpha,
                implicit_zero=self._implicit_zero,
            )
        alpha = check_probability(alpha, "alpha")
        n = len(self._compiled)
        if n == 0:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=0.0,
                satisfied=True,
                n_providers=0,
                violated_providers=(),
                policy_name=policy.name,
            )
        fingerprint = policy_fingerprint(policy)
        if early_exit and fingerprint not in self._cache:
            return self._certify_early_exit(policy, alpha, n)
        report = self.evaluate(policy)
        violated = report.violated_ids()
        p_w = len(violated) / n
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
        )

    # -- internals ----------------------------------------------------------

    def _certify_early_exit(
        self, policy: HousePolicy, alpha: float, n: int
    ) -> PPDBCertificate:
        self._ensure_open()
        with self._flag.get_lock():
            self._flag.value = 0
        budget = alpha * n
        collect = active_observer() is not None
        futures = [
            self._pool.submit(_certify_task, policy, lo, hi, budget, collect)
            for lo, hi in self._bounds
        ]
        parts = self._gather(futures)
        parts.sort(key=lambda part: part[0])
        counts = (
            np.concatenate([part[1] for part in parts])
            if parts
            else np.zeros(0, dtype=np.float64)
        )
        exhaustive = all(part[2] for part in parts)
        violated = tuple(
            pid
            for pid, count in zip(self._meta["ids"], counts)
            if count > 0
        )
        p_w = len(violated) / n
        if exhaustive:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=p_w,
                satisfied=p_w <= alpha,
                n_providers=n,
                violated_providers=violated,
                policy_name=policy.name,
            )
        obs = active_observer()
        if obs is not None:
            obs.inc("parallel.certify_early_exits")
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=False,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
            exhaustive=False,
        )

    def _fan_out(self, policy: HousePolicy) -> tuple[np.ndarray, np.ndarray]:
        self._ensure_open()
        collect = active_observer() is not None
        fingerprint = policy_fingerprint(policy)
        columns = policy_columns(policy)
        futures = self._submit_eval(fingerprint, columns, collect)
        parts = self._finish_eval(
            fingerprint, columns, self._gather(futures), collect
        )
        return self._merge_parts(parts)

    def _submit_eval(
        self,
        fingerprint: PolicyFingerprint,
        columns: Mapping,
        collect: bool,
    ) -> list[Future]:
        """Submit one policy's shard tasks, delta-shaped where possible.

        Advances the column plan to *fingerprint* — callers submit
        policies in evaluation order, so consecutive submissions chain
        their deltas exactly like the serial engine's base.
        """
        delta = plan_delta(self._plan, columns) if self._column_delta else None
        if delta is None:
            futures = [
                self._pool.submit(
                    _eval_full_task, fingerprint, columns, lo, hi, collect
                )
                for lo, hi in self._bounds
            ]
        else:
            base = self._plan.fingerprint
            futures = [
                self._pool.submit(
                    _eval_delta_task, base, fingerprint, delta, lo, hi, collect
                )
                for lo, hi in self._bounds
            ]
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.delta_tasks", len(futures))
        if self._column_delta:
            self._plan = ColumnPlan(fingerprint=fingerprint, columns=dict(columns))
        return futures

    def _finish_eval(
        self,
        fingerprint: PolicyFingerprint,
        columns: Mapping,
        parts: list[tuple],
        collect: bool,
    ) -> list[tuple]:
        """Resolve delta misses by replaying full tasks; count columns.

        A miss sentinel means the worker that drew the task holds no
        resident base for the shard (fresh fork, evicted engine cache, or
        a pool where another worker last evaluated it) — the shard is
        resubmitted with the full decomposition and counted on
        ``parallel.base_replays``.
        """
        good = [part for part in parts if part[1] is not None]
        missed = [part for part in parts if part[1] is None]
        if missed:
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.base_replays", len(missed))
            hi_for = dict(self._bounds)
            futures = [
                self._pool.submit(
                    _eval_full_task,
                    fingerprint,
                    columns,
                    part[0],
                    hi_for[part[0]],
                    collect,
                )
                for part in missed
            ]
            good.extend(self._gather(futures))
        obs = active_observer()
        if obs is not None:
            obs.inc(
                "parallel.columns_rescored",
                sum(int(part[3]) for part in good),
            )
        return good

    def _merge_parts(
        self, parts: list[tuple]
    ) -> tuple[np.ndarray, np.ndarray]:
        parts.sort(key=lambda part: part[0])
        if not parts:  # pragma: no cover - bounds are never empty
            empty = np.zeros(0, dtype=np.float64)
            return empty, empty.copy()
        violations = np.concatenate([part[1] for part in parts])
        counts = np.concatenate([part[2] for part in parts])
        return violations, counts

    def _gather(self, futures: Sequence[Future]) -> list[tuple]:
        try:
            results = [future.result() for future in futures]
        except BrokenExecutor as exc:
            obs = active_observer()
            if obs is not None:
                obs.inc("parallel.worker_failures")
            self.close()
            raise ParallelExecutionError(
                "a parallel worker died mid-task; the pool was shut down "
                "and its shared-memory block unlinked"
            ) from exc
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        obs = active_observer()
        if obs is not None:
            obs.inc("parallel.tasks", len(results))
            for result in results:
                snapshot = result[-1]
                if snapshot:
                    obs.merge_snapshot(snapshot)
        return results

    def _assemble(
        self, policy_name: str, violations: np.ndarray, counts: np.ndarray
    ) -> BatchReport:
        return assemble_report(
            policy_name,
            violations,
            counts,
            ids=self._meta["ids"],
            segments=self._meta["segments"],
            thresholds=self._compiled.thresholds,
            strict=bool(self._meta["strict"]),
        )

    def _remember(
        self,
        fingerprint: PolicyFingerprint,
        report: BatchReport,
        violations: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        if fingerprint not in self._cache and len(self._cache) >= self._max_cached:
            del self._cache[next(iter(self._cache))]
        self._cache[fingerprint] = (report, violations, counts)

    def _check_policy(self, policy: HousePolicy) -> None:
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )

    def _ensure_open(self) -> None:
        if self._closed:
            raise ParallelExecutionError(
                "executor is closed; create a new ShardExecutor"
            )


def make_batch_engine(
    population: Population | CompiledPopulation,
    *,
    workers: int = 1,
    sensitivities: SensitivityModel | None = None,
    default_model: DefaultModel | None = None,
    implicit_zero: bool = True,
    max_cached_reports: int = 128,
    supervised: bool = True,
    mutable: bool = True,
):
    """The ``workers=N`` execution policy: one mutation-capable engine.

    Given a :class:`Population` (the common case) this returns a
    :class:`~repro.perf.delta.MutableBatchEngine` — a facade that owns
    the right execution backend for the resolved worker count and
    additionally supports in-place population churn (``remove`` /
    ``append`` / ``update``), so one engine survives an entire dynamics,
    equilibrium, or widening run without recompiling per round.  While
    the population is unmutated every call delegates wholesale to the
    backend, so static workloads are byte-identical to the bare engines.

    Pass ``mutable=False`` — or a pre-built
    :class:`~repro.perf.compiled.CompiledPopulation` — to get the bare
    backend directly: ``workers=1`` returns the in-process
    :class:`~repro.perf.batch.BatchViolationEngine` with zero process
    overhead; ``workers=0`` resolves to one worker per CPU; any resolved
    count above 1 returns the supervised worker pool
    (:class:`~repro.perf.supervisor.SupervisedExecutor`), which survives
    worker crashes and stalls by respawning, retrying, and — as a last
    resort — evaluating the affected shard serially in the parent.  Pass
    ``supervised=False`` for the bare :class:`ShardExecutor`, whose
    fail-fast contract (one dead worker aborts the sweep with
    ``ParallelExecutionError`` / CLI ``PVL907``) suits callers that
    prefer a loud crash over a degraded completion.  All results support
    ``close()`` and the context-manager protocol, so callers can treat
    them uniformly::

        with make_batch_engine(population, workers=workers) as engine:
            reports = engine.evaluate_policies(policies)
    """
    if mutable and isinstance(population, Population):
        from .delta import MutableBatchEngine

        return MutableBatchEngine(
            population,
            workers=workers,
            sensitivities=sensitivities,
            default_model=default_model,
            implicit_zero=implicit_zero,
            max_cached_reports=max_cached_reports,
            supervised=supervised,
        )
    count = resolve_workers(workers)
    if count <= 1:
        from .batch import BatchViolationEngine

        return BatchViolationEngine(
            population,
            sensitivities=sensitivities,
            default_model=default_model,
            implicit_zero=implicit_zero,
            max_cached_reports=max_cached_reports,
        )
    if supervised:
        from .supervisor import SupervisedExecutor

        return SupervisedExecutor(
            population,
            workers=count,
            sensitivities=sensitivities,
            default_model=default_model,
            implicit_zero=implicit_zero,
            max_cached_reports=max_cached_reports,
        )
    return ShardExecutor(
        population,
        workers=count,
        sensitivities=sensitivities,
        default_model=default_model,
        implicit_zero=implicit_zero,
        max_cached_reports=max_cached_reports,
    )

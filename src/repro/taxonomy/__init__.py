"""The data-privacy taxonomy substrate (Barker et al., BNCOD 2009).

The paper's ref [1] models privacy as a point in the four-dimensional space
``purpose x visibility x granularity x retention``.  This package supplies:

* canonical ordered ladders for the three ordered dimensions
  (:mod:`repro.taxonomy.levels`),
* a :class:`~repro.taxonomy.builder.Taxonomy` bundling the domains and the
  purpose registry, with :func:`~repro.taxonomy.builder.standard_taxonomy`
  as the out-of-the-box instance,
* the geometric view of Figure 1 — privacy tuples as corner points of
  boxes, violations as failures of box containment
  (:mod:`repro.taxonomy.points`).
"""

from .levels import (
    GRANULARITY_LEVELS,
    PURPOSE_LEVELS,
    RETENTION_LEVELS,
    VISIBILITY_LEVELS,
    granularity_domain,
    retention_domain,
    visibility_domain,
)
from .builder import Taxonomy, TaxonomyBuilder, standard_taxonomy
from .points import PrivacyBox, PrivacyPoint, violation_dimensions

__all__ = [
    "GRANULARITY_LEVELS",
    "PURPOSE_LEVELS",
    "RETENTION_LEVELS",
    "VISIBILITY_LEVELS",
    "granularity_domain",
    "retention_domain",
    "visibility_domain",
    "Taxonomy",
    "TaxonomyBuilder",
    "standard_taxonomy",
    "PrivacyBox",
    "PrivacyPoint",
    "violation_dimensions",
]

"""Severity aggregation: ``Violation_i`` (Eq. 15) and ``Violations`` (Eq. 16).

``Violation_i`` sums the sensitivity-weighted conflicts of *all* of a
provider's preference tuples against *all* house policy tuples — capturing
both the paper's **breadth** (many attributes slightly exceeded) and
**depth** (one attribute severely exceeded) routes to default.

:class:`SeverityBreakdown` decomposes the same total by attribute,
dimension, and purpose so reports can explain *where* the severity comes
from; its marginals always re-sum to the total by construction.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Hashable

from .dimensions import Dimension
from .policy import HousePolicy
from .preferences import ProviderPreferences
from .sensitivity import SensitivityModel
from .violation import ViolationFinding, find_violations


def provider_violation(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    sensitivities: SensitivityModel | None = None,
    *,
    implicit_zero: bool = True,
) -> float:
    """Equation 15: ``Violation_i`` for one provider.

    The sum of every mutual conflict between the provider's (completed)
    preference set and the house policy.
    """
    findings = find_violations(
        preferences, policy, sensitivities, implicit_zero=implicit_zero
    )
    return sum(f.weighted for f in findings)


def total_violations(
    population: Iterable[ProviderPreferences],
    policy: HousePolicy,
    sensitivities: SensitivityModel | None = None,
    *,
    implicit_zero: bool = True,
) -> float:
    """Equation 16: house-level ``Violations = sum_i Violation_i``."""
    return sum(
        provider_violation(
            preferences, policy, sensitivities, implicit_zero=implicit_zero
        )
        for preferences in population
    )


@dataclass(frozen=True)
class SeverityBreakdown:
    """``Violation_i`` decomposed along the axes reports care about.

    All marginals are derived from one findings list, so
    ``sum(by_attribute.values()) == total`` (and likewise for the other
    marginals) holds exactly.
    """

    provider_id: Hashable
    total: float
    by_attribute: Mapping[str, float] = field(default_factory=dict)
    by_dimension: Mapping[Dimension, float] = field(default_factory=dict)
    by_purpose: Mapping[str, float] = field(default_factory=dict)
    findings: tuple[ViolationFinding, ...] = ()

    @classmethod
    def from_findings(
        cls, provider_id: Hashable, findings: Iterable[ViolationFinding]
    ) -> "SeverityBreakdown":
        """Aggregate a findings list into a breakdown."""
        findings = tuple(findings)
        by_attribute: dict[str, float] = {}
        by_dimension: dict[Dimension, float] = {}
        by_purpose: dict[str, float] = {}
        total = 0.0
        for finding in findings:
            total += finding.weighted
            by_attribute[finding.attribute] = (
                by_attribute.get(finding.attribute, 0.0) + finding.weighted
            )
            by_dimension[finding.dimension] = (
                by_dimension.get(finding.dimension, 0.0) + finding.weighted
            )
            by_purpose[finding.purpose] = (
                by_purpose.get(finding.purpose, 0.0) + finding.weighted
            )
        return cls(
            provider_id=provider_id,
            total=total,
            by_attribute=by_attribute,
            by_dimension=by_dimension,
            by_purpose=by_purpose,
            findings=findings,
        )

    @classmethod
    def analyze(
        cls,
        preferences: ProviderPreferences,
        policy: HousePolicy,
        sensitivities: SensitivityModel | None = None,
        *,
        implicit_zero: bool = True,
    ) -> "SeverityBreakdown":
        """Compute the breakdown for one provider against a policy."""
        findings = find_violations(
            preferences, policy, sensitivities, implicit_zero=implicit_zero
        )
        return cls.from_findings(preferences.provider_id, findings)

    @property
    def violated(self) -> bool:
        """Definition 1's ``w_i`` as a boolean (any finding at all)."""
        return bool(self.findings)

    def dominant_attribute(self) -> str | None:
        """The attribute contributing the most severity, or ``None``."""
        if not self.by_attribute:
            return None
        return max(self.by_attribute, key=lambda a: (self.by_attribute[a], a))

    def dominant_dimension(self) -> Dimension | None:
        """The dimension contributing the most severity, or ``None``."""
        if not self.by_dimension:
            return None
        return max(
            self.by_dimension,
            key=lambda d: (self.by_dimension[d], d.value),
        )

"""Legacy systems: estimate default thresholds from observed departures.

Section 10's programme, end to end.  The house never sees anyone's
tolerance ``v_i``; it only observes who leaves after each past policy
expansion.  From those interval-censored observations it:

1. brackets every provider's threshold,
2. fits the population's default-fraction curve,
3. forecasts the defaults of a *candidate* policy it has not deployed,
4. answers the planning question "how much severity can we inflict while
   keeping churn under 10%?".

Run:  python examples/threshold_estimation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.core import Dimension, ViolationEngine
from repro.datasets import healthcare_scenario
from repro.estimation import (
    ThresholdEstimator,
    forecast_defaults,
    observe_widening_history,
)
from repro.simulation import WideningStep, widen, widening_path

scenario = healthcare_scenario(n_providers=250, seed=29)
history = [
    policy
    for _, policy in widening_path(
        scenario.policy, WideningStep.uniform(1), scenario.taxonomy, 4
    )
]
print(f"deployed policy history: {[p.name for p in history]}")
print()

# --- 1. observe and bracket -----------------------------------------------
observations = observe_widening_history(scenario.population, history)
estimator = ThresholdEstimator(observations)
departed = estimator.n_departed()
print(
    f"observed {departed} departures among {len(observations)} providers "
    f"({departed / len(observations):.0%} churn over the history)"
)

estimates = estimator.estimates()
inside = 0
for estimate in estimates:
    true_threshold = scenario.population.get(estimate.provider_id).threshold
    if estimate.censored:
        inside += true_threshold >= estimate.lower
    else:
        inside += estimate.lower <= true_threshold < estimate.upper + 1e-9
print(f"brackets containing the (hidden) true threshold: {inside}/{len(estimates)}")
print()

# --- 2. the default-fraction curve ----------------------------------------
grid = np.linspace(0, 1200, 7)
print(
    format_table(
        ["severity", "predicted default fraction"],
        [[float(s), round(estimator.default_fraction(float(s)), 3)] for s in grid],
        title="estimated default-fraction curve",
    )
)
print()

# --- 3. forecast an undeployed candidate ----------------------------------
candidate = widen(
    history[2],
    WideningStep.along(Dimension.VISIBILITY, 1),
    scenario.taxonomy,
    name="candidate-2.5",
)
forecast = forecast_defaults(
    estimator, scenario.population, candidate, per_provider_utility=10.0
)
truth = ViolationEngine(candidate, scenario.population).report()
print(
    f"candidate {candidate.name!r}: forecast "
    f"{forecast.expected_defaults:.1f} defaults "
    f"({forecast.expected_default_fraction:.1%}); "
    f"simulation ground truth: {truth.n_defaulted}"
)
print(
    f"break-even extra utility for the candidate (Eq. 31): "
    f"T* = {forecast.break_even_extra_utility:.3f}"
)
print()

# --- 4. the churn-budget planning query -----------------------------------
for budget in (0.05, 0.10, 0.25):
    severity = estimator.severity_at_budget(budget)
    print(
        f"to keep churn under {budget:.0%}, keep per-provider severity "
        f"below ~{severity:.0f}"
    )

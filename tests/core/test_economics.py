"""Unit tests for Section 9's policy-expansion economics (Eqs. 25-31)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    assess_expansion,
    break_even_extra_utility,
    expansion_justified,
    utility_current,
    utility_future,
)
from repro.core.economics import n_future
from repro.exceptions import ValidationError


class TestUtilityFormulas:
    def test_eq25_current(self):
        assert utility_current(100, 2.5) == 250.0

    def test_eq26_future_population(self):
        assert n_future(100, 15) == 85

    def test_eq26_overdraw_rejected(self):
        with pytest.raises(ValidationError):
            n_future(10, 11)

    def test_eq27_future_utility(self):
        assert utility_future(85, 2.5, 0.5) == 255.0

    def test_zero_population_utilities(self):
        assert utility_current(0, 5.0) == 0.0
        assert utility_future(0, 5.0, 5.0) == 0.0


class TestBreakEven:
    def test_eq31_closed_form(self):
        # T* = U (Nc/Nf - 1) = 2.5 * (100/85 - 1)
        expected = 2.5 * (100 / 85 - 1)
        assert break_even_extra_utility(2.5, 100, 85) == pytest.approx(expected)

    def test_no_defaults_means_any_positive_t_justifies(self):
        assert break_even_extra_utility(2.5, 100, 100) == 0.0
        assert expansion_justified(2.5, 0.01, 100, 100)
        assert not expansion_justified(2.5, 0.0, 100, 100)  # strict >

    def test_all_default_is_never_justified(self):
        assert break_even_extra_utility(2.5, 100, 0) == math.inf
        assert not expansion_justified(2.5, 1e18, 100, 0)

    def test_future_exceeding_current_rejected(self):
        with pytest.raises(ValidationError):
            break_even_extra_utility(2.5, 100, 101)

    def test_consistency_with_direct_utility_comparison(self):
        # T > T* iff Utility_future > Utility_current, for several cases.
        for n_current, n_fut, u, t in [
            (100, 85, 2.5, 0.5),
            (100, 85, 2.5, 0.4),
            (50, 25, 1.0, 1.0),
            (50, 25, 1.0, 1.001),
            (10, 9, 3.0, 0.34),
        ]:
            direct = utility_future(n_fut, u, t) > utility_current(n_current, u)
            assert expansion_justified(u, t, n_current, n_fut) == direct

    def test_exact_break_even_is_not_justified(self):
        t_star = break_even_extra_utility(2.0, 10, 8)  # = 0.5
        assert t_star == pytest.approx(0.5)
        assert not expansion_justified(2.0, t_star, 10, 8)
        assert expansion_justified(2.0, t_star + 1e-9, 10, 8)


class TestAssessExpansion:
    def test_paper_example_expansion(self, paper_population, paper_policy):
        # Widening = the paper's own policy; Ted defaults, N 3 -> 2.
        assessment = assess_expansion(
            paper_population, paper_policy, per_provider_utility=10.0,
            extra_utility=6.0,
        )
        assert assessment.n_current == 3
        assert assessment.n_future == 2
        assert assessment.defaulted_providers == ("Ted",)
        assert assessment.utility_current == 30.0
        assert assessment.utility_future == 32.0
        # T* = 10 * (3/2 - 1) = 5; T = 6 > 5 -> justified
        assert assessment.break_even_extra_utility == pytest.approx(5.0)
        assert assessment.justified
        assert assessment.utility_gain == pytest.approx(2.0)

    def test_insufficient_extra_utility_not_justified(
        self, paper_population, paper_policy
    ):
        assessment = assess_expansion(
            paper_population, paper_policy, per_provider_utility=10.0,
            extra_utility=4.0,
        )
        assert not assessment.justified
        assert assessment.utility_gain == pytest.approx(-2.0)

    def test_default_fraction(self, paper_population, paper_policy):
        assessment = assess_expansion(
            paper_population, paper_policy, 10.0, 1.0
        )
        assert assessment.default_fraction == pytest.approx(1 / 3)

    def test_str_mentions_verdict(self, paper_population, paper_policy):
        good = assess_expansion(paper_population, paper_policy, 10.0, 6.0)
        bad = assess_expansion(paper_population, paper_policy, 10.0, 1.0)
        assert "justified" in str(good)
        assert "NOT justified" in str(bad)

# Convenience targets for the ppviol repository.

PYTHON ?= python

.PHONY: install test chaos chaos-parallel delta-parity delta-columns-parity obs bench bench-parallel bench-smoke bench-tables examples lint lint-policy lint-populations all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# The chaos suite CI runs in the chaos-smoke job: fault injection,
# crash recovery, storage hardening, and the CLI error contract, under
# a tight per-test timeout.  Deterministic — fault plans are seeded.
chaos:
	REPRO_TEST_TIMEOUT=60 $(PYTHON) -m pytest -q \
		tests/resilience \
		tests/storage/test_hardening.py \
		tests/cli/test_cli_errors.py

# The observability suite CI runs in the obs-smoke job: the metrics
# registry, span tracing, the zero-cost-when-disabled guard, and the
# CLI's --metrics / --trace / obs surface end to end (including fault
# counters under an injected chaos plan).
# The supervised-pool chaos suite CI runs in the chaos-parallel job:
# seeded worker SIGKILL/SIGSTOP recovery, retry/degradation parity,
# shared-memory leak hygiene, and the journal+workers resume contract.
chaos-parallel:
	REPRO_TEST_TIMEOUT=120 $(PYTHON) -m pytest -q \
		tests/perf/test_supervisor.py \
		tests/perf/test_supervisor_chaos.py \
		tests/perf/test_shm_cleanup.py \
		tests/cli/test_cli_journal_workers.py

# The incremental-engine suite CI runs in the delta-parity job:
# randomized mutation sequences bit-for-bit against fresh compiles,
# the exactly-one-compile churn regression, the mutation-epoch resume
# contract, and a smoke-size run of the delta dynamics bench.
delta-parity:
	REPRO_TEST_TIMEOUT=120 $(PYTHON) -m pytest -q \
		tests/properties/test_mutation_parity.py \
		tests/perf/test_delta_engine.py \
		tests/perf/test_delta_dynamics.py \
		tests/resilience/test_mutation_epoch.py
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_delta_dynamics.py --benchmark-only

# The worker column-delta protocol CI runs in the delta-columns-parity
# job: the shared column diff and its edge cases, chained-delta /
# rebase / replay exactness against full evaluation, the supervised
# pool's exact changed-columns-per-shard counter contract (including
# worker-kill chaos, journal replay, and pool-rebuild warm starts),
# and a smoke-size run of the column-delta rounds bench.
delta-columns-parity:
	REPRO_TEST_TIMEOUT=120 $(PYTHON) -m pytest -q \
		tests/perf/test_delta_columns.py
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_delta_columns.py --benchmark-only

obs:
	REPRO_TEST_TIMEOUT=60 $(PYTHON) -m pytest -q tests/obs

# Full benchmark run; machine-readable timings (including the sweep
# speedups of the batch engine vs the reference engine, of the sharded
# parallel executor vs the serial batch engine, of the warm supervised
# pool vs cold per-sweep pool spin-up, and of the incremental delta
# engine vs a full rebuild per churn round) land in BENCH_9.json via
# the conftest recorder.  The historical BENCH_2.json record names are
# preserved inside it, so the timing trajectory across PRs stays
# comparable.
bench:
	REPRO_BENCH_JSON=BENCH_9.json $(PYTHON) -m pytest benchmarks/ --benchmark-only

# The parallel-executor suite plus a tiny-size run of the parallel
# sweep bench (workers=2, small population) — what CI's parallel-smoke
# job executes on every push.  The speedup floor is asserted only at
# full size on machines with a core per worker.
bench-parallel:
	REPRO_TEST_TIMEOUT=120 $(PYTHON) -m pytest -q \
		tests/perf/test_parallel_parity.py tests/perf/test_parallel_chaos.py
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest \
		benchmarks/test_scaling.py::test_parallel_sweep_speedup --benchmark-only

# Tiny-size smoke run of the scaling benches (same code paths, relaxed
# speedup floor) — what CI executes on every push.
bench-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTHON) -m pytest benchmarks/test_scaling.py --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

# Static analysis of the source tree.  ruff and mypy are optional
# (CI installs them; minimal dev environments may not have them), so
# each step is skipped with a notice when the tool is unavailable.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/repro tests; \
	else \
		echo "ruff not installed; skipping ruff check"; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed; skipping mypy"; \
	fi

# Static analysis of the shipped policy documents via `repro lint`.
# The Section 8 example legitimately violates Ted and Bob, so the alpha
# gate is set above the paper's P(W) = 2/3.  Runs the incremental path
# with worker fan-out (--workers 0 = one per core) so the default local
# check exercises the same code CI's lint-populations job does.
lint-policy:
	PYTHONPATH=src $(PYTHON) -m repro.cli lint \
		--taxonomy examples/documents/taxonomy.json \
		--policy examples/documents/policy.json \
		--population examples/documents/population.json \
		--candidate examples/documents/candidate.json \
		--alpha 0.7 --workers 0

# Population-scale static analysis: export every bundled dataset to
# documents, lint each with worker fan-out (gate disabled — the bundled
# populations intentionally carry findings; the golden tests pin them),
# emit SARIF per dataset, then hold the SARIF schema and golden
# snapshot suites.  What CI's lint-populations job runs.
lint-populations:
	PYTHONPATH=src $(PYTHON) -m repro.datasets.export --out build/datasets
	@set -e; for dir in build/datasets/*/; do \
		name=$$(basename $$dir); \
		echo "== lint $$name"; \
		PYTHONPATH=src $(PYTHON) -m repro.cli lint \
			--taxonomy $$dir/taxonomy.json \
			--policy $$dir/policy.json \
			--population $$dir/population.json \
			--alpha 0.5 --workers 0 --fail-on never \
			--format sarif > build/datasets/$$name.sarif; \
	done
	PYTHONPATH=src $(PYTHON) -m pytest -q \
		tests/lint/test_sarif_schema.py \
		tests/lint/test_datasets_golden.py

all: test lint lint-policy lint-populations bench

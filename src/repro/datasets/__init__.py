"""Scenario datasets: the paper's worked example plus domain scenarios.

* :mod:`repro.datasets.paper_example` — Section 8's Table 1 (Alice, Ted,
  Bob) with the exact constants the paper uses; the ground truth for the
  Table 1 reproduction benchmark.
* :mod:`repro.datasets.healthcare` — a clinic collecting demographic and
  clinical attributes (the intro's healthcare motivation).
* :mod:`repro.datasets.social_network` — a social-network profile scenario
  (the intro's social-networking motivation, and the SN policy analyses of
  the paper's ref [23]).
* :mod:`repro.datasets.crm` — a customer-relationship-management scenario.

All generators are deterministic given a seed.
"""

from .paper_example import (
    PAPER_EXPECTATIONS,
    PaperExampleExpectations,
    paper_example_policy,
    paper_example_population,
    paper_example_scenario,
    paper_example_taxonomy,
)
from .healthcare import healthcare_scenario
from .social_network import social_network_scenario
from .crm import crm_scenario
from .government import government_scenario
from .scenario import Scenario

__all__ = [
    "government_scenario",
    "PAPER_EXPECTATIONS",
    "PaperExampleExpectations",
    "paper_example_policy",
    "paper_example_population",
    "paper_example_scenario",
    "paper_example_taxonomy",
    "healthcare_scenario",
    "social_network_scenario",
    "crm_scenario",
    "Scenario",
]

"""The iterated widening game and its stopping point.

Round structure:

0. Round 0 evaluates the base policy over the full population (by
   Section 9's setup it causes no defaults when scenarios are anchored).
1. Each subsequent round, the house strategy proposes a widening step (or
   stops); the policy widens; providers whose accumulated severity now
   exceeds their threshold default and permanently leave; the house
   collects ``n_remaining x (U + T x round)``.

The game ends when the strategy stops or the population empties.  The
trace records every round; :meth:`GameTrace.equilibrium_round` is the
round after which the realised play never improved again — under the
greedy strategy this is the myopic stopping point, and the gap between
its utility and the best row of a full sweep measures the cost of myopia
(benchmarked as an ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._validation import check_real
from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import GameError
from ..obs import active_observer
from ..perf import make_batch_engine
from ..simulation.widening import policy_delta_columns, widen
from ..taxonomy.builder import Taxonomy
from .players import HouseStrategy


@dataclass(frozen=True, slots=True)
class GameRound:
    """One realised round of the widening game."""

    round_index: int
    policy_name: str
    n_start: int
    n_defaulted: int
    n_remaining: int
    violation_probability: float
    utility: float
    defaulted_providers: tuple[Hashable, ...]


@dataclass(frozen=True)
class GameTrace:
    """The full realised play."""

    rounds: tuple[GameRound, ...]
    stopped_by_strategy: bool

    @property
    def final_round(self) -> GameRound:
        """The last realised round."""
        if not self.rounds:
            raise GameError("empty game trace")
        return self.rounds[-1]

    def total_defaults(self) -> int:
        """Providers lost across the whole play."""
        return sum(r.n_defaulted for r in self.rounds)

    def peak_utility_round(self) -> GameRound:
        """The round with the highest realised utility."""
        if not self.rounds:
            raise GameError("empty game trace")
        return max(self.rounds, key=lambda r: (r.utility, -r.round_index))

    def equilibrium_round(self) -> GameRound:
        """The stopping point: the last round that improved on its past.

        Formally: the latest round whose utility equals the running
        maximum.  After it, continued widening never paid again within the
        realised play.
        """
        if not self.rounds:
            raise GameError("empty game trace")
        best = self.rounds[0]
        for game_round in self.rounds[1:]:
            if game_round.utility >= best.utility:
                best = game_round
        return best


def play_widening_game(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    strategy: HouseStrategy,
    *,
    per_provider_utility: float = 1.0,
    extra_utility_per_round: float = 0.25,
    implicit_zero: bool = True,
    workers: int = 1,
) -> GameTrace:
    """Play the iterated widening game to completion.

    ``workers`` selects the execution policy for the per-round
    evaluations (see :func:`~repro.perf.parallel.make_batch_engine`);
    the realised play is identical across settings.
    """
    check_real(per_provider_utility, "per_provider_utility", minimum=0.0)
    check_real(extra_utility_per_round, "extra_utility_per_round", minimum=0.0)
    rounds: list[GameRound] = []
    current_population = population
    current_policy = HousePolicy(
        base_policy.entries, name=f"{base_policy.name}@g0"
    )
    round_index = 0
    stopped_by_strategy = False
    # One engine for the whole game: defaults are tombstoned in place, so
    # the single compilation (and, in parallel mode, the single worker
    # pool) survives every round.  Strategies that revisit a policy (or
    # widen within a single column) hit the batch engine's cache and
    # delta paths.
    engine = make_batch_engine(
        current_population, workers=workers, implicit_zero=implicit_zero
    )
    try:
        while len(current_population) > 0:
            report = engine.evaluate(current_policy)
            defaulted = report.defaulted_ids()
            n_start = len(current_population)
            n_remaining = n_start - len(defaulted)
            utility = n_remaining * (
                per_provider_utility + extra_utility_per_round * round_index
            )
            rounds.append(
                GameRound(
                    round_index=round_index,
                    policy_name=current_policy.name,
                    n_start=n_start,
                    n_defaulted=len(defaulted),
                    n_remaining=n_remaining,
                    violation_probability=report.violation_probability,
                    utility=utility,
                    defaulted_providers=defaulted,
                )
            )
            if defaulted:
                current_population = current_population.without(defaulted)
                engine.remove(defaulted)
            next_step = strategy.propose(rounds)
            if next_step is None:
                stopped_by_strategy = True
                break
            round_index += 1
            previous_policy = current_policy
            current_policy = widen(
                current_policy,
                next_step,
                taxonomy,
                name=f"{base_policy.name}@g{round_index}",
            )
            obs = active_observer()
            if obs is not None:
                obs.inc(
                    "game.policy_columns_changed",
                    len(policy_delta_columns(previous_policy, current_policy)),
                )
    finally:
        engine.close()
    return GameTrace(rounds=tuple(rounds), stopped_by_strategy=stopped_by_strategy)

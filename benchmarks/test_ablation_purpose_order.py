"""Ablation — categorical purpose (paper) vs the ordered-purpose extension.

Assumption 4 treats purpose as categorical; the paper notes that a total
order (via the ref [5] lattice) would let purpose participate like any
other dimension.  This ablation runs both models over a scenario whose
policy reuses data under broader purposes and counts how many additional
violations the ordered variant surfaces — and how the categorical model's
implicit-zero rule partially compensates.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import HousePolicy, PrivacyTuple, ProviderPreferences
from repro.core.purpose_extension import (
    provider_violation_ordered_purpose,
    violation_indicator_ordered_purpose,
)
from repro.core.violation import violation_indicator
from repro.core.severity import provider_violation

from conftest import emit

#: single < reuse-same < reuse-any: the [5]-style breadth chain.
ORDER = {"single": 0, "reuse-same": 1, "reuse-any": 2}


def _population() -> list[ProviderPreferences]:
    """30 providers who consented to 'single'-purpose use at rank 2."""
    return [
        ProviderPreferences(
            f"u{i}", [("email", PrivacyTuple("single", 2, 2, 2))]
        )
        for i in range(30)
    ]


#: The house reuses email data under a broader purpose at the same ranks.
REUSE_POLICY = HousePolicy(
    [("email", PrivacyTuple("reuse-any", 2, 2, 2))], name="broad-reuse"
)


def test_purpose_order_ablation(benchmark):
    population = _population()

    def evaluate_all():
        categorical = sum(
            violation_indicator(prefs, REUSE_POLICY) for prefs in population
        )
        categorical_no_zero = sum(
            violation_indicator(prefs, REUSE_POLICY, implicit_zero=False)
            for prefs in population
        )
        ordered = sum(
            violation_indicator_ordered_purpose(prefs, REUSE_POLICY, ORDER)
            for prefs in population
        )
        return categorical, categorical_no_zero, ordered

    categorical, categorical_no_zero, ordered = benchmark(evaluate_all)

    n = len(population)
    emit(
        "Ablation: violated providers under broad-purpose reuse (N=30)",
        format_table(
            ["model", "violated", "P(W)"],
            [
                ["categorical + implicit zero (paper)", categorical, categorical / n],
                ["categorical, no implicit zero", categorical_no_zero, categorical_no_zero / n],
                ["ordered purpose (extension)", ordered, ordered / n],
            ],
        ),
    )

    # The naive categorical model without the implicit-zero rule is blind
    # to purpose reuse entirely.
    assert categorical_no_zero == 0
    # The paper's implicit-zero rule catches it (as a V/G/R exceedance over
    # the zero tuple), and the ordered extension also flags it, now with a
    # purpose-dimension attribution.
    assert categorical == n
    assert ordered == n


def test_purpose_order_severity_attribution(benchmark):
    prefs = ProviderPreferences(
        "u0", [("email", PrivacyTuple("single", 2, 2, 2))]
    )

    def severities():
        return (
            provider_violation(prefs, REUSE_POLICY),
            provider_violation_ordered_purpose(prefs, REUSE_POLICY, ORDER),
        )

    categorical_severity, ordered_severity = benchmark(severities)
    emit(
        "Ablation: severity attribution for one provider",
        format_table(
            ["model", "Violation_i", "interpretation"],
            [
                [
                    "categorical (implicit zero)",
                    categorical_severity,
                    "V+G+R over the zero tuple (2+2+2)",
                ],
                [
                    "ordered purpose",
                    ordered_severity,
                    "purpose rank diff only (2); ranks match",
                ],
            ],
        ),
    )
    # Categorical: the implicit zero makes all three ordered dims exceed by
    # 2 each -> severity 6.  Ordered: the ranks are identical, only the
    # purpose is broader by 2 -> severity 2.  The models *measure different
    # things*; the ablation documents the divergence.
    assert categorical_severity == 6.0
    assert ordered_severity == 2.0

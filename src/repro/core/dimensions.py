"""Privacy dimensions and ordered value domains.

The taxonomy (Barker et al. 2009, the paper's ref [1]) models privacy as a
point in a four-dimensional space: **purpose**, **visibility**,
**granularity**, and **retention**.  The paper's assumptions (Section 3):

1. the dimensions are orthogonal;
2. visibility, granularity, and retention values form a *total order* used
   both to detect violations and to grade their severity;
4. purpose is *categorical* — a grouping principle, compared only for
   equality (unless an external total order is supplied, see
   :mod:`repro.core.purpose`).

:class:`Dimension` names the four axes.  :class:`OrderedDomain` gives each
ordered axis a ladder of named levels mapped to integer ranks; the integer
ranks are what privacy tuples carry (Section 6.2: "numerical values can
simply be chosen to reflect the orderings").
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Sequence

from .._validation import check_int, check_non_empty_str, check_unique
from ..exceptions import DomainError, ValidationError


class Dimension(enum.Enum):
    """One axis of the four-dimensional privacy space.

    ``symbol`` is the shorthand used by the paper's notation (``Pr``, ``V``,
    ``G``, ``R``); ``is_ordered`` distinguishes the three totally-ordered
    axes from the categorical purpose axis.
    """

    PURPOSE = "purpose"
    VISIBILITY = "visibility"
    GRANULARITY = "granularity"
    RETENTION = "retention"

    @property
    def symbol(self) -> str:
        """The paper's shorthand for this dimension."""
        return _SYMBOLS[self]

    @property
    def is_ordered(self) -> bool:
        """Whether values of this dimension carry a total order."""
        return self is not Dimension.PURPOSE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dimension.{self.name}"


_SYMBOLS = {
    Dimension.PURPOSE: "Pr",
    Dimension.VISIBILITY: "V",
    Dimension.GRANULARITY: "G",
    Dimension.RETENTION: "R",
}

#: The dimensions along which violations are measured (Definition 1 excludes
#: purpose: ``dim != Pr``).  Order matches the paper's ``{V, G, R}``.
ORDERED_DIMENSIONS: tuple[Dimension, ...] = (
    Dimension.VISIBILITY,
    Dimension.GRANULARITY,
    Dimension.RETENTION,
)


class OrderedDomain:
    """A totally ordered ladder of named levels for one privacy dimension.

    Levels are listed from *least* privacy exposure to *most*; their index in
    the ladder is the integer rank carried by privacy tuples.  A rank of 0 is
    conventionally "reveal nothing", which is what the paper's implicit
    preference tuple ``<i, a, pr, 0, 0, 0>`` relies on.

    The domain accepts levels by name or by rank everywhere, so policy
    documents may say ``"third-party"`` while the arithmetic uses ``3``.

    Parameters
    ----------
    dimension:
        The axis this ladder belongs to.  Must be an ordered dimension.
    levels:
        Level names from least to most exposure.  Must be unique and
        non-empty.
    name:
        Optional human-readable domain name; defaults to the dimension value.
    """

    __slots__ = ("_dimension", "_levels", "_ranks", "_name")

    def __init__(
        self,
        dimension: Dimension,
        levels: Sequence[str],
        *,
        name: str | None = None,
    ) -> None:
        if not isinstance(dimension, Dimension):
            raise ValidationError(
                f"dimension must be a Dimension, got {dimension!r}"
            )
        if not dimension.is_ordered:
            raise ValidationError(
                "purpose is categorical; it has no ordered domain "
                "(see repro.core.purpose.PurposeLattice for the extension)"
            )
        level_list = [check_non_empty_str(level, "level") for level in levels]
        if not level_list:
            raise ValidationError("an ordered domain needs at least one level")
        check_unique(level_list, "domain level")
        self._dimension = dimension
        self._levels = tuple(level_list)
        self._ranks = {level: rank for rank, level in enumerate(level_list)}
        self._name = name if name is not None else dimension.value

    @property
    def dimension(self) -> Dimension:
        """The axis this ladder belongs to."""
        return self._dimension

    @property
    def name(self) -> str:
        """Human-readable domain name."""
        return self._name

    @property
    def levels(self) -> tuple[str, ...]:
        """Level names from least to most exposure."""
        return self._levels

    @property
    def max_rank(self) -> int:
        """The rank of the most exposed level."""
        return len(self._levels) - 1

    def __len__(self) -> int:
        return len(self._levels)

    def __contains__(self, value: object) -> bool:
        if isinstance(value, str):
            return value in self._ranks
        if isinstance(value, bool):
            return False
        if isinstance(value, int):
            return 0 <= value <= self.max_rank
        return False

    def __iter__(self) -> Iterable[str]:
        return iter(self._levels)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderedDomain):
            return NotImplemented
        return (
            self._dimension is other._dimension
            and self._levels == other._levels
            and self._name == other._name
        )

    def __hash__(self) -> int:
        return hash((self._dimension, self._levels, self._name))

    def __repr__(self) -> str:
        ladder = " < ".join(self._levels)
        return f"OrderedDomain({self._name}: {ladder})"

    def rank_of(self, value: str | int) -> int:
        """Return the integer rank of *value* (a level name or a rank).

        Raises
        ------
        DomainError
            If the name is unknown or the rank is outside the ladder.
        """
        if isinstance(value, str):
            try:
                return self._ranks[value]
            except KeyError:
                raise DomainError(self._name, value) from None
        rank = check_int(value, f"{self._name} rank")
        if not 0 <= rank <= self.max_rank:
            raise DomainError(self._name, rank)
        return rank

    def level_of(self, rank: int) -> str:
        """Return the level name at integer *rank*."""
        rank = check_int(rank, f"{self._name} rank")
        if not 0 <= rank <= self.max_rank:
            raise DomainError(self._name, rank)
        return self._levels[rank]

    def clamp(self, rank: int) -> int:
        """Clamp an arbitrary integer to the ladder's valid rank range.

        Used by policy-widening operators that step ranks upward and must not
        run off the top of the ladder.
        """
        rank = check_int(rank, f"{self._name} rank")
        return max(0, min(rank, self.max_rank))


class UnboundedRetention:
    """A retention domain measured on an open-ended integer scale.

    The taxonomy's retention axis is naturally numeric (weeks, months,
    years, or an ordinal ladder ending in "indefinitely").  When a deployment
    prefers raw durations over a named ladder, this domain accepts any
    non-negative integer and treats larger as more exposed.

    It deliberately mirrors the parts of :class:`OrderedDomain`'s interface
    the core model uses (``rank_of``, ``clamp``, ``dimension``) so the two
    are interchangeable inside a taxonomy.
    """

    __slots__ = ("_name",)

    def __init__(self, *, name: str = "retention") -> None:
        self._name = check_non_empty_str(name, "name")

    @property
    def dimension(self) -> Dimension:
        """Always :attr:`Dimension.RETENTION`."""
        return Dimension.RETENTION

    @property
    def name(self) -> str:
        """Human-readable domain name."""
        return self._name

    @property
    def max_rank(self) -> int | None:
        """``None``: there is no top of the ladder."""
        return None

    def __contains__(self, value: object) -> bool:
        return (
            isinstance(value, int)
            and not isinstance(value, bool)
            and value >= 0
        )

    def __repr__(self) -> str:
        return f"UnboundedRetention({self._name!r})"

    def rank_of(self, value: str | int) -> int:
        """Return *value* as a non-negative integer rank.

        Accepts decimal strings too (``"12"``), because :meth:`level_of`
        renders ranks as strings — the pair must round-trip.
        """
        if isinstance(value, str):
            if not value.isdigit():
                raise DomainError(self._name, value)
            value = int(value)
        return check_int(value, f"{self._name} rank", minimum=0)

    def level_of(self, rank: int) -> str:
        """Return a printable label for *rank*."""
        return str(self.rank_of(rank))

    def clamp(self, rank: int) -> int:
        """Clamp to the valid range (non-negative; no upper bound)."""
        return max(0, check_int(rank, f"{self._name} rank"))

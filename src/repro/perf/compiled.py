"""One-time compilation of a population into dense NumPy arrays.

The reference :class:`~repro.core.engine.ViolationEngine` walks Python
objects — preference entries, sensitivity records, threshold lookups — for
every provider on every evaluation.  A :class:`CompiledPopulation`
performs that walk exactly once and stores the result as flat arrays laid
out for the vectorized kernels in :mod:`repro.perf.batch`:

* provider ids in population order, with an id -> row-index map;
* the default-threshold vector ``v`` (``inf`` for "never defaults") and
  the :class:`~repro.core.default.DefaultModel`'s strictness flag;
* per **column** — one column per ``(attribute, purpose)`` pair — the
  explicit preference rows (provider index, ``(V, G, R)`` ranks) and the
  providers subject to the implicit-zero completion, each paired with the
  precomputed severity weights ``Sigma^a x s_i^a x s_i^a[dim]`` so the
  inner loop of Eq. 14 reduces to one fused multiply-add.

The compilation is tied to a population *and* the sensitivity/default
models in effect (like the reference engine, overrides are accepted and
default to the population's own models).  It is policy-independent:
columns are materialised lazily for whatever ``(attribute, purpose)``
pairs the evaluated policies mention, then cached, so a widening sweep
touching the same columns repeatedly pays the gather cost once.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Hashable

import numpy as np

from ..core.default import DefaultModel
from ..core.population import Population
from ..core.sensitivity import SensitivityModel
from ..exceptions import UnknownProviderError, ValidationError
from ..obs import active_observer

#: The ordered-dimension axis order used by every rank/weight array:
#: column 0 = visibility, 1 = granularity, 2 = retention (the paper's
#: ``{V, G, R}``).
RANK_AXES = ("visibility", "granularity", "retention")


@dataclass(frozen=True)
class CompiledColumn:
    """The dense form of one ``(attribute, purpose)`` column.

    ``row_providers``/``row_ranks``/``row_weights`` describe the explicit
    preference entries whose ``(attribute, purpose)`` matches the column —
    a provider may own several rows (the model allows multiple tuples per
    pair).  ``implicit_providers``/``implicit_weights`` are the providers
    that supplied the attribute but expressed no preference for the
    purpose: under the implicit-zero completion of Section 5 they hold the
    tuple ``<pr, 0, 0, 0>`` for this column.
    """

    attribute: str
    purpose: str
    row_providers: np.ndarray  # (R,) int64 — provider row index per entry
    row_ranks: np.ndarray  # (R, 3) int64 — (V, G, R) ranks per entry
    row_weights: np.ndarray  # (R, 3) float64 — per-dimension weights
    implicit_providers: np.ndarray  # (I,) int64 — unique provider rows
    implicit_weights: np.ndarray  # (I, 3) float64

    @property
    def n_rows(self) -> int:
        """Number of explicit preference rows in this column."""
        return int(self.row_providers.shape[0])

    @property
    def n_implicit(self) -> int:
        """Number of providers completed with an implicit zero tuple."""
        return int(self.implicit_providers.shape[0])


class CompiledPopulation:
    """A :class:`~repro.core.population.Population` flattened for batch use.

    Parameters
    ----------
    population:
        The providers to compile.
    sensitivities, default_model:
        Optional overrides, defaulting to the population's own models —
        the same contract as :class:`~repro.core.engine.ViolationEngine`.
    """

    __slots__ = (
        "_population",
        "_sensitivities",
        "_default_model",
        "_ids",
        "_index",
        "_segments",
        "_thresholds",
        "_strict",
        "_explicit_rows",
        "_explicit_providers",
        "_provided",
        "_weights_by_attribute",
        "_columns",
    )

    def __init__(
        self,
        population: Population,
        *,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
    ) -> None:
        if not isinstance(population, Population):
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        self._population = population
        self._sensitivities = (
            sensitivities
            if sensitivities is not None
            else population.sensitivity_model()
        )
        self._default_model = (
            default_model
            if default_model is not None
            else population.default_model()
        )
        obs = active_observer()
        start = perf_counter() if obs is not None else 0.0
        ids = population.ids()
        self._ids: tuple[Hashable, ...] = ids
        self._index: dict[Hashable, int] = {pid: i for i, pid in enumerate(ids)}
        self._segments = tuple(p.segment for p in population)
        self._thresholds = np.array(
            [self._default_model.threshold(pid) for pid in ids], dtype=np.float64
        )
        self._strict = self._default_model.strict

        # Group every explicit preference entry by (attribute, purpose):
        # column key -> ([provider row], [(V, G, R)]).  Also track which
        # providers supplied which attributes (the implicit-zero rule only
        # applies to supplied attributes) and which providers already hold
        # an explicit entry for a column (they are never completed).
        explicit_rows: dict[tuple[str, str], tuple[list[int], list[tuple[int, int, int]]]] = {}
        explicit_providers: dict[tuple[str, str], set[int]] = {}
        provided: dict[str, list[int]] = {}
        for row, provider in enumerate(population):
            preferences = provider.preferences
            for attribute in preferences.attributes_provided:
                provided.setdefault(attribute, []).append(row)
            for entry in preferences.entries:
                key = (entry.attribute, entry.purpose)
                providers, ranks = explicit_rows.setdefault(key, ([], []))
                providers.append(row)
                ranks.append(
                    (
                        entry.tuple.visibility,
                        entry.tuple.granularity,
                        entry.tuple.retention,
                    )
                )
                explicit_providers.setdefault(key, set()).add(row)
        self._explicit_rows = explicit_rows
        self._explicit_providers = explicit_providers
        self._provided = {
            attribute: np.array(sorted(rows), dtype=np.int64)
            for attribute, rows in provided.items()
        }
        self._weights_by_attribute: dict[str, np.ndarray] = {}
        self._columns: dict[tuple[str, str], CompiledColumn] = {}
        if obs is not None:
            obs.inc("perf.compilations")
            obs.set_gauge("perf.compiled_providers", len(ids))
            obs.observe("perf.compile_seconds", perf_counter() - start)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def population(self) -> Population:
        """The population this compilation was built from."""
        return self._population

    @property
    def sensitivities(self) -> SensitivityModel:
        """The sensitivity model baked into the weight tensors."""
        return self._sensitivities

    @property
    def default_model(self) -> DefaultModel:
        """The default-threshold model baked into ``thresholds``."""
        return self._default_model

    @property
    def ids(self) -> tuple[Hashable, ...]:
        """Provider ids, in population order (the array row order)."""
        return self._ids

    @property
    def segments(self) -> tuple[str | None, ...]:
        """Per-provider segment labels, in row order."""
        return self._segments

    @property
    def thresholds(self) -> np.ndarray:
        """The threshold vector ``v`` (row-aligned, ``inf`` = never)."""
        return self._thresholds

    @property
    def strict(self) -> bool:
        """Definition 4's strict-inequality flag."""
        return self._strict

    def __len__(self) -> int:
        return len(self._ids)

    def __repr__(self) -> str:
        return (
            f"CompiledPopulation({len(self._ids)} providers, "
            f"{len(self._explicit_rows)} explicit columns)"
        )

    def row_of(self, provider_id: Hashable) -> int:
        """The array row index of *provider_id*.

        Raises
        ------
        UnknownProviderError
            If the provider is not in the compiled population.
        """
        try:
            return self._index[provider_id]
        except KeyError:
            raise UnknownProviderError(provider_id) from None

    # ------------------------------------------------------------------
    # compiled tensors
    # ------------------------------------------------------------------

    def attribute_weights(self, attribute: str) -> np.ndarray:
        """The ``(N, 3)`` weight tensor for one attribute.

        ``weights[i, d] = Sigma^a x s_i^a x s_i^a[dim_d]`` with ``dim_d``
        running over :data:`RANK_AXES` — exactly the factor multiplying
        Eq. 12's exceedance in Eq. 14.  Computed on first request, cached.
        """
        cached = self._weights_by_attribute.get(attribute)
        if cached is not None:
            return cached
        model = self._sensitivities
        attribute_weight = model.attribute_weight(attribute)
        weights = np.empty((len(self._ids), 3), dtype=np.float64)
        for row, pid in enumerate(self._ids):
            datum = model.datum(pid, attribute)
            base = attribute_weight * datum.value
            weights[row, 0] = base * datum.visibility
            weights[row, 1] = base * datum.granularity
            weights[row, 2] = base * datum.retention
        self._weights_by_attribute[attribute] = weights
        return weights

    def shared_state(self) -> tuple[dict[str, object], dict[str, np.ndarray]]:
        """The compilation split into picklable meta and raw arrays.

        Returns ``(meta, arrays)`` where *arrays* holds every
        policy-independent tensor — the threshold vector, each provided
        attribute's ``(N, 3)`` weight tensor and sorted supplied-row
        vector, and each explicit column's provider-row and rank arrays —
        and *meta* is the small picklable remainder (ids, segments,
        strictness, the sorted attribute and column-key orders the array
        names are indexed by).  The parallel executor copies *arrays*
        into one shared-memory block so worker processes can rebuild
        shard-restricted column views without re-pickling or re-compiling
        the population (see :mod:`repro.perf.parallel`).

        Array naming: ``w{i}``/``p{i}`` pair with ``meta["attributes"][i]``,
        ``cp{j}``/``cr{j}`` with ``meta["column_keys"][j]``.  Explicit rows
        are emitted in population row order, so every ``p{i}`` and
        ``cp{j}`` is non-decreasing — shard restriction is a
        ``searchsorted`` slice.
        """
        attributes = sorted(self._provided)
        column_keys = sorted(self._explicit_rows)
        arrays: dict[str, np.ndarray] = {"thresholds": self._thresholds}
        for i, attribute in enumerate(attributes):
            arrays[f"w{i}"] = self.attribute_weights(attribute)
            arrays[f"p{i}"] = self._provided[attribute]
        for j, key in enumerate(column_keys):
            providers, ranks = self._explicit_rows[key]
            arrays[f"cp{j}"] = np.array(providers, dtype=np.int64)
            arrays[f"cr{j}"] = np.array(ranks, dtype=np.int64).reshape(-1, 3)
        meta = {
            "n": len(self._ids),
            "ids": self._ids,
            "segments": self._segments,
            "strict": self._strict,
            "attributes": attributes,
            "column_keys": column_keys,
        }
        return meta, arrays

    def column(self, attribute: str, purpose: str) -> CompiledColumn:
        """The compiled column for ``(attribute, purpose)``.

        Materialised lazily and cached — the set of relevant columns is
        driven by the policies being evaluated, not by the population.
        """
        key = (attribute, purpose)
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        weights = self.attribute_weights(attribute)
        providers_ranks = self._explicit_rows.get(key)
        if providers_ranks is not None:
            row_providers = np.array(providers_ranks[0], dtype=np.int64)
            row_ranks = np.array(providers_ranks[1], dtype=np.int64).reshape(-1, 3)
        else:
            row_providers = np.empty(0, dtype=np.int64)
            row_ranks = np.empty((0, 3), dtype=np.int64)
        row_weights = weights[row_providers]
        supplied = self._provided.get(attribute)
        if supplied is None or supplied.size == 0:
            implicit_providers = np.empty(0, dtype=np.int64)
        else:
            holders = self._explicit_providers.get(key)
            if holders:
                mask = np.isin(
                    supplied, np.fromiter(holders, dtype=np.int64), invert=True
                )
                implicit_providers = supplied[mask]
            else:
                implicit_providers = supplied
        implicit_weights = weights[implicit_providers]
        column = CompiledColumn(
            attribute=attribute,
            purpose=purpose,
            row_providers=row_providers,
            row_ranks=row_ranks,
            row_weights=row_weights,
            implicit_providers=implicit_providers,
            implicit_weights=implicit_weights,
        )
        self._columns[key] = column
        return column

"""Observability: process-local metrics, span tracing, structured logs.

Every quantity the paper's model computes — ``P(W)`` (Definition 2),
``Violation_i`` (Definition 4 / Eq. 15), ``P(Default)`` (Definition 5) —
now leaves a measurable trail: how often each engine ran, which path
(cached / delta / full / reference oracle) served it, how long it took,
what the resilience layer retried, degraded, or replayed along the way.
The package has three pieces:

* :mod:`repro.obs.metrics` — the :class:`MetricsRegistry` of counters,
  gauges, and timers, exportable as sorted JSON or Prometheus text;
* :mod:`repro.obs.tracing` — the span :class:`~repro.obs.tracing.Tracer`
  with a structured-``logging`` backend and per-run trace trees;
* this module — the **activation switch** the instrumented call sites
  consult.

Zero cost when disabled
-----------------------
Observability is off by default.  Instrumented hot paths guard every
metric write behind one check::

    obs = active_observer()
    if obs is not None:
        obs.inc("engine.batch.cache_hits")

and the module-level :func:`span` helper returns one shared no-op
context manager while disabled — no allocation, no lock, no timestamps.
``tests/obs/test_overhead.py`` holds the guard: the disabled-path cost
is a global read plus a ``None`` comparison.

Enabling
--------
Use :func:`observed` (a context manager) in library code and tests, or
the CLI's global ``--metrics PATH`` / ``--trace`` / ``-v`` flags, which
enable an observer around the command and export the snapshot and span
tree when it finishes::

    with observed() as obs:
        run_expansion_sweep(...)
    print(obs.registry.to_prometheus())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from .metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Timer,
    escape_label_value,
    snapshot_to_prometheus,
)
from .render import render_snapshot
from .tracing import SpanRecord, Tracer


class Observability:
    """One observed run's registry + tracer, with shorthand accessors."""

    __slots__ = ("registry", "tracer")

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer()

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        """Increment the named counter."""
        self.registry.counter(name, **labels).inc(amount)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the named gauge."""
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, seconds: float, **labels: object) -> None:
        """Record one duration sample on the named timer."""
        self.registry.timer(name, **labels).observe(seconds)

    def timer(self, name: str, **labels: object):
        """``with obs.timer("name"):`` — time a block into the named timer."""
        return self.registry.timer(name, **labels).time()

    def span(self, name: str, **attributes: Any):
        """Open a span on this observer's tracer."""
        return self.tracer.span(name, **attributes)

    def snapshot(self) -> dict[str, Any]:
        """The metrics snapshot plus the recorded span trees."""
        document = self.registry.snapshot()
        document["spans"] = self.tracer.as_dict()
        return document

    def merge_snapshot(self, snapshot: dict[str, Any]) -> None:
        """Fold another registry's snapshot into this observer's registry.

        The parallel executor uses this to surface worker-side metrics
        (evaluation counts, cache hits, timer samples) in the parent's
        ``--metrics`` export.  See
        :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot`.
        """
        self.registry.merge_snapshot(snapshot)


class _NoopSpan:
    """The shared do-nothing span handed out while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        return False

    def annotate(self, **attributes: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()

_OBSERVER: Observability | None = None


def active_observer() -> Observability | None:
    """The enabled :class:`Observability`, or ``None`` — the hot-path guard."""
    return _OBSERVER


def observability_enabled() -> bool:
    """Whether an observer is currently active."""
    return _OBSERVER is not None


def enable_observability() -> Observability:
    """Install (and return) a fresh process-local observer.

    Re-enabling while already enabled replaces the observer — each
    enable starts a clean registry and trace, which is what the CLI and
    tests want.  Pair with :func:`disable_observability`, or prefer the
    :func:`observed` context manager.
    """
    global _OBSERVER
    _OBSERVER = Observability()
    return _OBSERVER


def disable_observability() -> None:
    """Remove the active observer; instrumentation reverts to no-ops."""
    global _OBSERVER
    _OBSERVER = None


@contextmanager
def observed() -> Iterator[Observability]:
    """Enable observability for a ``with`` block, restoring the prior state."""
    global _OBSERVER
    previous = _OBSERVER
    observer = Observability()
    _OBSERVER = observer
    try:
        yield observer
    finally:
        _OBSERVER = previous


def span(name: str, **attributes: Any):
    """A span on the active tracer, or the shared no-op when disabled.

    The instrumented call sites use this directly::

        with span("engine.violations", providers=n):
            ...

    Disabled, it returns one preallocated object and records nothing.
    """
    observer = _OBSERVER
    if observer is None:
        return _NOOP_SPAN
    return observer.tracer.span(name, **attributes)


__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "Observability",
    "SpanRecord",
    "Timer",
    "Tracer",
    "active_observer",
    "disable_observability",
    "enable_observability",
    "escape_label_value",
    "observability_enabled",
    "observed",
    "render_snapshot",
    "snapshot_to_prometheus",
    "span",
]

"""Delta dynamics: incremental engine vs per-round full rebuild.

The bug this PR ends: every dynamics round with departures used to
recompile the whole population (and under ``workers=N`` re-fork the
pool and re-export shared memory).  The incremental engine tombstones
departures in place, so a 40-round churn run compiles exactly once.
This bench times both paths on the acceptance scenario (2000 providers,
40 rounds) and records per-round cost into the BENCH record; results
must also stay bit-for-bit identical, so the measurement doubles as a
parity check.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks the scenario so the module
doubles as a CI smoke test.  The ``workers=4`` variant follows the same
loud self-skip discipline as the parallel sweep benches: on a box
without a core per worker it records ``"skipped"`` instead of noise.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis import format_table
from repro.core.dimensions import Dimension
from repro.datasets import healthcare_scenario
from repro.obs import observed
from repro.perf import make_batch_engine
from repro.simulation import run_dynamics
from repro.simulation.dynamics import build_round_outcome, round_policy
from repro.simulation.widening import WideningStep

from conftest import emit, record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
DELTA_PROVIDERS = 60 if SMOKE else 2000
DELTA_ROUNDS = 6 if SMOKE else 40
DELTA_WORKERS = 4
#: Widening visibility only keeps churn under the compaction threshold,
#: so the incremental path is pure tombstones (the acceptance shape).
STEP = WideningStep.along(Dimension.VISIBILITY, 1)
TIMING_REPEATS = 3


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(repeats: int, run) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def _rebuild_dynamics(scenario, *, workers: int = 1):
    """The pre-incremental loop: close + recompile after every departure."""
    outcomes = []
    current_population = scenario.population
    current_policy = round_policy(
        scenario.policy, scenario.policy.name, STEP, scenario.taxonomy, 0
    )
    engine = make_batch_engine(
        current_population, workers=workers, mutable=False
    )
    try:
        for round_index in range(DELTA_ROUNDS):
            if len(current_population) == 0:
                break
            if round_index > 0:
                current_policy = round_policy(
                    current_policy,
                    scenario.policy.name,
                    STEP,
                    scenario.taxonomy,
                    round_index,
                )
            report = engine.evaluate(current_policy)
            outcome = build_round_outcome(
                report,
                round_index=round_index,
                per_provider_utility=1.0,
                extra_utility_per_round=0.25,
            )
            outcomes.append(outcome)
            if outcome.defaulted_providers:
                current_population = current_population.without(
                    outcome.defaulted_providers
                )
                engine.close()
                engine = make_batch_engine(
                    current_population, workers=workers, mutable=False
                )
    finally:
        engine.close()
    return outcomes


def _incremental_dynamics(scenario, *, workers: int = 1):
    return run_dynamics(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        rounds=DELTA_ROUNDS,
        step=STEP,
        workers=workers,
    )


def test_delta_dynamics_vs_rebuild(benchmark):
    """Serial churn run: one compile must beat a compile per departure round."""
    scenario = healthcare_scenario(DELTA_PROVIDERS, seed=9)

    def measure():
        rebuild_outcomes = _rebuild_dynamics(scenario)
        rebuild_seconds = _best_of(
            TIMING_REPEATS, lambda: _rebuild_dynamics(scenario)
        )
        with observed() as obs:
            incremental_outcomes = _incremental_dynamics(scenario)
            counters = {
                c["name"]: c["value"] for c in obs.snapshot()["counters"]
            }
        incremental_seconds = _best_of(
            TIMING_REPEATS, lambda: _incremental_dynamics(scenario)
        )
        return (
            rebuild_outcomes,
            rebuild_seconds,
            incremental_outcomes,
            incremental_seconds,
            counters,
        )

    (
        rebuild_outcomes,
        rebuild_seconds,
        incremental_outcomes,
        incremental_seconds,
        counters,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The timing is only meaningful if both paths produce the same run.
    assert incremental_outcomes == rebuild_outcomes
    assert counters["perf.compilations"] == 1.0

    rounds = len(rebuild_outcomes)
    speedup = (
        rebuild_seconds / incremental_seconds
        if incremental_seconds
        else float("inf")
    )
    emit(
        "E7: churn dynamics, full rebuild per round vs incremental engine",
        format_table(
            ["providers", "rounds", "rebuild s", "incremental s",
             "rebuild s/round", "incremental s/round", "speedup"],
            [
                [
                    DELTA_PROVIDERS,
                    rounds,
                    round(rebuild_seconds, 4),
                    round(incremental_seconds, 4),
                    round(rebuild_seconds / rounds, 5),
                    round(incremental_seconds / rounds, 5),
                    round(speedup, 2),
                ]
            ],
        ),
    )
    record(
        "delta_dynamics",
        providers=DELTA_PROVIDERS,
        rounds=rounds,
        workers=1,
        smoke=SMOKE,
        rebuild_seconds=rebuild_seconds,
        incremental_seconds=incremental_seconds,
        rebuild_seconds_per_round=rebuild_seconds / rounds,
        incremental_seconds_per_round=incremental_seconds / rounds,
        speedup=speedup,
        compilations=counters["perf.compilations"],
        removals=counters.get("delta.removals", 0.0),
    )
    # At full size the single-compile path must not lose to recompiling;
    # at smoke sizes only sanity (both paths agree) is held.
    if not SMOKE:
        assert incremental_seconds <= rebuild_seconds


def test_delta_dynamics_vs_rebuild_workers(benchmark):
    """Parallel churn run: tombstones also spare the pool re-forks.

    Under ``workers=N`` the rebuild path pays fork + shared-memory
    re-export on every departure round, so the incremental win is larger
    — but only measurable with a core per worker.  On an under-cored box
    this skips loudly (a BENCH record with ``"skipped"`` set) rather
    than publishing timings where workers time-slice one CPU.
    """
    cores = _available_cores()
    workers = 2 if SMOKE else DELTA_WORKERS
    if not SMOKE and cores < workers:
        record(
            "delta_dynamics_parallel",
            providers=DELTA_PROVIDERS,
            rounds=DELTA_ROUNDS,
            workers=workers,
            cores=cores,
            smoke=SMOKE,
            skipped="cores<workers",
        )
        pytest.skip(
            f"parallel delta bench needs >= {workers} cores "
            f"(have {cores}); timings would be meaningless"
        )
    scenario = healthcare_scenario(DELTA_PROVIDERS, seed=9)

    def measure():
        rebuild_outcomes = _rebuild_dynamics(scenario, workers=workers)
        rebuild_seconds = _best_of(
            TIMING_REPEATS,
            lambda: _rebuild_dynamics(scenario, workers=workers),
        )
        incremental_outcomes = _incremental_dynamics(
            scenario, workers=workers
        )
        incremental_seconds = _best_of(
            TIMING_REPEATS,
            lambda: _incremental_dynamics(scenario, workers=workers),
        )
        return (
            rebuild_outcomes,
            rebuild_seconds,
            incremental_outcomes,
            incremental_seconds,
        )

    (
        rebuild_outcomes,
        rebuild_seconds,
        incremental_outcomes,
        incremental_seconds,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    assert incremental_outcomes == rebuild_outcomes
    rounds = len(rebuild_outcomes)
    speedup = (
        rebuild_seconds / incremental_seconds
        if incremental_seconds
        else float("inf")
    )
    emit(
        "E7: churn dynamics under workers, rebuild (re-fork per round) vs "
        "incremental (one pool)",
        format_table(
            ["providers", "rounds", "workers", "cores",
             "rebuild s", "incremental s", "speedup"],
            [
                [
                    DELTA_PROVIDERS,
                    rounds,
                    workers,
                    cores,
                    round(rebuild_seconds, 4),
                    round(incremental_seconds, 4),
                    round(speedup, 2),
                ]
            ],
        ),
    )
    record(
        "delta_dynamics_parallel",
        providers=DELTA_PROVIDERS,
        rounds=rounds,
        workers=workers,
        cores=cores,
        smoke=SMOKE,
        rebuild_seconds=rebuild_seconds,
        incremental_seconds=incremental_seconds,
        speedup=speedup,
    )
    if not SMOKE:
        assert incremental_seconds <= rebuild_seconds

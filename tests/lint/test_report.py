"""Unit tests for LintReport aggregation and the registry plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import LintConfigurationError, ValidationError
from repro.lint import (
    Diagnostic,
    Layer,
    LintConfig,
    LintReport,
    Severity,
    SourceLocation,
    all_rules,
    get_rule,
    lint_documents,
)


def diag(code, severity, message="m"):
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        location=SourceLocation("taxonomy"),
    )


@pytest.fixture()
def mixed_report():
    return LintReport.from_diagnostics(
        [
            diag("PVL001", Severity.ERROR),
            diag("PVL004", Severity.WARNING),
            diag("PVL004", Severity.WARNING),
            diag("PVL103", Severity.INFO),
        ]
    )


class TestLintReport:
    def test_counts_and_accessors(self, mixed_report):
        assert len(mixed_report) == 4
        assert mixed_report.count(Severity.WARNING) == 2
        assert len(mixed_report.errors) == 1
        assert len(mixed_report.warnings) == 2
        assert len(mixed_report.infos) == 1
        assert mixed_report.codes() == ("PVL001", "PVL004", "PVL103")
        assert mixed_report.code_counts() == {
            "PVL001": 1,
            "PVL004": 2,
            "PVL103": 1,
        }
        assert len(mixed_report.with_code("PVL004")) == 2

    def test_max_severity(self, mixed_report):
        assert mixed_report.max_severity() is Severity.ERROR
        assert LintReport(diagnostics=()).max_severity() is None

    def test_exit_code_gating(self, mixed_report):
        assert mixed_report.exit_code() == 1
        assert mixed_report.exit_code(fail_on=Severity.INFO) == 1
        assert mixed_report.exit_code(fail_on=None) == 0
        warnings_only = LintReport.from_diagnostics(
            [diag("PVL004", Severity.WARNING)]
        )
        assert warnings_only.exit_code(fail_on=Severity.ERROR) == 0
        assert warnings_only.exit_code(fail_on=Severity.WARNING) == 1
        assert LintReport(diagnostics=()).exit_code(fail_on=Severity.INFO) == 0

    def test_summary_and_as_dict(self, mixed_report):
        summary = mixed_report.summary()
        assert summary["total"] == 4
        assert summary["errors"] == 1
        payload = mixed_report.as_dict()
        assert len(payload["diagnostics"]) == 4
        assert payload["summary"] == summary

    def test_bool_and_iter(self, mixed_report):
        assert mixed_report
        assert not LintReport(diagnostics=())
        assert [d.code for d in mixed_report][0] == "PVL001"


class TestRegistry:
    def test_catalogue_meets_issue_floor(self):
        rules = all_rules()
        assert len({info.code for info in rules}) >= 10
        layers = {info.layer for info in rules}
        assert layers == {
            Layer.DOCUMENT,
            Layer.MODEL,
            Layer.ECONOMICS,
            Layer.POPULATION,
        }

    def test_get_rule_and_unknown_code(self):
        assert get_rule("PVL001").title == "unknown purpose"
        with pytest.raises(LintConfigurationError):
            get_rule("PVL999")

    def test_select_unknown_code_raises(self, taxonomy, clean_policy):
        with pytest.raises(LintConfigurationError):
            lint_documents(taxonomy, policy=clean_policy, select=["PVL999"])

    def test_ignore_suppresses_code(self, taxonomy, clean_population):
        policy = {"name": "base", "rules": [rule_with_bad_purpose()]}
        report = lint_documents(
            taxonomy, policy=policy, population=clean_population,
            ignore=["PVL001"],
        )
        assert "PVL001" not in report.codes()

    def test_clean_documents_produce_no_findings(
        self, taxonomy, clean_policy, clean_population
    ):
        report = lint_documents(
            taxonomy, policy=clean_policy, population=clean_population
        )
        assert report.codes() == ()

    def test_taxonomy_alone_is_lintable(self, taxonomy):
        report = lint_documents(taxonomy)
        assert report.codes() == ()


class TestLintConfig:
    def test_rejects_bad_alpha(self):
        with pytest.raises(ValidationError):
            LintConfig(alpha=1.5)
        with pytest.raises(ValidationError):
            LintConfig(alpha=-0.1)

    def test_rejects_negative_utility(self):
        with pytest.raises(ValidationError):
            LintConfig(utility=-1.0)

    def test_rejects_negative_bound(self):
        with pytest.raises(ValidationError):
            LintConfig(max_extra_utility=-2.0)


def rule_with_bad_purpose():
    from .conftest import rule

    return rule(purpose="resale")


class TestRunnerDegradation:
    def test_unlowerable_policy_still_gets_document_diagnostics(
        self, taxonomy, clean_population
    ):
        policy = {"name": "base", "rules": [rule_with_bad_purpose()]}
        report = lint_documents(
            taxonomy, policy=policy, population=clean_population
        )
        assert "PVL001" in report.codes()
        # The model layer needed a lowered policy and stayed out of the way.
        assert "PVL101" not in report.codes()

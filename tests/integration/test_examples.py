"""Smoke tests: every example script runs to completion and says the
load-bearing things."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["Table 1 (reproduced)", "P(W)        = 0.6667"]),
    ("healthcare_audit.py", ["population summary", "verdict:"]),
    (
        "crm_expansion_economics.py",
        ["Section 9 sweep", "best response", "cost of myopia"],
    ),
    (
        "social_network_drift.py",
        ["policy after drift", "implicit-zero rule", "drift dynamics"],
    ),
    ("ppdb_enforcement.py", ["DENIED", "audit log", "evicted"]),
    (
        "threshold_estimation.py",
        ["estimated default-fraction curve", "churn under"],
    ),
    (
        "government_captive.py",
        ["weakened feedback loop", "economic brake", "VIOLATED"],
    ),
]


@pytest.mark.parametrize("script,expected", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, expected):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for needle in expected:
        assert needle in result.stdout, (
            f"{script}: {needle!r} missing from output"
        )

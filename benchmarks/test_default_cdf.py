"""E6 — Section 10's future-work estimator: the empirical default CDF.

"Long-term observation ... can be used to empirically construct a
cumulative distribution function of the number of defaults as the house
expands its privacy policies."  The widening sweep plays the role of that
observation; the bench prints the CDF, checks monotone non-decrease and
saturation, and exercises the planner query ("the widest policy within a
default budget") the paper envisions houses running.
"""

from __future__ import annotations

from repro.analysis import default_cdf_from_sweep, format_table
from repro.simulation import run_expansion_sweep

from conftest import emit

BUDGETS = (0.05, 0.10, 0.25, 0.50)


def test_default_cdf(benchmark, healthcare_200):
    def build():
        sweep = run_expansion_sweep(
            healthcare_200.population,
            healthcare_200.policy,
            healthcare_200.taxonomy,
            max_steps=6,
        )
        return sweep, default_cdf_from_sweep(sweep)

    sweep, cdf = benchmark(build)

    rows = [
        [step, defaults, cdf.fraction_at(step)]
        for step, defaults in zip(cdf.steps, cdf.cumulative_defaults)
    ]
    emit(
        "E6: empirical default CDF (healthcare)",
        format_table(["widening step", "cum defaults", "fraction"], rows),
    )
    budget_rows = [
        [budget, cdf.widest_step_within(budget)] for budget in BUDGETS
    ]
    emit(
        "E6: widest policy within a default budget",
        format_table(["budget", "widest step"], budget_rows),
    )

    # CDF properties: non-decreasing, bounded by N, saturates with ladders.
    assert list(cdf.cumulative_defaults) == sorted(cdf.cumulative_defaults)
    assert cdf.cumulative_defaults[-1] <= cdf.population_size
    assert cdf.defaults_at(0) == 0
    assert cdf.is_saturated()

    # The planner query is monotone in the budget and respects it.
    widths = [cdf.widest_step_within(budget) for budget in BUDGETS]
    assert widths == sorted(widths)
    for budget, width in zip(BUDGETS, widths):
        assert cdf.fraction_at(width) <= budget

    # The CDF is exactly the sweep's default counts.
    assert cdf.cumulative_defaults == sweep.default_counts()

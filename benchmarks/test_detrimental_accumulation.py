"""E4 — the abstract's claim: "the accumulation of privacy violations can
have a detrimental effect upon the data collector."

Two instruments:

1. the static sweep — utility rises while widening buys more than it loses
   to defaults, then crosses over and stays below the unwidened baseline
   (shape-level assertions: rise exists, crossover exists, end-of-sweep
   utility below baseline);
2. the multi-round dynamics — same story path-dependently, with defaulted
   providers permanently gone.

The absolute numbers are synthetic (Westin-segment population); the
asserted *shape* is the paper's.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.simulation import run_dynamics, run_expansion_sweep

from conftest import emit


def test_utility_rise_then_fall(benchmark, healthcare_200):
    def sweep():
        return run_expansion_sweep(
            healthcare_200.population,
            healthcare_200.policy,
            healthcare_200.taxonomy,
            max_steps=5,
            per_provider_utility=healthcare_200.per_provider_utility,
            extra_utility_per_step=healthcare_200.extra_utility_per_step,
        )

    result = benchmark(sweep)
    rows = [
        [
            row.step,
            row.violation_probability,
            row.default_probability,
            row.n_future,
            row.utility_future,
            row.utility_gain,
        ]
        for row in result.rows
    ]
    emit(
        "E4: utility under accumulating violations (healthcare)",
        format_table(
            ["step", "P(W)", "P(Default)", "N_fut", "U_fut", "gain"], rows
        ),
    )

    utilities = [row.utility_future for row in result.rows]
    base = utilities[0]
    # Rise: some widening level strictly beats the baseline.
    assert max(utilities[1:]) > base
    # Fall: a crossover exists and the sweep ends detrimental.
    crossover = result.crossover_step()
    assert crossover is not None
    assert utilities[-1] < base
    # The peak comes before the crossover.
    peak_step = result.best_step().step
    assert peak_step < crossover


def test_dynamics_confirm_detriment(benchmark, crm_200):
    def dynamics():
        return run_dynamics(
            crm_200.population,
            crm_200.policy,
            crm_200.taxonomy,
            rounds=6,
            per_provider_utility=crm_200.per_provider_utility,
            extra_utility_per_round=crm_200.extra_utility_per_step,
        )

    outcomes = benchmark(dynamics)
    rows = [
        [
            o.round_index,
            o.n_start,
            o.n_defaulted,
            o.n_remaining,
            o.violation_probability,
            o.utility,
        ]
        for o in outcomes
    ]
    emit(
        "E4 dynamics: widen-then-default rounds (crm)",
        format_table(
            ["round", "N_start", "defaults", "N_left", "P(W)", "utility"],
            rows,
        ),
    )

    # Population is non-increasing and someone eventually leaves.
    remaining = [o.n_remaining for o in outcomes]
    assert remaining == sorted(remaining, reverse=True)
    assert remaining[-1] < remaining[0]
    # Baseline round is clean (Section 9's setup).
    assert outcomes[0].n_defaulted == 0
    # Utility ends below its peak: the house overshot.
    utilities = [o.utility for o in outcomes]
    assert utilities[-1] < max(utilities)

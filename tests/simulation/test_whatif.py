"""Unit tests for the what-if analyzer."""

from __future__ import annotations

import pytest

from repro.simulation import WhatIfAnalyzer
from repro.simulation.widening import WideningStep, widen


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import crm_scenario

    return crm_scenario(80, seed=9)


@pytest.fixture(scope="module")
def analyzer(scenario):
    return WhatIfAnalyzer(
        scenario.population,
        scenario.policy,
        per_provider_utility=scenario.per_provider_utility,
        alpha=0.1,
    )


class TestWhatIf:
    def test_baseline_cached(self, analyzer):
        assert analyzer.baseline_report.violation_probability == 0.0

    def test_identity_candidate_changes_nothing(self, analyzer, scenario):
        result = analyzer.assess(scenario.policy, extra_utility=0.0)
        assert result.violation_probability_delta == 0.0
        assert result.default_probability_delta == 0.0
        assert result.severity_delta == 0.0
        assert not result.assessment.justified  # T=0 is never strictly better

    def test_widened_candidate_increases_all_metrics(self, analyzer, scenario):
        candidate = widen(
            scenario.policy, WideningStep.uniform(2), scenario.taxonomy
        )
        result = analyzer.assess(candidate, extra_utility=1.0)
        assert result.violation_probability_delta > 0
        assert result.severity_delta > 0

    def test_certificate_evaluated_on_candidate(self, analyzer, scenario):
        candidate = widen(
            scenario.policy, WideningStep.uniform(2), scenario.taxonomy
        )
        result = analyzer.assess(candidate, extra_utility=1.0)
        assert not result.certificate.satisfied  # alpha=0.1, nearly all violated

    def test_named_resale_candidate(self, analyzer, scenario):
        from repro.datasets.crm import crm_resale_policy

        candidate = crm_resale_policy(scenario.taxonomy)
        result = analyzer.assess(candidate, extra_utility=2.0)
        # Resale introduces a brand-new purpose: implicit zero tuples fire
        # for every provider, so everyone is violated.
        assert result.candidate.violation_probability == 1.0
        assert "crm-with-resale" in result.summary()

    def test_summary_mentions_verdict(self, analyzer, scenario):
        result = analyzer.assess(scenario.policy, extra_utility=0.0)
        assert "not justified" in result.summary()

    def test_invalid_alpha_rejected(self, scenario):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            WhatIfAnalyzer(scenario.population, scenario.policy, alpha=2.0)

"""Unit tests for censored default observations."""

from __future__ import annotations

import pytest

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
)
from repro.estimation import DefaultObservation, observe_widening_history
from repro.exceptions import ValidationError
from repro.simulation import WideningStep, widening_path
from repro.taxonomy import standard_taxonomy


def _provider(pid: str, threshold: float) -> Provider:
    prefs = ProviderPreferences(
        pid, [("weight", PrivacyTuple("billing", 1, 1, 1))]
    )
    return Provider(preferences=prefs, threshold=threshold)


@pytest.fixture()
def policies():
    taxonomy = standard_taxonomy(["billing"])
    base = HousePolicy(
        [("weight", PrivacyTuple("billing", 1, 1, 1))], name="base"
    )
    return [
        policy
        for _, policy in widening_path(
            base, WideningStep.uniform(1), taxonomy, 3
        )
    ]


class TestDefaultObservation:
    def test_censored_flag(self):
        assert DefaultObservation("a", 2.0, None).censored
        assert not DefaultObservation("a", 2.0, 5.0).censored

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValidationError):
            DefaultObservation("a", 5.0, 2.0)
        with pytest.raises(ValidationError):
            DefaultObservation("a", -1.0, None)


class TestObserveWideningHistory:
    def test_brackets_contain_true_thresholds(self, policies):
        # severity at step k (uniform widening of a rank-1 policy vs
        # rank-1 preferences): 3*k (3 dims, exceedance k each) until
        # ladders clamp.  Thresholds chosen to default at different steps.
        population = Population(
            [
                _provider("leaves-first", 1.0),  # defaults at severity 3
                _provider("leaves-later", 4.0),  # defaults at severity 6
                _provider("never-leaves", 1e9),
            ]
        )
        observations = {
            obs.provider_id: obs
            for obs in observe_widening_history(population, policies)
        }
        for provider in population:
            obs = observations[provider.provider_id]
            if obs.censored:
                assert provider.threshold >= obs.lower
            else:
                assert obs.lower <= provider.threshold < obs.upper

    def test_departed_get_finite_upper(self, policies):
        population = Population([_provider("x", 1.0)])
        [obs] = observe_widening_history(population, policies)
        assert not obs.censored
        assert obs.upper == 3.0  # first widening severity
        assert obs.lower == 0.0  # tolerated the base policy only

    def test_survivor_lower_is_last_severity(self, policies):
        population = Population([_provider("x", 1e9)])
        [obs] = observe_widening_history(population, policies)
        assert obs.censored
        assert obs.lower > 0.0

    def test_one_observation_per_initial_provider(self, policies):
        population = Population(
            [_provider(f"p{i}", float(i + 1)) for i in range(5)]
        )
        observations = observe_widening_history(population, policies)
        assert len(observations) == 5
        assert {obs.provider_id for obs in observations} == {
            f"p{i}" for i in range(5)
        }

    def test_empty_history_rejected(self):
        population = Population([_provider("x", 1.0)])
        with pytest.raises(ValidationError):
            observe_widening_history(population, [])

    def test_narrowing_sequence_rejected(self, policies):
        population = Population([_provider("x", 1e9)])
        with pytest.raises(ValidationError):
            observe_widening_history(
                population, [policies[-1], policies[0]]
            )

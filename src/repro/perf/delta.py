"""The incremental population engine: delta compile and delta evaluate.

Multi-round workloads (policy dynamics, the widening game, equilibrium
search) evolve their population between evaluations: providers default
and leave, join, or edit preferences.  Before this module existed every
churn event threw away the whole :class:`~repro.perf.compiled.
CompiledPopulation` — and, under ``workers=N``, the warm worker pool and
its shared-memory export with it.  The two classes here make churn cost
``O(changed)`` instead of ``O(population)``:

* :class:`MutableCompiledPopulation` — a compiled population whose
  stores accept in-place mutation.  **Removals are tombstones**: the row
  is masked out of the alive set and the NumPy column stores are not
  touched at all, so a departure round performs zero recompilation.
  **Appends and edits** patch the list-backed stores directly (rows stay
  non-decreasing, so shard restriction and the shared-memory layout
  contract survive) and invalidate only the lazily materialised columns.
  A compaction (full recompile of the survivors) happens only when the
  tombstone fraction crosses the configured threshold — never once per
  round.
* :class:`MutableBatchEngine` — the facade
  :func:`~repro.perf.parallel.make_batch_engine` returns.  It owns one
  execution backend (the serial
  :class:`~repro.perf.batch.BatchViolationEngine` or a live worker pool
  attached to the existing shm segment) for the lifetime of a run.
  While no tombstones exist every call delegates wholesale, so static
  workloads are byte-identical to the pre-incremental behaviour.  Once
  rows are tombstoned the backend keeps evaluating over the full
  capacity arrays (dead rows included — their per-provider sums are
  independent, which is what makes masking exact) and the facade
  restricts the merged arrays to the alive rows at assembly time.
  Structural mutations re-score only the changed rows through
  :meth:`~repro.perf.batch.BatchViolationEngine.rescore_rows` (serial)
  or compact and re-fork once (parallel pools, whose workers hold the
  old export).

Bit-for-bit contract: after any mutation sequence, every report equals a
fresh compile-and-evaluate of the final population — per-provider sums
touch only that provider's own entries and weights, so row masking and
row-restricted rescoring perform the identical floating-point additions
in the identical order.  The property suite in
``tests/properties/test_mutation_parity.py`` holds this over hundreds of
randomized add/remove/edit sequences, serial and parallel, cached and
uncached.

Mutations advance a monotonic **epoch** (:attr:`MutableBatchEngine.epoch`),
which the resilience layer folds into journal fingerprints: a journal
recorded at epoch ``k`` refuses to resume a run whose engine sits at a
different epoch (see :func:`repro.resilience.resume.journal_fingerprint`).

Observability: ``delta.reused`` / ``delta.rescored`` count the
``(provider, policy)`` pairs carried over versus recomputed by
structural mutations, ``delta.removals`` / ``delta.appends`` /
``delta.updates`` count mutation rows, ``delta.compactions`` and
``delta.pool_rebuilds`` count the expensive events, and the
``delta.tombstones`` / ``delta.epoch`` gauges track live state.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Hashable, Iterable

import numpy as np

from .._validation import check_probability
from ..core.default import DefaultModel
from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.population import Population, Provider
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import NEUTRAL_SENSITIVITY, SensitivityModel
from ..exceptions import (
    ParallelExecutionError,
    UnknownProviderError,
    ValidationError,
)
from ..obs import active_observer
from .batch import (
    BatchReport,
    BatchViolationEngine,
    PolicyFingerprint,
    assemble_report,
    policy_fingerprint,
)
from .compiled import CompiledColumn, CompiledPopulation
from .shards import shard_bounds

#: Default tombstone fraction above which a removal triggers compaction.
#: Churn below this level never recompiles; pass ``None`` to disable
#: automatic compaction entirely.
COMPACT_THRESHOLD = 0.5


class MutableCompiledPopulation:
    """A compiled population whose stores accept in-place churn.

    Implements the same ``CompiledLike`` surface the batch kernels
    consume (:class:`~repro.perf.batch.CompiledLike`) over the full
    **capacity** row space — tombstoned rows included — plus the
    mutation operations :meth:`remove`, :meth:`append`, :meth:`update`,
    and :meth:`compact`.  The alive view (:attr:`population`,
    :attr:`alive_rows`, :attr:`alive_ids`) is what callers observe;
    capacity rows are an implementation detail of keeping the NumPy
    stores append-only.

    Parameters
    ----------
    population:
        The initial providers; compiled exactly once here.
    sensitivities, default_model:
        Optional model overrides, as for
        :class:`~repro.perf.compiled.CompiledPopulation`.  With no
        overrides (the common case) mutated rows derive their weights
        and thresholds directly from the :class:`Provider` objects —
        the same arithmetic, in the same order, as a fresh compile.
    """

    __slots__ = (
        "_sigma",
        "_override_sensitivities",
        "_override_default",
        "_base",
        "_providers",
        "_ids_list",
        "_segments_list",
        "_index",
        "_thresholds",
        "_strict",
        "_alive",
        "_dead",
        "_explicit_rows",
        "_explicit_providers",
        "_provided",
        "_weights",
        "_columns",
        "_provided_arrays",
        "_structural_dirty",
        "_epoch",
        "_ids_tuple",
        "_segments_tuple",
        "_population_view",
        "_alive_rows_cache",
        "_alive_ids_cache",
        "_alive_segments_cache",
        "_models_epoch",
        "_sens_cache",
        "_default_cache",
    )

    def __init__(
        self,
        population: Population,
        *,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
    ) -> None:
        if not isinstance(population, Population):
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        self._override_sensitivities = sensitivities
        self._override_default = default_model
        self._sigma = population.attribute_sensitivities
        self._epoch = 0
        self._adopt(
            CompiledPopulation(
                population,
                sensitivities=sensitivities,
                default_model=default_model,
            )
        )

    def _adopt(self, compiled: CompiledPopulation) -> None:
        """Take ownership of a fresh compilation's state.

        The list-backed stores are rebuilt with the same walk the
        compiler performs, so entry order — and therefore every
        accumulation order downstream — matches the adopted compilation
        exactly.
        """
        self._base = compiled
        population = compiled.population
        self._providers: list[Provider] = list(population.providers)
        self._ids_list: list[Hashable] = list(compiled.ids)
        self._segments_list: list[str | None] = list(compiled.segments)
        self._index: dict[Hashable, int] = {
            pid: row for row, pid in enumerate(self._ids_list)
        }
        self._thresholds = compiled.thresholds.copy()
        self._strict = compiled.strict
        explicit_rows: dict[
            tuple[str, str], tuple[list[int], list[tuple[int, int, int]]]
        ] = {}
        explicit_providers: dict[tuple[str, str], set[int]] = {}
        provided: dict[str, list[int]] = {}
        for row, provider in enumerate(population):
            preferences = provider.preferences
            for attribute in preferences.attributes_provided:
                provided.setdefault(attribute, []).append(row)
            for entry in preferences.entries:
                key = (entry.attribute, entry.purpose)
                rows_list, ranks_list = explicit_rows.setdefault(key, ([], []))
                rows_list.append(row)
                ranks_list.append(
                    (
                        entry.tuple.visibility,
                        entry.tuple.granularity,
                        entry.tuple.retention,
                    )
                )
                explicit_providers.setdefault(key, set()).add(row)
        self._explicit_rows = explicit_rows
        self._explicit_providers = explicit_providers
        self._provided = provided
        self._alive = np.ones(len(self._ids_list), dtype=bool)
        self._dead = 0
        self._weights: dict[str, np.ndarray] = {}
        self._columns: dict[tuple[str, str], CompiledColumn] = {}
        self._provided_arrays: dict[str, np.ndarray] = {}
        self._structural_dirty = False
        self._ids_tuple: tuple[Hashable, ...] | None = compiled.ids
        self._segments_tuple: tuple[str | None, ...] | None = compiled.segments
        self._population_view: Population | None = population
        self._alive_rows_cache: np.ndarray | None = None
        self._alive_ids_cache: tuple[Hashable, ...] | None = None
        self._alive_segments_cache: tuple[str | None, ...] | None = None
        self._models_epoch = -1
        self._sens_cache: SensitivityModel | None = None
        self._default_cache: DefaultModel | None = None

    # ------------------------------------------------------------------
    # CompiledLike surface (capacity row space)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ids_list)

    def __repr__(self) -> str:
        return (
            f"MutableCompiledPopulation({self.alive_count} alive / "
            f"{len(self._ids_list)} rows, epoch {self._epoch})"
        )

    @property
    def ids(self) -> tuple[Hashable, ...]:
        """Provider ids over the full capacity row space."""
        if self._ids_tuple is None:
            self._ids_tuple = tuple(self._ids_list)
        return self._ids_tuple

    @property
    def segments(self) -> tuple[str | None, ...]:
        """Per-row segment labels over the full capacity row space."""
        if self._segments_tuple is None:
            self._segments_tuple = tuple(self._segments_list)
        return self._segments_tuple

    @property
    def thresholds(self) -> np.ndarray:
        """The capacity-aligned threshold vector ``v``."""
        return self._thresholds

    @property
    def strict(self) -> bool:
        """Definition 4's strict-inequality flag."""
        return self._strict

    def row_of(self, provider_id: Hashable) -> int:
        """The capacity row of an **alive** provider."""
        try:
            return self._index[provider_id]
        except KeyError:
            raise UnknownProviderError(provider_id) from None

    def attribute_weights(self, attribute: str) -> np.ndarray:
        """The capacity-aligned ``(N, 3)`` weight tensor for *attribute*."""
        cached = self._weights.get(attribute)
        if cached is not None:
            return cached
        weights = np.empty((len(self._ids_list), 3), dtype=np.float64)
        for row in range(len(self._ids_list)):
            self._fill_row_weights(weights, row, attribute)
        self._weights[attribute] = weights
        return weights

    def column(self, attribute: str, purpose: str) -> CompiledColumn:
        """The compiled column for ``(attribute, purpose)``, lazily built.

        Identical construction to
        :meth:`~repro.perf.compiled.CompiledPopulation.column`, read from
        the mutable stores; invalidated by structural mutations, kept
        across removals (tombstones never touch columns).
        """
        key = (attribute, purpose)
        cached = self._columns.get(key)
        if cached is not None:
            return cached
        weights = self.attribute_weights(attribute)
        providers_ranks = self._explicit_rows.get(key)
        if providers_ranks is not None:
            row_providers = np.array(providers_ranks[0], dtype=np.int64)
            row_ranks = np.array(providers_ranks[1], dtype=np.int64).reshape(-1, 3)
        else:
            row_providers = np.empty(0, dtype=np.int64)
            row_ranks = np.empty((0, 3), dtype=np.int64)
        row_weights = weights[row_providers]
        supplied = self._provided_array(attribute)
        if supplied is None or supplied.size == 0:
            implicit_providers = np.empty(0, dtype=np.int64)
        else:
            holders = self._explicit_providers.get(key)
            if holders:
                mask = np.isin(
                    supplied, np.fromiter(holders, dtype=np.int64), invert=True
                )
                implicit_providers = supplied[mask]
            else:
                implicit_providers = supplied
        implicit_weights = weights[implicit_providers]
        column = CompiledColumn(
            attribute=attribute,
            purpose=purpose,
            row_providers=row_providers,
            row_ranks=row_ranks,
            row_weights=row_weights,
            implicit_providers=implicit_providers,
            implicit_weights=implicit_weights,
        )
        self._columns[key] = column
        return column

    # ------------------------------------------------------------------
    # alive view
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; part of journal resume identity."""
        return self._epoch

    @property
    def capacity(self) -> int:
        """Total rows including tombstones."""
        return len(self._ids_list)

    @property
    def alive_count(self) -> int:
        """Rows not tombstoned."""
        return len(self._ids_list) - self._dead

    @property
    def dead_count(self) -> int:
        """Tombstoned rows awaiting compaction."""
        return self._dead

    @property
    def dead_fraction(self) -> float:
        """Tombstoned fraction of capacity (0.0 for an empty store)."""
        capacity = len(self._ids_list)
        return (self._dead / capacity) if capacity else 0.0

    @property
    def alive_rows(self) -> np.ndarray:
        """Sorted capacity rows of the alive providers."""
        cached = self._alive_rows_cache
        if cached is None:
            cached = np.flatnonzero(self._alive)
            self._alive_rows_cache = cached
        return cached

    @property
    def alive_ids(self) -> tuple[Hashable, ...]:
        """Alive provider ids, in row order."""
        cached = self._alive_ids_cache
        if cached is None:
            cached = tuple(self._ids_list[int(row)] for row in self.alive_rows)
            self._alive_ids_cache = cached
        return cached

    @property
    def alive_segments(self) -> tuple[str | None, ...]:
        """Alive segment labels, in row order."""
        cached = self._alive_segments_cache
        if cached is None:
            cached = tuple(
                self._segments_list[int(row)] for row in self.alive_rows
            )
            self._alive_segments_cache = cached
        return cached

    @property
    def population(self) -> Population:
        """The alive providers as a :class:`Population` (cached per epoch)."""
        view = self._population_view
        if view is None:
            view = Population(
                (self._providers[int(row)] for row in self.alive_rows),
                self._sigma,
            )
            self._population_view = view
        return view

    @property
    def sensitivities(self) -> SensitivityModel:
        """The sensitivity model in force (override or alive view's own)."""
        if self._override_sensitivities is not None:
            return self._override_sensitivities
        return self._alive_models()[0]

    @property
    def default_model(self) -> DefaultModel:
        """The default model in force (override or alive view's own)."""
        if self._override_default is not None:
            return self._override_default
        return self._alive_models()[1]

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def remove(self, provider_ids: Iterable[Hashable]) -> np.ndarray:
        """Tombstone the given alive providers; returns their sorted rows.

        The NumPy stores, materialised columns, and weight tensors are
        untouched — this is the operation that makes a departure round
        free of recompilation.
        """
        unique = list(dict.fromkeys(provider_ids))
        for pid in unique:
            if pid not in self._index:
                raise UnknownProviderError(pid)
        if not unique:
            return np.empty(0, dtype=np.int64)
        rows = [self._index.pop(pid) for pid in unique]
        row_array = np.array(sorted(rows), dtype=np.int64)
        self._alive[row_array] = False
        self._dead += len(rows)
        self._bump_epoch()
        return row_array

    def append(self, providers: Iterable[Provider]) -> np.ndarray:
        """Add new providers at the end of the row space; returns their rows.

        Rows stay non-decreasing in every store, preserving the ordering
        contract the kernels and the shared-memory layout rely on.
        Materialised columns are invalidated; cached weight tensors are
        grown in place with the new rows computed the same way a fresh
        compile would.
        """
        added = list(providers)
        seen: set[Hashable] = set()
        for provider in added:
            if not isinstance(provider, Provider):
                raise ValidationError(
                    f"population members must be Provider, got "
                    f"{type(provider).__name__}"
                )
            pid = provider.provider_id
            if pid in self._index or pid in seen:
                raise ValidationError(f"duplicate provider id {pid!r}")
            seen.add(pid)
        if not added:
            return np.empty(0, dtype=np.int64)
        new_rows: list[int] = []
        new_thresholds: list[float] = []
        for provider in added:
            row = len(self._ids_list)
            self._providers.append(provider)
            self._ids_list.append(provider.provider_id)
            self._segments_list.append(provider.segment)
            self._index[provider.provider_id] = row
            new_thresholds.append(self._threshold_of(provider))
            self._index_preferences(row, provider)
            new_rows.append(row)
        self._thresholds = np.concatenate(
            [self._thresholds, np.array(new_thresholds, dtype=np.float64)]
        )
        self._alive = np.concatenate(
            [self._alive, np.ones(len(new_rows), dtype=bool)]
        )
        for attribute, weights in list(self._weights.items()):
            grown = np.empty((len(self._ids_list), 3), dtype=np.float64)
            grown[: weights.shape[0]] = weights
            for row in new_rows:
                self._fill_row_weights(grown, row, attribute)
            self._weights[attribute] = grown
        self._invalidate_structural()
        return np.array(new_rows, dtype=np.int64)

    def update(self, providers: Iterable[Provider]) -> np.ndarray:
        """Replace alive providers (matched by id) in place; returns rows.

        The provider's old preference entries are stripped from the
        column stores and the new ones inserted at the row's sorted
        position — ``bisect_right`` keeps multiple entries of one
        provider in their preference order, matching a fresh compile's
        entry order exactly.
        """
        updates = list(providers)
        for provider in updates:
            if not isinstance(provider, Provider):
                raise ValidationError(
                    f"population members must be Provider, got "
                    f"{type(provider).__name__}"
                )
            if provider.provider_id not in self._index:
                raise UnknownProviderError(provider.provider_id)
        if not updates:
            return np.empty(0, dtype=np.int64)
        # Copy-on-write: previously assembled reports hold the old
        # threshold vector by reference and must keep their values.
        self._thresholds = self._thresholds.copy()
        changed: set[int] = set()
        for provider in updates:
            row = self._index[provider.provider_id]
            self._unindex_preferences(row, self._providers[row])
            self._providers[row] = provider
            self._segments_list[row] = provider.segment
            self._thresholds[row] = self._threshold_of(provider)
            self._insert_preferences(row, provider)
            for attribute, weights in self._weights.items():
                self._fill_row_weights(weights, row, attribute)
            changed.add(row)
        self._segments_tuple = None
        self._invalidate_structural()
        return np.array(sorted(changed), dtype=np.int64)

    def compact(self) -> None:
        """Recompile the alive view, dropping tombstones and renumbering rows.

        The one expensive path — triggered by the facade when the
        tombstone fraction crosses its threshold or when a parallel pool
        must re-export after a structural mutation, never on a plain
        removal.
        """
        survivors = self.population
        epoch = self._epoch
        self._adopt(
            CompiledPopulation(
                survivors,
                sensitivities=self._override_sensitivities,
                default_model=self._override_default,
            )
        )
        self._epoch = epoch
        self._bump_epoch()
        obs = active_observer()
        if obs is not None:
            obs.inc("delta.compactions")
            obs.set_gauge("delta.tombstones", 0)

    def snapshot(self) -> CompiledPopulation:
        """An immutable :class:`CompiledPopulation` of the current state.

        Compacts first when the stores drifted from the adopted base
        (structural mutations or tombstones); otherwise returns the base
        without recompiling.  Used to (re-)export to worker pools.
        """
        if self._structural_dirty or self._dead:
            self.compact()
        return self._base

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _alive_models(self) -> tuple[SensitivityModel, DefaultModel]:
        if self._models_epoch != self._epoch:
            population = self.population
            self._sens_cache = population.sensitivity_model()
            self._default_cache = population.default_model()
            self._models_epoch = self._epoch
        return self._sens_cache, self._default_cache  # type: ignore[return-value]

    def _fill_row_weights(
        self, weights: np.ndarray, row: int, attribute: str
    ) -> None:
        """Compute one row of an attribute's weight tensor in place.

        Bitwise-identical to
        :meth:`~repro.perf.compiled.CompiledPopulation.attribute_weights`:
        without overrides the baked model's datum for a provider is
        exactly ``provider.sensitivity.get(attribute, neutral)`` and the
        attribute weight is ``Sigma``'s, so reading the provider object
        directly performs the same multiplications in the same order.
        """
        model = self._override_sensitivities
        if model is not None:
            datum = model.datum(self._ids_list[row], attribute)
            attribute_weight = model.attribute_weight(attribute)
        else:
            provider = self._providers[row]
            datum = provider.sensitivity.get(attribute, NEUTRAL_SENSITIVITY)
            attribute_weight = self._sigma.weight(attribute)
        base = attribute_weight * datum.value
        weights[row, 0] = base * datum.visibility
        weights[row, 1] = base * datum.granularity
        weights[row, 2] = base * datum.retention

    def _threshold_of(self, provider: Provider) -> float:
        if self._override_default is not None:
            return float(self._override_default.threshold(provider.provider_id))
        return float(provider.threshold)

    def _provided_array(self, attribute: str) -> np.ndarray | None:
        cached = self._provided_arrays.get(attribute)
        if cached is not None:
            return cached
        rows = self._provided.get(attribute)
        if rows is None:
            return None
        array = np.array(rows, dtype=np.int64)
        self._provided_arrays[attribute] = array
        return array

    def _index_preferences(self, row: int, provider: Provider) -> None:
        """Append a (maximal) row's preference entries to the stores."""
        preferences = provider.preferences
        for attribute in preferences.attributes_provided:
            self._provided.setdefault(attribute, []).append(row)
        for entry in preferences.entries:
            key = (entry.attribute, entry.purpose)
            rows_list, ranks_list = self._explicit_rows.setdefault(key, ([], []))
            rows_list.append(row)
            ranks_list.append(
                (
                    entry.tuple.visibility,
                    entry.tuple.granularity,
                    entry.tuple.retention,
                )
            )
            self._explicit_providers.setdefault(key, set()).add(row)

    def _unindex_preferences(self, row: int, old: Provider) -> None:
        """Strip a row's preference entries from the stores."""
        for key in {
            (entry.attribute, entry.purpose) for entry in old.preferences.entries
        }:
            rows_list, ranks_list = self._explicit_rows[key]
            keep = [i for i, r in enumerate(rows_list) if r != row]
            if len(keep) != len(rows_list):
                if keep:
                    self._explicit_rows[key] = (
                        [rows_list[i] for i in keep],
                        [ranks_list[i] for i in keep],
                    )
                else:
                    del self._explicit_rows[key]
            holders = self._explicit_providers.get(key)
            if holders is not None:
                holders.discard(row)
                if not holders:
                    del self._explicit_providers[key]
        for attribute in old.preferences.attributes_provided:
            rows_list = self._provided.get(attribute)
            if rows_list is not None:
                index = bisect.bisect_left(rows_list, row)
                if index < len(rows_list) and rows_list[index] == row:
                    del rows_list[index]
                if not rows_list:
                    del self._provided[attribute]

    def _insert_preferences(self, row: int, provider: Provider) -> None:
        """Insert a row's preference entries at their sorted positions."""
        preferences = provider.preferences
        for attribute in preferences.attributes_provided:
            bisect.insort(self._provided.setdefault(attribute, []), row)
        for entry in preferences.entries:
            key = (entry.attribute, entry.purpose)
            rows_list, ranks_list = self._explicit_rows.setdefault(key, ([], []))
            position = bisect.bisect_right(rows_list, row)
            rows_list.insert(position, row)
            ranks_list.insert(
                position,
                (
                    entry.tuple.visibility,
                    entry.tuple.granularity,
                    entry.tuple.retention,
                ),
            )
            self._explicit_providers.setdefault(key, set()).add(row)

    def _invalidate_structural(self) -> None:
        self._columns.clear()
        self._provided_arrays.clear()
        self._ids_tuple = None
        self._segments_tuple = None
        self._structural_dirty = True
        self._bump_epoch()

    def _bump_epoch(self) -> None:
        self._epoch += 1
        self._population_view = None
        self._alive_rows_cache = None
        self._alive_ids_cache = None
        self._alive_segments_cache = None


class MutableBatchEngine:
    """The churn-surviving engine behind ``make_batch_engine``.

    Mirrors the batch-engine surface (``evaluate`` / ``report`` /
    ``evaluate_arrays`` / ``evaluate_policies`` / ``certify`` /
    ``static_intervals`` / ``reference_engine`` / ``close``) and adds the
    mutation operations :meth:`remove`, :meth:`append`, and
    :meth:`update`.  One engine — one compilation, and under
    ``workers=N`` one live worker pool on one shared-memory export —
    serves an entire dynamics, equilibrium, or widening run.

    Unknown attributes delegate to the execution backend, so
    pool-specific surfaces (``segment_name``, ``degradations``,
    ``restarts``) remain reachable.
    """

    def __init__(
        self,
        population: Population,
        *,
        workers: int = 1,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
        max_cached_reports: int = 128,
        supervised: bool = True,
        compact_threshold: float | None = COMPACT_THRESHOLD,
    ) -> None:
        from .parallel import resolve_workers

        if max_cached_reports < 1:
            raise ValidationError("max_cached_reports must be >= 1")
        if compact_threshold is not None:
            compact_threshold = float(compact_threshold)
            if not 0.0 < compact_threshold <= 1.0:
                raise ValidationError(
                    "compact_threshold must lie in (0, 1] or be None"
                )
        self._inner = None
        self._mutable = MutableCompiledPopulation(
            population,
            sensitivities=sensitivities,
            default_model=default_model,
        )
        self._workers = resolve_workers(workers)
        self._supervised = bool(supervised)
        self._implicit_zero = bool(implicit_zero)
        self._max_cached = int(max_cached_reports)
        self._compact_threshold = compact_threshold
        self._report_cache: dict[
            tuple[PolicyFingerprint, int], BatchReport
        ] = {}
        self._static_cache: dict[tuple[PolicyFingerprint, int], object] = {}
        self._closed = False
        self._inner = self._build_inner()

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def compiled(self) -> MutableCompiledPopulation:
        """The mutable compiled population this engine evaluates."""
        return self._mutable

    @property
    def inner_engine(self):
        """The execution backend currently in service (introspection)."""
        return self._inner

    @property
    def population(self) -> Population:
        """The alive providers."""
        return self._mutable.population

    @property
    def implicit_zero(self) -> bool:
        """Whether the implicit-zero completion is applied."""
        return self._implicit_zero

    @property
    def workers(self) -> int:
        """The resolved worker count of the execution policy."""
        return self._workers

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter; part of journal resume identity."""
        return self._mutable.epoch

    @property
    def tombstones(self) -> int:
        """Rows currently masked out pending compaction."""
        return self._mutable.dead_count

    @property
    def cached_policies(self) -> int:
        """Memoised evaluations served without recomputation."""
        if self._mutable.dead_count == 0:
            return self._inner.cached_policies
        return len(self._report_cache)

    @property
    def bounds(self) -> tuple[tuple[int, int], ...]:
        """Alive-space shard bounds of the execution policy.

        With tombstones present the capacity-space pool shards are
        re-derived over the alive count — exactly the bounds a rebuilt
        pool over the shrunk population would report, which keeps
        seeded per-shard consumers (the guardrail's sampling) aligned
        with the alive-length reports this engine returns.
        """
        inner_bounds = getattr(self._inner, "bounds", None)
        if inner_bounds is None:
            return ((0, self._mutable.alive_count),)
        if self._mutable.dead_count == 0:
            return tuple(inner_bounds)
        return tuple(shard_bounds(self._mutable.alive_count, len(inner_bounds)))

    def __getattr__(self, name: str):
        inner = self.__dict__.get("_inner")
        if inner is not None and not name.startswith("_"):
            return getattr(inner, name)
        raise AttributeError(name)

    def __repr__(self) -> str:
        return (
            f"MutableBatchEngine(workers={self._workers}, "
            f"alive={self._mutable.alive_count}, "
            f"tombstones={self._mutable.dead_count}, "
            f"epoch={self._mutable.epoch})"
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the execution backend.  Idempotent — safe to call
        twice, and safe after a failed backend rebuild."""
        if self._closed:
            return
        self._closed = True
        inner = self._inner
        if inner is not None:
            inner.close()

    def __enter__(self) -> "MutableBatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(self, policy: HousePolicy) -> BatchReport:
        """The :class:`BatchReport` for *policy* over the alive providers.

        Reports are always returned under the *requested* policy's name:
        the caches (this facade's and the worker pools') key on the
        name-independent fingerprint, so a widening run that saturates —
        consecutive rounds with equal entries but fresh ``@rN`` names —
        would otherwise resurface a stale round's name.
        """
        self._ensure_open()
        self._check_policy(policy)
        if self._mutable.dead_count == 0:
            return self._renamed(self._inner.evaluate(policy), policy.name)
        key = (policy_fingerprint(policy), self._mutable.epoch)
        cached = self._report_cache.get(key)
        obs = active_observer()
        if cached is not None:
            if obs is not None:
                obs.inc("delta.cache_hits")
            return self._renamed(cached, policy.name)
        violations, counts = self._inner.evaluate_arrays(policy)
        report = self._masked_report(policy.name, violations, counts)
        if obs is not None:
            obs.inc("delta.masked_evaluations")
        self._remember(key, report)
        return report

    def report(self, policy: HousePolicy) -> BatchReport:
        """Alias of :meth:`evaluate` (mirrors the other engines)."""
        return self.evaluate(policy)

    def evaluate_arrays(self, policy: HousePolicy) -> tuple[np.ndarray, np.ndarray]:
        """Raw alive-space ``(violations, counts)`` arrays for *policy*.

        Without tombstones the backend's arrays are returned as-is (they
        may be cached state — do not mutate); with tombstones the
        capacity arrays are restricted to the alive rows (fresh copies).
        """
        self._ensure_open()
        self._check_policy(policy)
        violations, counts = self._inner.evaluate_arrays(policy)
        if self._mutable.dead_count == 0:
            return violations, counts
        rows = self._mutable.alive_rows
        return violations[rows], counts[rows]

    def evaluate_policies(
        self, policies: Iterable[HousePolicy]
    ) -> list[BatchReport]:
        """Evaluate a policy sweep, reusing work across candidates."""
        self._ensure_open()
        candidates = list(policies)
        if self._mutable.dead_count == 0:
            reports = self._inner.evaluate_policies(candidates)
            return [
                self._renamed(report, policy.name)
                for report, policy in zip(reports, candidates)
            ]
        return [self.evaluate(policy) for policy in candidates]

    def certify(
        self,
        policy: HousePolicy,
        alpha: float,
        *,
        early_exit: bool = False,
        static: bool = False,
    ) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate over the alive providers.

        Without tombstones this delegates wholesale.  With tombstones
        the static path derives the certificate from alive-view
        intervals and the evaluated path masks as :meth:`evaluate` does;
        ``early_exit`` falls back to the exact path — a dead row's
        finding counts must not spend the shared ``alpha x N`` budget.
        """
        self._ensure_open()
        self._check_policy(policy)
        if self._mutable.dead_count == 0:
            return self._inner.certify(
                policy, alpha, early_exit=early_exit, static=static
            )
        if static:
            if early_exit:
                raise ValidationError(
                    "static certification never evaluates, so early_exit "
                    "does not apply; pass one or the other"
                )
            alpha = check_probability(alpha, "alpha")
            if self._mutable.alive_count == 0:
                return self._trivial_certificate(policy, alpha)
            certificate = self.static_intervals(policy).certificate(alpha)
            obs = active_observer()
            if obs is not None:
                obs.inc("delta.static_certifications")
            return certificate
        alpha = check_probability(alpha, "alpha")
        n = self._mutable.alive_count
        if n == 0:
            return self._trivial_certificate(policy, alpha)
        report = self.evaluate(policy)
        violated = report.violated_ids()
        p_w = len(violated) / n
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
        )

    def static_intervals(self, policy: HousePolicy):
        """The lint layer's severity intervals over the alive providers.

        Serves the serial backend's own (mutation-aware) cache when no
        tombstones exist; otherwise computes over the alive view and
        caches per ``(fingerprint, epoch)``.
        """
        self._ensure_open()
        self._check_policy(policy)
        if self._mutable.dead_count == 0 and self._workers <= 1:
            return self._inner.static_intervals(policy)
        key = (policy_fingerprint(policy), self._mutable.epoch)
        cached = self._static_cache.get(key)
        if cached is not None:
            return cached
        from ..lint.intervals import interval_analysis

        intervals = interval_analysis(
            policy,
            self._mutable.population,
            sensitivities=self._mutable.sensitivities,
            default_model=self._mutable.default_model,
            implicit_zero=self._implicit_zero,
            weight_bounds="provider",
        )
        if len(self._static_cache) >= self._max_cached:
            del self._static_cache[next(iter(self._static_cache))]
        self._static_cache[key] = intervals
        return intervals

    def reference_engine(self, policy: HousePolicy) -> ViolationEngine:
        """The reference oracle for *policy* over the alive providers."""
        return ViolationEngine(
            policy,
            self._mutable.population,
            sensitivities=self._mutable.sensitivities,
            default_model=self._mutable.default_model,
            implicit_zero=self._implicit_zero,
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def remove(self, provider_ids: Iterable[Hashable]) -> None:
        """Tombstone providers — no recompilation, no pool restart.

        Worker pools keep evaluating the full capacity arrays from the
        existing shared-memory export (per-provider sums are
        independent, so dead rows cannot perturb alive ones) and the
        facade masks them out at assembly.  Compaction runs only when
        the tombstone fraction crosses the engine's threshold.
        """
        self._ensure_open()
        ids = tuple(provider_ids)
        if not ids:
            return
        rows = self._mutable.remove(ids)
        obs = active_observer()
        if obs is not None:
            obs.inc("delta.removals", int(rows.size))
            obs.inc("delta.reused", self._mutable.alive_count)
            obs.set_gauge("delta.tombstones", self._mutable.dead_count)
            obs.set_gauge("delta.epoch", self._mutable.epoch)
        threshold = self._compact_threshold
        if threshold is not None and self._mutable.dead_fraction > threshold:
            self._compact()

    def append(self, providers: Iterable[Provider]) -> None:
        """Add providers; re-scores only the new rows (serial) or
        compacts and re-forks the pool once (parallel)."""
        self._ensure_open()
        added = tuple(providers)
        if not added:
            return
        rows = self._mutable.append(added)
        obs = active_observer()
        if obs is not None:
            obs.inc("delta.appends", int(rows.size))
        self._after_structural_mutation(rows)

    def update(self, providers: Iterable[Provider]) -> None:
        """Replace providers in place (matched by id); re-scores only
        the edited rows (serial) or compacts and re-forks once."""
        self._ensure_open()
        updates = tuple(providers)
        if not updates:
            return
        rows = self._mutable.update(updates)
        obs = active_observer()
        if obs is not None:
            obs.inc("delta.updates", int(rows.size))
        self._after_structural_mutation(rows)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _build_inner(self):
        if self._workers <= 1:
            return BatchViolationEngine(
                self._mutable,
                implicit_zero=self._implicit_zero,
                max_cached_reports=self._max_cached,
            )
        snapshot = self._mutable.snapshot()
        if self._supervised:
            from .supervisor import SupervisedExecutor

            return SupervisedExecutor(
                snapshot,
                workers=self._workers,
                implicit_zero=self._implicit_zero,
                max_cached_reports=self._max_cached,
            )
        from .parallel import ShardExecutor

        return ShardExecutor(
            snapshot,
            workers=self._workers,
            implicit_zero=self._implicit_zero,
            max_cached_reports=self._max_cached,
        )

    def _after_structural_mutation(self, rows: np.ndarray) -> None:
        obs = active_observer()
        if self._workers > 1:
            # Workers hold the pre-mutation export; compact and re-fork
            # once.  (Removals never take this path.)
            self._rebuild_inner()
        else:
            rescored, reused = self._inner.rescore_rows(rows)
            if obs is not None:
                obs.inc("delta.rescored", rescored)
                obs.inc("delta.reused", reused)
        if obs is not None:
            obs.set_gauge("delta.tombstones", self._mutable.dead_count)
            obs.set_gauge("delta.epoch", self._mutable.epoch)

    def _rebuild_inner(self) -> None:
        """Tear down and rebuild the execution backend over a fresh base.

        On failure the engine is left backend-less: evaluation raises a
        clear error, while :meth:`close` stays safe (and idempotent).
        The old executor's column plan (if any) carries over to the new
        one: the plan is population-independent, so the first policy of
        the next round still goes out as a delta task decomposition-wise
        — fresh workers hold no base and evaluate it full, but the
        parent-side delta chain survives the rebuild.
        """
        old, self._inner = self._inner, None
        plan = getattr(old, "plan", None) if old is not None else None
        if old is not None:
            old.close()
        self._inner = self._build_inner()
        adopt = getattr(self._inner, "adopt_plan", None)
        if plan is not None and adopt is not None:
            adopt(plan)
        obs = active_observer()
        if obs is not None and self._workers > 1:
            obs.inc("delta.pool_rebuilds")

    def _compact(self) -> None:
        self._mutable.compact()
        self._rebuild_inner()
        obs = active_observer()
        if obs is not None:
            obs.set_gauge("delta.epoch", self._mutable.epoch)

    @staticmethod
    def _renamed(report: BatchReport, policy_name: str) -> BatchReport:
        if report.policy_name == policy_name:
            return report
        return dataclasses.replace(report, policy_name=policy_name)

    def _masked_report(
        self, policy_name: str, violations: np.ndarray, counts: np.ndarray
    ) -> BatchReport:
        rows = self._mutable.alive_rows
        return assemble_report(
            policy_name,
            violations[rows],
            counts[rows],
            ids=self._mutable.alive_ids,
            segments=self._mutable.alive_segments,
            thresholds=self._mutable.thresholds[rows],
            strict=self._mutable.strict,
        )

    def _trivial_certificate(
        self, policy: HousePolicy, alpha: float
    ) -> PPDBCertificate:
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=0.0,
            satisfied=True,
            n_providers=0,
            violated_providers=(),
            policy_name=policy.name,
        )

    def _remember(
        self, key: tuple[PolicyFingerprint, int], report: BatchReport
    ) -> None:
        if key not in self._report_cache and len(self._report_cache) >= self._max_cached:
            del self._report_cache[next(iter(self._report_cache))]
        self._report_cache[key] = report

    def _check_policy(self, policy: HousePolicy) -> None:
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )

    def _ensure_open(self) -> None:
        if self._inner is None:
            raise ParallelExecutionError(
                "engine lost its execution backend after a failed rebuild; "
                "create a new engine via make_batch_engine"
            )

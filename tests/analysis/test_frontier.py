"""Unit tests for the privacy-utility Pareto frontier."""

from __future__ import annotations

import pytest

from repro.analysis import pareto_frontier
from repro.exceptions import ValidationError
from repro.simulation import run_expansion_sweep


@pytest.fixture(scope="module")
def sweep():
    from repro.datasets import healthcare_scenario

    scenario = healthcare_scenario(100, seed=5)
    return run_expansion_sweep(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        max_steps=5,
        per_provider_utility=scenario.per_provider_utility,
        extra_utility_per_step=scenario.extra_utility_per_step,
    )


@pytest.fixture(scope="module")
def frontier(sweep):
    return pareto_frontier(sweep)


class TestFrontierStructure:
    def test_partition_of_steps(self, sweep, frontier):
        frontier_steps = {p.step for p in frontier.points}
        dominated = set(frontier.dominated_steps)
        assert frontier_steps | dominated == {row.step for row in sweep.rows}
        assert not frontier_steps & dominated

    def test_no_frontier_point_dominated(self, frontier):
        for a in frontier.points:
            for b in frontier.points:
                if a is b:
                    continue
                dominates = (
                    a.utility_future >= b.utility_future
                    and a.default_probability <= b.default_probability
                    and (
                        a.utility_future > b.utility_future
                        or a.default_probability < b.default_probability
                    )
                )
                assert not dominates

    def test_ordered_by_damage(self, frontier):
        damages = [p.default_probability for p in frontier.points]
        assert damages == sorted(damages)

    def test_utility_increases_along_frontier(self, frontier):
        """On a frontier of (min damage, max utility), accepting more
        damage must buy strictly more utility."""
        utilities = [p.utility_future for p in frontier.points]
        assert utilities == sorted(utilities)

    def test_baseline_is_most_private(self, frontier):
        # The anchored baseline has zero defaults, so it is undominated on
        # the damage axis.
        assert frontier.most_private().step == 0
        assert frontier.most_private().default_probability == 0.0

    def test_best_utility_matches_sweep_peak(self, sweep, frontier):
        assert frontier.best_utility().utility_future == max(
            row.utility_future for row in sweep.rows
        )

    def test_knee_on_frontier(self, frontier):
        assert frontier.knee() in frontier.points

    def test_to_text(self, frontier):
        text = frontier.to_text()
        assert "frontier" in text
        assert "P(Default)" in text


class TestFrontierEdgeCases:
    def test_single_row_sweep(self):
        from repro.datasets import crm_scenario

        scenario = crm_scenario(20, seed=1)
        sweep = run_expansion_sweep(
            scenario.population, scenario.policy, scenario.taxonomy, max_steps=0
        )
        frontier = pareto_frontier(sweep)
        assert len(frontier.points) == 1
        assert frontier.dominated_steps == ()
        assert frontier.knee() == frontier.points[0]

    def test_detrimental_tail_is_dominated(self, sweep, frontier):
        """Steps past saturation with lower utility AND equal-or-worse
        damage must be dominated."""
        last = sweep.rows[-1]
        peak = max(row.utility_future for row in sweep.rows)
        if last.utility_future < peak and any(
            row.default_probability <= last.default_probability
            and row.utility_future > last.utility_future
            for row in sweep.rows
        ):
            assert last.step in frontier.dominated_steps

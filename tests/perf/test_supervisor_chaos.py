"""Chaos: the supervised pool completes bit-for-bit under real failures.

Every test here injects *real* process-level faults through the
deterministic :class:`~repro.resilience.faults.FaultPlan` machinery —
``kill`` SIGKILLs the worker mid-task, the new ``stall`` kind SIGSTOPs
it so heartbeats cease and the watchdog must fire.  The supervision
contract under all of it:

* the sweep **completes** with results bit-for-bit identical to the
  serial engine (respawned workers, retried shards, and parent-side
  degraded shards all run the same kernels over the same rows);
* the failure is **visible** — ``supervisor.restarts`` /
  ``supervisor.shard_retries`` / ``supervisor.degraded_shards`` /
  ``supervisor.watchdog_kills`` counters and the executor's
  ``restarts`` / ``degradations`` properties record what happened;
* respawns are **bounded** (``max_respawns`` is the fork-bomb cap) and
  nothing under ``/dev/shm`` outlives the pool.
"""

from __future__ import annotations

import glob
import random

import numpy as np
import pytest

from repro.obs import observed
from repro.perf import BatchViolationEngine, SupervisedExecutor
from repro.perf.parallel import TASK_FAULT_SITE
from repro.resilience import FaultSpec

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
)


def _assert_reports_identical(parallel, serial) -> None:
    assert parallel.policy_name == serial.policy_name
    assert parallel.n_violated == serial.n_violated
    assert parallel.total_violations == serial.total_violations
    assert parallel.provider_ids == serial.provider_ids
    assert np.array_equal(parallel.violations, serial.violations)
    assert np.array_equal(parallel.violated, serial.violated)
    assert np.array_equal(parallel.defaulted, serial.defaulted)


def _no_leaked_segments() -> bool:
    return glob.glob("/dev/shm/pvl_*") == []


def _counters(snapshot: dict) -> dict[str, float]:
    return {c["name"]: c["value"] for c in snapshot["counters"]}


def test_worker_sigkill_is_respawned_and_retried():
    """One worker dies once; the respawn re-runs the shard successfully."""
    rng = random.Random(99)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-kill")
    serial = BatchViolationEngine(population)
    with observed() as obs:
        with SupervisedExecutor(
            population,
            workers=2,
            worker_faults=[
                FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0)
            ],
            fault_worker_indices=[0],  # only the first spawn is armed
            retry_base_delay=0.0,
        ) as executor:
            report = executor.evaluate(policy)
            assert executor.restarts == 1
            assert executor.degradations == ()
        counters = _counters(obs.snapshot())
    _assert_reports_identical(report, serial.evaluate(policy))
    assert counters["supervisor.restarts"] == 1.0
    assert counters["supervisor.shard_retries"] >= 1.0
    assert "supervisor.degraded_shards" not in counters
    assert _no_leaked_segments()


def test_every_spawn_dying_degrades_to_serial_bit_for_bit():
    """Retries exhausted on every worker: the parent finishes the sweep."""
    rng = random.Random(100)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-degrade")
    serial = BatchViolationEngine(population)
    with observed() as obs:
        with SupervisedExecutor(
            population,
            workers=2,
            worker_faults=[
                FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0, count=999)
            ],
            max_shard_retries=1,
            max_respawns=3,
            retry_base_delay=0.0,
        ) as executor:
            report = executor.evaluate(policy)
            # The budget bounds the fork storm ...
            assert executor.restarts <= 3
            # ... and whatever could not run in a worker ran here.
            assert len(executor.degradations) >= 1
            for record in executor.degradations:
                assert record.kind == "eval"
                assert record.policy_name == policy.name
                assert record.attempts >= 1
        counters = _counters(obs.snapshot())
    _assert_reports_identical(report, serial.evaluate(policy))
    assert counters["supervisor.degraded_shards"] >= 1.0
    assert counters["supervisor.restarts"] <= 3.0
    assert _no_leaked_segments()


def test_sigstop_stall_is_recovered_by_the_watchdog():
    """A stalled worker stops heartbeating; the watchdog kills and retries."""
    rng = random.Random(101)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-stall")
    serial = BatchViolationEngine(population)
    with observed() as obs:
        with SupervisedExecutor(
            population,
            workers=2,
            worker_faults=[
                FaultSpec(site=TASK_FAULT_SITE, kind="stall", at=0)
            ],
            fault_worker_indices=[0],
            heartbeat_interval=0.05,
            shard_timeout=1.0,
            retry_base_delay=0.0,
        ) as executor:
            report = executor.evaluate(policy)
            assert executor.restarts == 1
        counters = _counters(obs.snapshot())
    _assert_reports_identical(report, serial.evaluate(policy))
    assert counters["supervisor.watchdog_kills"] == 1.0
    assert counters["supervisor.restarts"] == 1.0
    assert _no_leaked_segments()


def test_sigkill_during_early_exit_certify_keeps_the_verdict():
    rng = random.Random(102)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-certify")
    serial = BatchViolationEngine(population)
    for alpha in (0.0, 0.5, 1.0):
        with SupervisedExecutor(
            population,
            workers=2,
            worker_faults=[
                FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0, count=999)
            ],
            max_shard_retries=0,
            max_respawns=2,
            retry_base_delay=0.0,
        ) as executor:
            got = executor.certify(policy, alpha, early_exit=True)
            want = serial.certify(policy, alpha)
            assert got.satisfied == want.satisfied
            assert got.n_providers == want.n_providers
            certify_degradations = [
                record
                for record in executor.degradations
                if record.kind == "certify"
            ]
            assert certify_degradations
    assert _no_leaked_segments()


def test_respawn_budget_exhaustion_never_forks_unboundedly():
    """max_respawns=0: no second chances, everything degrades serially."""
    rng = random.Random(103)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-budget")
    serial = BatchViolationEngine(population)
    with SupervisedExecutor(
        population,
        workers=2,
        worker_faults=[
            FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0, count=999)
        ],
        max_shard_retries=0,
        max_respawns=0,
        retry_base_delay=0.0,
    ) as executor:
        report = executor.evaluate(policy)
        assert executor.restarts == 0
        assert executor.live_workers == 0
        assert len(executor.degradations) >= 1
    _assert_reports_identical(report, serial.evaluate(policy))
    assert _no_leaked_segments()


def test_retry_backoff_is_deterministic_and_injectable():
    """The backoff schedule is base * 2**(attempt-1) through the hook."""
    rng = random.Random(104)
    population = _random_population(rng)
    policy = _random_policy(rng, name="chaos-backoff")
    delays: list[float] = []
    with SupervisedExecutor(
        population,
        workers=1,
        shards=1,
        worker_faults=[
            FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0)
        ],
        # Each respawn re-arms a fresh plan, so bound the chaos by spawn
        # index: spawns 0 and 1 die on their first task, spawn 2 is clean.
        fault_worker_indices=[0, 1],
        max_shard_retries=3,
        retry_base_delay=0.25,
        sleep=delays.append,
    ) as executor:
        executor.evaluate(policy)
        assert executor.degradations == ()
    assert delays == [0.25, 0.5]
    assert _no_leaked_segments()


def test_degraded_pool_keeps_serving_later_policies():
    """Degradation is per-shard, not terminal: the pool object stays usable."""
    rng = random.Random(105)
    population = _random_population(rng)
    first = _random_policy(rng, name="first")
    second = _random_policy(rng, name="second")
    serial = BatchViolationEngine(population)
    with SupervisedExecutor(
        population,
        workers=2,
        worker_faults=[
            FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0, count=999)
        ],
        max_shard_retries=0,
        max_respawns=0,
        retry_base_delay=0.0,
    ) as executor:
        _assert_reports_identical(
            executor.evaluate(first), serial.evaluate(first)
        )
        _assert_reports_identical(
            executor.evaluate(second), serial.evaluate(second)
        )
    assert _no_leaked_segments()

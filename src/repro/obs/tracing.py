"""Span-based tracing with a structured-``logging`` backend.

A :class:`Tracer` records a tree of :class:`SpanRecord` nodes per run:
``with tracer.span("engine.violations", providers=n):`` opens a span,
nested ``span`` calls attach as children, and closing a span stamps its
duration and emits one structured ``logging`` record on the
``repro.obs`` logger (``DEBUG`` level, with the span name, depth, and
duration in the record's ``extra``).  The finished trees render as an
indented ASCII tree (:meth:`Tracer.tree_text`) or a JSON-safe document
(:meth:`Tracer.as_dict`) — the ``--trace`` CLI flag prints the former to
stderr after the command completes.

Spans are tracked per thread (the active-span stack lives in a
``threading.local``), so concurrent workloads produce one well-formed
tree per thread instead of interleaved garbage.
"""

from __future__ import annotations

import logging
import threading
from time import perf_counter
from typing import Any, Mapping

logger = logging.getLogger("repro.obs")


class SpanRecord:
    """One finished (or in-flight) span: name, attributes, timing, children."""

    __slots__ = ("name", "attributes", "children", "duration", "error", "_start")

    def __init__(self, name: str, attributes: Mapping[str, Any]) -> None:
        self.name = name
        self.attributes = dict(attributes)
        self.children: list[SpanRecord] = []
        self.duration: float | None = None
        self.error: str | None = None
        self._start = perf_counter()

    def as_dict(self) -> dict[str, Any]:
        """The span subtree as a JSON-safe document."""
        document: dict[str, Any] = {
            "name": self.name,
            "attributes": {k: self.attributes[k] for k in sorted(self.attributes)},
            "duration_seconds": self.duration,
        }
        if self.error is not None:
            document["error"] = self.error
        document["children"] = [child.as_dict() for child in self.children]
        return document


class _ActiveSpan:
    """The context manager :meth:`Tracer.span` hands out."""

    __slots__ = ("_tracer", "_record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self._record = record

    def annotate(self, **attributes: Any) -> None:
        """Attach further attributes to the open span."""
        self._record.attributes.update(attributes)

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._push(self._record)
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        if exc_type is not None:
            self._record.error = exc_type.__name__
        self._tracer._pop(self._record)
        return False


class Tracer:
    """Per-run span trees, one root list shared across threads."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._roots: list[SpanRecord] = []
        self._local = threading.local()

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a span; use as ``with tracer.span("name", key=value):``."""
        return _ActiveSpan(self, SpanRecord(name, attributes))

    def _push(self, record: SpanRecord) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self._roots.append(record)
        stack.append(record)

    def _pop(self, record: SpanRecord) -> None:
        record.duration = perf_counter() - record._start
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "span %s finished in %.6fs",
                record.name,
                record.duration,
                extra={
                    "span_name": record.name,
                    "span_depth": len(stack),
                    "span_duration": record.duration,
                    "span_error": record.error,
                },
            )

    @property
    def roots(self) -> tuple[SpanRecord, ...]:
        """The root spans recorded so far."""
        with self._lock:
            return tuple(self._roots)

    def as_dict(self) -> list[dict[str, Any]]:
        """Every root span subtree as a JSON-safe list."""
        return [root.as_dict() for root in self.roots]

    def tree_text(self) -> str:
        """The recorded trees as an indented ASCII rendering."""
        lines: list[str] = []
        for root in self.roots:
            _render(root, "", True, lines, is_root=True)
        return "\n".join(lines)


def _render(
    record: SpanRecord,
    prefix: str,
    last: bool,
    lines: list[str],
    *,
    is_root: bool = False,
) -> None:
    attrs = " ".join(
        f"{key}={record.attributes[key]!r}" for key in sorted(record.attributes)
    )
    duration = (
        "..." if record.duration is None else f"{record.duration * 1000:.2f}ms"
    )
    suffix = f" [error: {record.error}]" if record.error else ""
    body = f"{record.name} {duration}{suffix}"
    if attrs:
        body = f"{body} ({attrs})"
    if is_root:
        lines.append(body)
        child_prefix = ""
    else:
        connector = "`-- " if last else "|-- "
        lines.append(f"{prefix}{connector}{body}")
        child_prefix = prefix + ("    " if last else "|   ")
    for index, child in enumerate(record.children):
        _render(
            child,
            child_prefix,
            index == len(record.children) - 1,
            lines,
        )

"""The zero-cost-when-disabled guard, and the activation switch itself.

The instrumented hot paths pay exactly one global read plus a ``None``
comparison while observability is off.  These tests hold that contract
structurally (no observer, one shared no-op span object) and with a
generous wall-clock guard over the batch engine, so an accidentally
always-on registry shows up as a test failure rather than a silent
benchmark regression.
"""

from __future__ import annotations

from time import perf_counter

from repro.datasets import healthcare_scenario
from repro.obs import (
    _NOOP_SPAN,
    active_observer,
    disable_observability,
    enable_observability,
    observability_enabled,
    observed,
    span,
)
from repro.perf import BatchViolationEngine


class TestSwitch:
    def test_disabled_by_default(self):
        assert active_observer() is None
        assert not observability_enabled()

    def test_disabled_span_is_one_shared_noop(self):
        first = span("engine.violations", providers=3)
        second = span("sweep.run")
        assert first is second is _NOOP_SPAN
        with first:
            first.annotate(ignored=True)  # must be a silent no-op

    def test_enable_disable_round_trip(self):
        observer = enable_observability()
        try:
            assert active_observer() is observer
            assert span("live") is not _NOOP_SPAN
        finally:
            disable_observability()
        assert active_observer() is None

    def test_observed_restores_previous_state(self):
        outer = enable_observability()
        try:
            with observed() as inner:
                assert active_observer() is inner
                assert inner is not outer
            assert active_observer() is outer
        finally:
            disable_observability()

    def test_reenabling_starts_a_clean_registry(self):
        observer = enable_observability()
        observer.inc("stale")
        try:
            fresh = enable_observability()
            assert fresh.registry.snapshot()["counters"] == []
        finally:
            disable_observability()


class TestInstrumentationWhileEnabled:
    def test_batch_engine_writes_metrics(self):
        scenario = healthcare_scenario(20, seed=3)
        with observed() as obs:
            engine = BatchViolationEngine(scenario.population)
            engine.evaluate(scenario.policy)
            engine.evaluate(scenario.policy)  # cache hit
        snapshot = obs.snapshot()
        counters = {
            (entry["name"], tuple(sorted(entry["labels"].items()))): entry[
                "value"
            ]
            for entry in snapshot["counters"]
        }
        assert counters[("perf.compilations", ())] == 1.0
        assert counters[("engine.batch.full_evaluations", ())] == 1.0
        assert counters[("engine.batch.cache_hits", ())] == 1.0
        timer_names = {entry["name"] for entry in snapshot["timers"]}
        assert "perf.compile_seconds" in timer_names
        assert "engine.batch.evaluate_seconds" in timer_names

    def test_no_metrics_leak_once_disabled(self):
        scenario = healthcare_scenario(10, seed=3)
        with observed():
            pass
        engine = BatchViolationEngine(scenario.population)
        engine.evaluate(scenario.policy)
        with observed() as obs:
            pass
        assert obs.snapshot()["counters"] == []


class TestDisabledOverhead:
    def test_disabled_primitives_are_cheap(self):
        """The disabled path is a global read plus a ``None`` comparison.

        100k guard checks and no-op spans must complete in well under a
        second — a deliberately generous bound that only trips on a
        structural mistake (building label dicts, taking locks, or
        allocating span records while disabled), never on scheduler
        jitter.
        """
        assert active_observer() is None
        iterations = 100_000
        start = perf_counter()
        for _ in range(iterations):
            obs = active_observer()
            if obs is not None:  # pragma: no cover - guard never taken
                obs.inc("never")
            with span("engine.violations"):
                pass
        elapsed = perf_counter() - start
        assert elapsed < 2.0

    def test_disabled_evaluation_records_nothing(self):
        scenario = healthcare_scenario(20, seed=7)
        engine = BatchViolationEngine(scenario.population)
        assert active_observer() is None
        engine.evaluate(scenario.policy)
        engine.evaluate(scenario.policy)
        # Still disabled and still no observer created as a side effect.
        assert active_observer() is None

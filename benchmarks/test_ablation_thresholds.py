"""Ablation — strict (paper) vs non-strict default thresholds.

Definition 4 uses the strict inequality ``Violation_i > v_i``; Bob's
boundary case (80 < 100) doesn't depend on it, but a provider sitting
*exactly at* threshold does.  The ablation measures how much
``P(Default)`` shifts between the two semantics across a widening sweep —
an upper bound on how much the printed inequality choice matters.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import DefaultModel, ViolationEngine, default_probability
from repro.simulation import WideningStep, widening_path

from conftest import emit


def test_threshold_semantics_ablation(benchmark, healthcare_200):
    population = healthcare_200.population
    strict_model = population.default_model(strict=True)
    loose_model = population.default_model(strict=False)

    def sweep_both():
        rows = []
        for step, policy in widening_path(
            healthcare_200.policy,
            WideningStep.uniform(1),
            healthcare_200.taxonomy,
            4,
        ):
            strict_p = default_probability(
                population, policy, default_model=strict_model
            )
            loose_p = default_probability(
                population, policy, default_model=loose_model
            )
            rows.append((step, strict_p, loose_p))
        return rows

    results = benchmark(sweep_both)

    emit(
        "Ablation: P(Default) under strict vs non-strict thresholds",
        format_table(
            ["step", "strict > (paper)", "non-strict >=", "delta"],
            [
                [step, strict_p, loose_p, loose_p - strict_p]
                for step, strict_p, loose_p in results
            ],
        ),
    )

    for _, strict_p, loose_p in results:
        # Non-strict can only default more providers, never fewer.
        assert loose_p >= strict_p

    # With continuous (uniform-sampled) thresholds, exact ties have
    # probability zero: the two semantics must agree on this population.
    for _, strict_p, loose_p in results:
        assert loose_p == strict_p


def test_boundary_provider_flips(benchmark, paper_fixture):
    """Pin Bob's threshold to exactly his severity: only the non-strict
    semantics evicts him — the discrete counterpart the sweep cannot show."""
    policy, population = paper_fixture

    def evaluate():
        pinned = DefaultModel(
            {"Alice": 10.0, "Ted": 50.0, "Bob": 80.0}, strict=True
        )
        strict_outcomes = pinned.evaluate(
            population.preference_sets(), policy, population.sensitivity_model()
        )
        loose_outcomes = pinned.with_strictness(False).evaluate(
            population.preference_sets(), policy, population.sensitivity_model()
        )
        return strict_outcomes, loose_outcomes

    strict_outcomes, loose_outcomes = benchmark(evaluate)
    emit(
        "Ablation: Bob pinned at v_Bob = Violation_Bob = 80",
        format_table(
            ["provider", "strict default", "non-strict default"],
            [
                [pid, strict_outcomes[pid], loose_outcomes[pid]]
                for pid in ("Alice", "Ted", "Bob")
            ],
        ),
    )
    assert strict_outcomes["Bob"] == 0
    assert loose_outcomes["Bob"] == 1
    assert strict_outcomes["Ted"] == loose_outcomes["Ted"] == 1

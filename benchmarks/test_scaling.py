"""E7 — engineering scaling: the model is linear in providers x tuples.

The paper positions the model as deployable inside production relational
databases, so the harness verifies the computational story: full-model
evaluation scales linearly in the number of providers (R^2 of a linear fit
over a size sweep), the vectorized batch engine beats the reference
engine by an order of magnitude on policy sweeps, and the sqlite gate's
per-request overhead stays flat as the data table grows.

Setting ``REPRO_BENCH_SMOKE=1`` shrinks every size so the module doubles
as a CI smoke test: the same code paths run, but the speedup floor is
relaxed (tiny problems are dominated by fixed overheads).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.analysis import format_table
from repro.core import PrivacyTuple, ViolationEngine
from repro.datasets import healthcare_scenario
from repro.perf import BatchViolationEngine
from repro.simulation import WideningStep, widening_policies
from repro.storage import AccessRequest, EnforcementMode, PrivacyDatabase

from conftest import emit, record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
SIZES = (20, 40) if SMOKE else (50, 100, 200, 400, 800)
SWEEP_PROVIDERS = 40 if SMOKE else 400
SWEEP_POLICIES = 20
# Acceptance floor: >= 10x on the full-size sweep.  At smoke sizes the
# fixed per-call overhead dominates, so only sanity (not slower) is held.
MIN_SWEEP_SPEEDUP = 1.0 if SMOKE else 10.0


def _evaluate(n: int, repeats: int = 3) -> float:
    """Best-of-*repeats* evaluation time: robust against scheduler noise."""
    scenario = healthcare_scenario(n, seed=3)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ViolationEngine(scenario.policy, scenario.population).report()
        best = min(best, time.perf_counter() - started)
    return best


def test_engine_scales_linearly(benchmark):
    def measure():
        return [(n, _evaluate(n)) for n in SIZES]

    timings = benchmark.pedantic(measure, rounds=1, iterations=1)

    emit(
        "E7: full-model evaluation time vs population size",
        format_table(
            ["N providers", "seconds"],
            [[n, seconds] for n, seconds in timings],
        ),
    )

    sizes = np.array([n for n, _ in timings], dtype=float)
    seconds = np.array([s for _, s in timings], dtype=float)
    # Least-squares linear fit; demand a strong linear relationship.
    coeffs = np.polyfit(sizes, seconds, 1)
    predicted = np.polyval(coeffs, sizes)
    ss_res = float(((seconds - predicted) ** 2).sum())
    ss_tot = float(((seconds - seconds.mean()) ** 2).sum())
    r_squared = 1.0 - ss_res / ss_tot if ss_tot else 1.0
    emit(
        "E7: linear fit",
        format_table(
            ["slope s/provider", "intercept", "R^2"],
            [[float(coeffs[0]), float(coeffs[1]), r_squared]],
        ),
    )
    assert r_squared > 0.95
    assert coeffs[0] > 0
    record(
        "engine_scaling",
        sizes=list(SIZES),
        seconds=[s for _, s in timings],
        slope_seconds_per_provider=float(coeffs[0]),
        r_squared=r_squared,
    )


def test_sweep_batch_vs_reference(benchmark):
    """The batch engine's policy sweep beats per-policy reference engines.

    A widening sweep of ``SWEEP_POLICIES`` candidates over
    ``SWEEP_PROVIDERS`` providers is evaluated twice: once the reference
    way (a fresh :class:`ViolationEngine` per candidate) and once through
    one :class:`BatchViolationEngine` (one compilation, cached reports,
    column deltas between consecutive candidates).  Both must agree on
    every aggregate; the batch path must clear ``MIN_SWEEP_SPEEDUP``.
    """
    scenario = healthcare_scenario(SWEEP_PROVIDERS, seed=3)
    policies = widening_policies(
        scenario.policy,
        WideningStep.uniform(1),
        scenario.taxonomy,
        SWEEP_POLICIES - 1,
    )
    assert len(policies) == SWEEP_POLICIES

    def measure():
        started = time.perf_counter()
        reference = [
            ViolationEngine(policy, scenario.population).report()
            for policy in policies
        ]
        reference_seconds = time.perf_counter() - started
        started = time.perf_counter()
        engine = BatchViolationEngine(scenario.population)
        batch = engine.evaluate_policies(policies)
        batch_seconds = time.perf_counter() - started
        return reference, reference_seconds, batch, batch_seconds

    reference, reference_seconds, batch, batch_seconds = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    for expected, got in zip(reference, batch):
        assert got.n_violated == expected.n_violated
        assert got.n_defaulted == expected.n_defaulted
        assert got.violated_ids() == expected.violated_ids()
        np.testing.assert_allclose(
            got.total_violations, expected.total_violations, rtol=1e-9
        )

    speedup = reference_seconds / batch_seconds if batch_seconds else float("inf")
    emit(
        "E7: policy sweep, reference vs batch engine",
        format_table(
            ["providers", "policies", "reference s", "batch s", "speedup"],
            [
                [
                    SWEEP_PROVIDERS,
                    SWEEP_POLICIES,
                    round(reference_seconds, 4),
                    round(batch_seconds, 4),
                    round(speedup, 1),
                ]
            ],
        ),
    )
    record(
        "sweep_batch_vs_reference",
        providers=SWEEP_PROVIDERS,
        policies=SWEEP_POLICIES,
        reference_seconds=reference_seconds,
        batch_seconds=batch_seconds,
        speedup=speedup,
        smoke=SMOKE,
    )
    assert speedup >= MIN_SWEEP_SPEEDUP


def test_gate_request_throughput(benchmark, crm_200):
    with PrivacyDatabase.create(":memory:") as db:
        db.install(crm_200.policy, crm_200.population)
        for provider in crm_200.population:
            db.repository.put_datum(
                str(provider.provider_id), "email", "user@example.com"
            )
        gate = db.gate(mode=EnforcementMode.AUDIT)
        request = AccessRequest(
            "email", PrivacyTuple("fulfillment", 2, 4, 1)
        )

        decision = benchmark(gate.request, request)
        assert decision.allowed
        events = db.audit_log.report().total_events
        emit(
            "E7: gate requests audited",
            format_table(["audited events"], [[events]]),
        )
        assert events >= 1

"""Stable diagnostic codes for runtime resilience events.

The static analyzer owns ``PVL0xx``–``PVL2xx`` (see
:mod:`repro.lint.registry`); this module extends the same code space with
the *runtime* families, reusing the linter's
:class:`~repro.lint.diagnostics.Diagnostic` /
:class:`~repro.lint.diagnostics.Severity` machinery so CI annotations and
audit pipelines consume one uniform stream:

* ``PVL3xx`` — engine-guardrail events (divergence, non-finite
  severities, degraded-mode notices);
* ``PVL9xx`` — operational CLI failures (missing files, malformed
  documents, storage and journal errors), printed as one-line coded
  errors with exit code 2.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..lint.diagnostics import Diagnostic, Severity, SourceLocation

#: The batch engine's sampled output diverged from the reference oracle.
GUARDRAIL_DIVERGENCE = "PVL301"
#: The batch engine produced a non-finite severity or aggregate.
GUARDRAIL_NONFINITE = "PVL302"
#: The guardrail degraded evaluation to the reference engine.
GUARDRAIL_DEGRADED = "PVL303"

#: An input file is missing or unreadable.
CLI_IO = "PVL901"
#: An input file is not valid JSON.
CLI_JSON = "PVL902"
#: A document parsed but failed model validation.
CLI_DOCUMENT = "PVL903"
#: The sqlite privacy store failed or is corrupt.
CLI_STORAGE = "PVL904"
#: A run journal is missing, corrupt, or belongs to a different run.
CLI_JOURNAL = "PVL905"
#: A run was interrupted mid-flight (resumable via its journal).
CLI_INTERRUPTED = "PVL906"
#: A parallel worker died or shared-memory state was lost mid-run.
CLI_PARALLEL = "PVL907"

#: One-line descriptions, for docs and ``repro`` error output tooling.
RUNTIME_CODES: dict[str, str] = {
    GUARDRAIL_DIVERGENCE: "batch engine diverged from the reference oracle",
    GUARDRAIL_NONFINITE: "batch engine produced a non-finite severity",
    GUARDRAIL_DEGRADED: "evaluation degraded to the reference engine",
    CLI_IO: "input file missing or unreadable",
    CLI_JSON: "input file is not valid JSON",
    CLI_DOCUMENT: "document failed model validation",
    CLI_STORAGE: "privacy store failure",
    CLI_JOURNAL: "run journal missing, corrupt, or mismatched",
    CLI_INTERRUPTED: "run interrupted; resume from its journal",
    CLI_PARALLEL: "parallel worker died or shared memory was lost",
}


def coded_error(code: str, message: str) -> str:
    """Render the one-line coded error the CLI prints on stderr.

    Embedded newlines are flattened so the line stays a single line —
    grep-able, CI-annotation-safe, and never a traceback.
    """
    flattened = " ".join(str(message).split())
    return f"error[{code}]: {flattened}"


def guardrail_diagnostic(
    code: str,
    message: str,
    *,
    policy_name: str,
    payload: Mapping[str, object] = (),
) -> Diagnostic:
    """A guardrail finding in the linter's diagnostic shape.

    ``PVL301``/``PVL302`` are :attr:`~repro.lint.diagnostics.Severity.ERROR`
    (the fast path produced a wrong or meaningless number);
    ``PVL303`` is a :attr:`~repro.lint.diagnostics.Severity.WARNING`
    (the run continues, correctly, on the slow path).
    """
    severity = Severity.WARNING if code == GUARDRAIL_DEGRADED else Severity.ERROR
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        location=SourceLocation(document="policy", name=policy_name),
        payload=dict(payload),
    )

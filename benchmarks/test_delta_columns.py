"""Column-delta rounds: O(changed columns) vs full re-evaluation.

The bug this PR ends: every widening round on the parallel path used to
ship the whole pickled policy to every shard worker and rescore every
``(attribute, purpose)`` column from scratch, even though consecutive
round policies differ in a handful of columns.  The column-delta
protocol ships only the changed columns against a worker-resident base,
so round cost scales with ``policy_delta_columns(prev, cur)`` instead
of the full decomposition.

Two benches:

* a serial scaling run at acceptance size (2000 providers, 40 rounds)
  — the chained delta engine vs a fresh full evaluation per round over
  one shared compilation, with per-round changed-column counts recorded
  so the time-vs-delta-size scaling is visible in the BENCH record;
* the supervised worker path (``workers=4`` at full size) — protocol on
  vs off, with the exact-counter contract asserted: after the base
  round every round rescores exactly the changed columns per shard
  (``parallel.columns_rescored``), bit-for-bit with full fan-out.

Both double as parity checks; timing without identity is noise.
Setting ``REPRO_BENCH_SMOKE=1`` shrinks the scenario so the module
doubles as a CI smoke test.  The workers variant follows the same loud
self-skip discipline as the other parallel benches: on a box without a
core per worker it records ``"skipped"`` instead of noise.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core.dimensions import Dimension
from repro.datasets import healthcare_scenario
from repro.obs import observed
from repro.perf import (
    BatchViolationEngine,
    CompiledPopulation,
    SupervisedExecutor,
    policy_fingerprint,
)
from repro.simulation.widening import (
    WideningStep,
    policy_delta_columns,
    widen,
)

from conftest import emit, record

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
PROVIDERS = 60 if SMOKE else 2000
ROUNDS = 6 if SMOKE else 40
WORKERS = 2 if SMOKE else 4
TIMING_REPEATS = 3
#: Ordered dimensions the round tour cycles through, one attribute at a
#: time, so each round changes a small column subset and the path stays
#: fingerprint-distinct for the whole run instead of saturating early.
TOUR_DIMENSIONS = (
    Dimension.VISIBILITY,
    Dimension.GRANULARITY,
    Dimension.RETENTION,
)


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _round_policies(scenario, rounds: int):
    """A widening tour: each round widens one attribute along one dimension.

    Cycling attribute-by-attribute (then dimension-by-dimension) keeps
    every round's delta small — one attribute's columns — while keeping
    round policies distinct far longer than a single saturating ladder
    would.  Rounds that clamp into an already-saturated corner produce a
    repeated fingerprint and are dropped; the returned path is what a
    dynamics loop would actually re-evaluate.
    """
    attributes = sorted({entry.attribute for entry in scenario.policy.entries})
    policies = [scenario.policy]
    current = scenario.policy
    step_index = 0
    while len(policies) < rounds + 1 and step_index < rounds * 6:
        attribute = attributes[step_index % len(attributes)]
        dimension = TOUR_DIMENSIONS[
            (step_index // len(attributes)) % len(TOUR_DIMENSIONS)
        ]
        step_index += 1
        candidate = widen(
            current,
            WideningStep.along(dimension, 1),
            scenario.taxonomy,
            attributes=[attribute],
            name=f"{scenario.policy.name}+r{len(policies)}",
        )
        if policy_fingerprint(candidate) == policy_fingerprint(current):
            current = candidate  # saturated corner: try the next move
            continue
        policies.append(candidate)
        current = candidate
    return policies


def test_column_delta_rounds_serial(benchmark):
    """Chained column deltas vs a full evaluation per round, one compile."""
    scenario = healthcare_scenario(PROVIDERS, seed=9)
    policies = _round_policies(scenario, ROUNDS)
    compiled = CompiledPopulation(scenario.population)
    changed_per_round = [
        len(policy_delta_columns(prev, cur))
        for prev, cur in zip(policies, policies[1:])
    ]

    def full_rounds():
        # A fresh engine per round shares the compilation but holds no
        # base: every round rescores the full decomposition.
        return [
            BatchViolationEngine(compiled).evaluate(policy)
            for policy in policies
        ]

    def delta_rounds():
        engine = BatchViolationEngine(compiled)
        timings = []
        reports = []
        for policy in policies:
            started = time.perf_counter()
            reports.append(engine.evaluate(policy))
            timings.append(time.perf_counter() - started)
        return reports, timings

    def measure():
        full_reports = full_rounds()
        full_seconds = min(
            _time(full_rounds) for _ in range(TIMING_REPEATS)
        )
        with observed() as obs:
            delta_reports, round_timings = delta_rounds()
            counters = {
                c["name"]: c["value"] for c in obs.snapshot()["counters"]
            }
        delta_seconds = min(
            _time(lambda: delta_rounds()) for _ in range(TIMING_REPEATS)
        )
        return (
            full_reports,
            full_seconds,
            delta_reports,
            delta_seconds,
            round_timings,
            counters,
        )

    def _time(run):
        started = time.perf_counter()
        run()
        return time.perf_counter() - started

    (
        full_reports,
        full_seconds,
        delta_reports,
        delta_seconds,
        round_timings,
        counters,
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Timing is only meaningful if both paths produce the same rounds.
    for full, delta in zip(full_reports, delta_reports):
        assert np.array_equal(full.violations, delta.violations)
        assert full.total_violations == delta.total_violations
    assert counters["engine.batch.full_evaluations"] == 1.0
    assert counters["engine.batch.delta_evaluations"] == float(
        len(policies) - 1
    )

    rounds = len(policies) - 1
    speedup = full_seconds / delta_seconds if delta_seconds else float("inf")
    emit(
        "E10: widening rounds, full rescore per round vs column deltas "
        "(serial)",
        format_table(
            ["providers", "rounds", "cols/round", "full s", "delta s",
             "full s/round", "delta s/round", "speedup"],
            [
                [
                    PROVIDERS,
                    rounds,
                    round(sum(changed_per_round) / max(rounds, 1), 2),
                    round(full_seconds, 4),
                    round(delta_seconds, 4),
                    round(full_seconds / max(rounds, 1), 5),
                    round(delta_seconds / max(rounds, 1), 5),
                    round(speedup, 2),
                ]
            ],
        ),
    )
    record(
        "column_delta_rounds_serial",
        providers=PROVIDERS,
        rounds=rounds,
        smoke=SMOKE,
        changed_columns_per_round=changed_per_round,
        round_seconds=[round(t, 6) for t in round_timings],
        full_seconds=full_seconds,
        delta_seconds=delta_seconds,
        speedup=speedup,
    )
    if not SMOKE:
        assert delta_seconds <= full_seconds


def test_column_delta_rounds_workers(benchmark):
    """The worker protocol: exact per-shard column accounting, on vs off.

    Only measurable with a core per worker — on an under-cored box this
    skips loudly (a BENCH record with ``"skipped"`` set) rather than
    publishing timings where workers time-slice one CPU.
    """
    cores = _available_cores()
    if not SMOKE and cores < WORKERS:
        record(
            "column_delta_rounds_parallel",
            providers=PROVIDERS,
            rounds=ROUNDS,
            workers=WORKERS,
            cores=cores,
            smoke=SMOKE,
            skipped="cores<workers",
        )
        pytest.skip(
            f"column-delta worker bench needs >= {WORKERS} cores "
            f"(have {cores}); timings would be meaningless"
        )
    scenario = healthcare_scenario(PROVIDERS, seed=9)
    policies = _round_policies(scenario, ROUNDS)
    changed_per_round = [
        len(policy_delta_columns(prev, cur))
        for prev, cur in zip(policies, policies[1:])
    ]

    def protocol_rounds(column_delta: bool):
        with SupervisedExecutor(
            scenario.population, workers=WORKERS, column_delta=column_delta
        ) as executor:
            shards = len(executor.bounds)
            started = time.perf_counter()
            reports = [executor.evaluate(policy) for policy in policies]
            elapsed = time.perf_counter() - started
        return reports, elapsed, shards

    def measure():
        full_reports, full_seconds, shards = protocol_rounds(False)
        with observed() as obs:
            delta_reports, delta_seconds, _ = protocol_rounds(True)
            counters = {
                c["name"]: c["value"] for c in obs.snapshot()["counters"]
            }
        return full_reports, full_seconds, delta_reports, delta_seconds, (
            shards,
            counters,
        )

    (
        full_reports,
        full_seconds,
        delta_reports,
        delta_seconds,
        (shards, counters),
    ) = benchmark.pedantic(measure, rounds=1, iterations=1)

    for full, delta in zip(full_reports, delta_reports):
        assert np.array_equal(full.violations, delta.violations)
        assert full.total_violations == delta.total_violations
    # The exact-counter contract: the base round rescores the full
    # decomposition once per shard, every later round exactly its
    # changed columns per shard, with no base replays on a healthy pool.
    base_columns = len(
        {
            (entry.attribute, entry.tuple.purpose)
            for entry in policies[0].entries
        }
    )
    expected_rescored = shards * (base_columns + sum(changed_per_round))
    assert counters["parallel.columns_rescored"] == float(expected_rescored)
    assert counters["parallel.delta_tasks"] == float(
        shards * len(changed_per_round)
    )
    assert "parallel.base_replays" not in counters

    rounds = len(policies) - 1
    speedup = full_seconds / delta_seconds if delta_seconds else float("inf")
    emit(
        "E10: widening rounds under workers, full fan-out vs column-delta "
        "protocol",
        format_table(
            ["providers", "rounds", "workers", "cores", "cols rescored",
             "full s", "delta s", "speedup"],
            [
                [
                    PROVIDERS,
                    rounds,
                    WORKERS,
                    cores,
                    expected_rescored,
                    round(full_seconds, 4),
                    round(delta_seconds, 4),
                    round(speedup, 2),
                ]
            ],
        ),
    )
    record(
        "column_delta_rounds_parallel",
        providers=PROVIDERS,
        rounds=rounds,
        workers=WORKERS,
        cores=cores,
        smoke=SMOKE,
        changed_columns_per_round=changed_per_round,
        columns_rescored=expected_rescored,
        full_seconds=full_seconds,
        delta_seconds=delta_seconds,
        speedup=speedup,
    )

"""The exact Table 1 reproduction — the E1 ground truth."""

from __future__ import annotations

import pytest

from repro.core import ViolationEngine
from repro.datasets import PAPER_EXPECTATIONS
from repro.datasets.paper_example import (
    BASE_G,
    BASE_R,
    BASE_V,
    WEIGHT_ATTRIBUTE_SENSITIVITY,
    paper_example_policy,
    paper_example_population,
)


@pytest.fixture(scope="module")
def report():
    return ViolationEngine(
        paper_example_policy(), paper_example_population()
    ).report()


class TestTable1Exact:
    """Every number in Section 8, asserted exactly (no tolerance)."""

    def test_conflicts_eq20(self, report):
        conflicts = {o.provider_id: o.violation for o in report.outcomes}
        assert conflicts == dict(PAPER_EXPECTATIONS.conflicts)

    def test_indicators_table1(self, report):
        indicators = {o.provider_id: int(o.violated) for o in report.outcomes}
        assert indicators == dict(PAPER_EXPECTATIONS.indicators)

    def test_defaults_eq21_23(self, report):
        defaults = {o.provider_id: int(o.defaulted) for o in report.outcomes}
        assert defaults == dict(PAPER_EXPECTATIONS.defaults)

    def test_default_probability_eq24(self, report):
        assert report.default_probability == PAPER_EXPECTATIONS.default_probability

    def test_violation_probability(self, report):
        assert (
            report.violation_probability
            == PAPER_EXPECTATIONS.violation_probability
        )

    def test_total_violations_eq16(self, report):
        assert report.total_violations == PAPER_EXPECTATIONS.total_violations

    def test_ted_violated_along_granularity_only(self, report):
        from repro.core import Dimension

        ted = next(o for o in report.outcomes if o.provider_id == "Ted")
        assert {f.dimension for f in ted.findings} == {Dimension.GRANULARITY}

    def test_bob_violated_along_granularity_and_retention(self, report):
        from repro.core import Dimension

        bob = next(o for o in report.outcomes if o.provider_id == "Bob")
        assert {f.dimension for f in bob.findings} == {
            Dimension.GRANULARITY,
            Dimension.RETENTION,
        }

    def test_age_attribute_violates_nobody(self, report):
        for outcome in report.outcomes:
            assert all(f.attribute != "Age" for f in outcome.findings)

    def test_bob_depth_vs_ted_sensitivity_inversion(self, report):
        """The paper's observation: Bob is violated along *two* dimensions
        yet stays, while Ted (one dimension, higher sensitivity, lower
        threshold) defaults."""
        ted = next(o for o in report.outcomes if o.provider_id == "Ted")
        bob = next(o for o in report.outcomes if o.provider_id == "Bob")
        assert len(bob.findings) > len(ted.findings)
        assert bob.violation > ted.violation
        assert ted.defaulted and not bob.defaulted


class TestFixtureInternals:
    def test_base_ranks_keep_offsets_non_negative(self):
        assert BASE_G - 1 >= 0
        assert BASE_R - 1 >= 0
        assert BASE_V >= 0

    def test_sigma_weight_is_four(self):
        population = paper_example_population()
        assert (
            population.attribute_sensitivities.weight("Weight")
            == WEIGHT_ATTRIBUTE_SENSITIVITY
            == 4.0
        )

    def test_thresholds_match_table(self):
        population = paper_example_population()
        thresholds = {p.provider_id: p.threshold for p in population}
        assert thresholds == dict(PAPER_EXPECTATIONS.thresholds)

    def test_fixture_is_reconstructible(self):
        assert paper_example_population().ids() == ("Alice", "Ted", "Bob")
        assert paper_example_policy() == paper_example_policy()

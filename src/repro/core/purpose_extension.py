"""The ordered-purpose extension (paper assumption 4).

Assumption 4 notes that if ongoing work on purpose semantics (Ghazinour &
Barker's lattice, ref [5]) "leads to a total ordering on the purpose
dimension, then in this case we could treat purpose as any other privacy
dimension without changing our approach".  This module implements exactly
that variant:

* comparability (Eq. 13) weakens to *same attribute only* — tuples with
  different purposes are now ordered, not incomparable;
* ``diff`` (Eq. 12) additionally applies to purpose *ranks* taken from a
  total order (a :class:`~repro.core.purpose.PurposeLattice` chain or any
  explicit purpose -> rank mapping);
* the V/G/R comparison applies whenever the policy's purpose is at least
  as broad as the preference's (a narrower-purpose policy entry cannot
  violate a broader-purpose preference — using data for *less* than you
  were allowed is not an exceedance).

Because cross-purpose pairs are now directly comparable, the categorical
model's implicit-zero completion is unnecessary here: a policy purpose the
provider never mentioned is simply compared through the order.  Purpose
exceedances are weighted by ``Sigma^a`` and the data-value sensitivity
``s_i^a`` but have no per-dimension weight (the paper's ``sigma_i^j``
record carries no purpose component), i.e. their dimension weight is 1.

The ordered-purpose ablation benchmark quantifies how many additional
violations this extension surfaces over the categorical baseline.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..exceptions import ValidationError
from .dimensions import Dimension, ORDERED_DIMENSIONS
from .policy import HousePolicy
from .preferences import ProviderPreferences
from .purpose import PurposeLattice
from .sensitivity import SensitivityModel
from .violation import ViolationFinding, diff


def _resolve_order(
    order: PurposeLattice | Mapping[str, int]
) -> Mapping[str, int]:
    """Normalise the purpose order argument to a rank mapping."""
    if isinstance(order, PurposeLattice):
        return order.total_order()
    if not order:
        raise ValidationError("purpose order must not be empty")
    for purpose, rank in order.items():
        if not isinstance(rank, int) or isinstance(rank, bool) or rank < 0:
            raise ValidationError(
                f"purpose rank for {purpose!r} must be a non-negative "
                f"integer, got {rank!r}"
            )
    return order


def find_violations_ordered_purpose(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    order: PurposeLattice | Mapping[str, int],
    sensitivities: SensitivityModel | None = None,
) -> list[ViolationFinding]:
    """Every exceedance under the ordered-purpose variant of the model.

    Purpose exceedances are reported with ``dimension=Dimension.PURPOSE``
    and rank values taken from *order*.  V/G/R exceedances are reported for
    every (preference, policy) pair on the same attribute whose policy
    purpose is at least as broad as the preference purpose.

    Raises
    ------
    ValidationError
        If *order* (or the lattice) does not define a total order covering
        every purpose appearing in the inputs.
    """
    ranks = _resolve_order(order)
    model = sensitivities if sensitivities is not None else SensitivityModel.neutral()
    mentioned = {entry.purpose for entry in preferences.entries} | {
        entry.purpose for entry in policy
    }
    missing = sorted(mentioned - set(ranks))
    if missing:
        raise ValidationError(
            f"purpose order does not cover: {missing}"
        )
    findings: list[ViolationFinding] = []
    for pref in preferences.entries:
        attribute_weight = model.attribute_weight(pref.attribute)
        datum = model.datum(pref.provider_id, pref.attribute)
        pref_rank = ranks[pref.purpose]
        for pol in policy.for_attribute(pref.attribute):
            pol_rank = ranks[pol.purpose]
            if pol_rank < pref_rank:
                continue  # narrower-purpose use cannot exceed
            purpose_amount = diff(pref_rank, pol_rank)
            if purpose_amount:
                findings.append(
                    ViolationFinding(
                        provider_id=pref.provider_id,
                        attribute=pref.attribute,
                        purpose=pol.purpose,
                        dimension=Dimension.PURPOSE,
                        preference_value=pref_rank,
                        policy_value=pol_rank,
                        amount=purpose_amount,
                        weighted=purpose_amount
                        * attribute_weight
                        * datum.value,
                    )
                )
            for dim in ORDERED_DIMENSIONS:
                amount = diff(pref.tuple.rank(dim), pol.tuple.rank(dim))
                if not amount:
                    continue
                findings.append(
                    ViolationFinding(
                        provider_id=pref.provider_id,
                        attribute=pref.attribute,
                        purpose=pol.purpose,
                        dimension=dim,
                        preference_value=pref.tuple.rank(dim),
                        policy_value=pol.tuple.rank(dim),
                        amount=amount,
                        weighted=amount
                        * attribute_weight
                        * datum.value
                        * datum.dimension_weight(dim),
                    )
                )
    return findings


def find_violations_lattice_purpose(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    lattice: PurposeLattice,
    sensitivities: SensitivityModel | None = None,
) -> list[ViolationFinding]:
    """The partial-order variant: lattice comparability without distances.

    When the purpose structure is a genuine lattice (the [5] semantics)
    but *not* a chain, purposes have an "is broader than" relation yet no
    meaningful numeric distance.  This variant:

    * compares a preference tuple against a policy tuple whenever the
      policy's purpose is **at least as broad** (``lattice.leq(pref, pol)``)
      — using data for a broader purpose engages the preference;
    * measures V/G/R exceedances exactly as the categorical model does;
    * reports a broader-purpose use *at identical or lower ranks* as a
      unit purpose finding (amount 1): the reuse itself is the violation,
      but no rank distance exists to scale it.

    Incomparable purposes never conflict, mirroring the categorical
    model's treatment of distinct purposes.
    """
    model = sensitivities if sensitivities is not None else SensitivityModel.neutral()
    findings: list[ViolationFinding] = []
    for pref in preferences.entries:
        if pref.purpose not in lattice.purposes:
            raise ValidationError(
                f"preference purpose {pref.purpose!r} not in the lattice"
            )
        attribute_weight = model.attribute_weight(pref.attribute)
        datum = model.datum(pref.provider_id, pref.attribute)
        for pol in policy.for_attribute(pref.attribute):
            if pol.purpose not in lattice.purposes:
                raise ValidationError(
                    f"policy purpose {pol.purpose!r} not in the lattice"
                )
            if not lattice.leq(pref.purpose, pol.purpose):
                continue
            strictly_broader = pref.purpose != pol.purpose
            any_rank_exceeded = False
            for dim in ORDERED_DIMENSIONS:
                amount = diff(pref.tuple.rank(dim), pol.tuple.rank(dim))
                if not amount:
                    continue
                any_rank_exceeded = True
                findings.append(
                    ViolationFinding(
                        provider_id=pref.provider_id,
                        attribute=pref.attribute,
                        purpose=pol.purpose,
                        dimension=dim,
                        preference_value=pref.tuple.rank(dim),
                        policy_value=pol.tuple.rank(dim),
                        amount=amount,
                        weighted=amount
                        * attribute_weight
                        * datum.value
                        * datum.dimension_weight(dim),
                    )
                )
            if strictly_broader and not any_rank_exceeded:
                # Reuse under a strictly broader purpose at contained ranks:
                # the reuse itself is the exceedance (unit amount).
                findings.append(
                    ViolationFinding(
                        provider_id=pref.provider_id,
                        attribute=pref.attribute,
                        purpose=pol.purpose,
                        dimension=Dimension.PURPOSE,
                        preference_value=0,
                        policy_value=1,
                        amount=1,
                        weighted=attribute_weight * datum.value,
                    )
                )
    return findings


def violation_indicator_ordered_purpose(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    order: PurposeLattice | Mapping[str, int],
) -> int:
    """Definition 1 under the ordered-purpose variant."""
    return 1 if find_violations_ordered_purpose(preferences, policy, order) else 0


def provider_violation_ordered_purpose(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    order: PurposeLattice | Mapping[str, int],
    sensitivities: SensitivityModel | None = None,
) -> float:
    """Equation 15 under the ordered-purpose variant."""
    return sum(
        finding.weighted
        for finding in find_violations_ordered_purpose(
            preferences, policy, order, sensitivities
        )
    )

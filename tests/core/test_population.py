"""Unit tests for Provider and Population."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    DimensionSensitivity,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
)
from repro.exceptions import UnknownProviderError, ValidationError


def _provider(pid: str, threshold: float = math.inf) -> Provider:
    return Provider(
        preferences=ProviderPreferences(
            pid, [("weight", PrivacyTuple("billing", 1, 1, 1))]
        ),
        threshold=threshold,
    )


class TestProvider:
    def test_provider_id_from_preferences(self):
        assert _provider("x").provider_id == "x"

    def test_default_threshold_is_infinite(self):
        assert _provider("x").threshold == math.inf

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            _provider("x", threshold=-1.0)

    def test_non_preferences_rejected(self):
        with pytest.raises(ValidationError):
            Provider(preferences="nope")  # type: ignore[arg-type]

    def test_provider_sensitivity_conversion(self):
        provider = Provider(
            preferences=ProviderPreferences(
                "x", [("weight", PrivacyTuple("billing", 1, 1, 1))]
            ),
            sensitivity={"weight": DimensionSensitivity(value=3.0)},
        )
        sigma = provider.provider_sensitivity()
        assert sigma.provider_id == "x"
        assert sigma.for_attribute("weight").value == 3.0

    def test_segment_label_carried(self):
        provider = Provider(
            preferences=ProviderPreferences("x"), segment="pragmatist"
        )
        assert provider.segment == "pragmatist"


class TestPopulation:
    def test_len_iter_contains(self):
        population = Population([_provider("a"), _provider("b")])
        assert len(population) == 2
        assert [p.provider_id for p in population] == ["a", "b"]
        assert "a" in population
        assert "z" not in population

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValidationError):
            Population([_provider("a"), _provider("a")])

    def test_non_provider_rejected(self):
        with pytest.raises(ValidationError):
            Population(["a"])  # type: ignore[list-item]

    def test_get(self):
        population = Population([_provider("a")])
        assert population.get("a").provider_id == "a"

    def test_get_unknown_raises(self):
        population = Population([_provider("a")])
        with pytest.raises(UnknownProviderError):
            population.get("z")

    def test_ids_order(self):
        population = Population([_provider("b"), _provider("a")])
        assert population.ids() == ("b", "a")

    def test_without_removes(self):
        population = Population([_provider("a"), _provider("b"), _provider("c")])
        remaining = population.without(["b"])
        assert remaining.ids() == ("a", "c")
        assert len(population) == 3  # original untouched

    def test_without_unknown_raises(self):
        population = Population([_provider("a")])
        with pytest.raises(UnknownProviderError):
            population.without(["z"])

    def test_subset_keeps_order(self):
        population = Population([_provider("a"), _provider("b"), _provider("c")])
        assert population.subset(["c", "a"]).ids() == ("a", "c")

    def test_subset_unknown_raises(self):
        population = Population([_provider("a")])
        with pytest.raises(UnknownProviderError):
            population.subset(["z"])

    def test_sensitivity_model_includes_explicit_records(self):
        provider = Provider(
            preferences=ProviderPreferences(
                "x", [("weight", PrivacyTuple("billing", 1, 1, 1))]
            ),
            sensitivity={"weight": DimensionSensitivity(value=5.0)},
        )
        population = Population([provider], {"weight": 2.0})
        model = population.sensitivity_model()
        assert model.attribute_weight("weight") == 2.0
        assert model.datum("x", "weight").value == 5.0

    def test_default_model_skips_infinite_thresholds(self):
        population = Population(
            [_provider("a", threshold=10.0), _provider("b")]
        )
        model = population.default_model()
        assert model.known_providers() == frozenset({"a"})
        assert model.threshold("b") == math.inf

    def test_default_model_strictness_flag(self):
        population = Population([_provider("a", threshold=10.0)])
        loose = population.default_model(strict=False)
        assert loose.defaults("a", 10.0) == 1

    def test_with_attribute_sensitivities(self):
        population = Population([_provider("a")])
        updated = population.with_attribute_sensitivities({"weight": 9.0})
        assert updated.attribute_sensitivities.weight("weight") == 9.0
        assert population.attribute_sensitivities.weight("weight") == 1.0

    def test_preference_sets_order(self):
        population = Population([_provider("b"), _provider("a")])
        assert [p.provider_id for p in population.preference_sets()] == ["b", "a"]

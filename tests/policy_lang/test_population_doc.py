"""Unit tests for population documents."""

from __future__ import annotations

import math

import pytest

from repro.core import DimensionSensitivity, PrivacyTuple
from repro.exceptions import PolicyDocumentError
from repro.policy_lang import (
    parse_population,
    population_from_json,
    population_to_dict,
    population_to_json,
)
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing"])


DOC = {
    "attribute_sensitivities": {"weight": 4.0},
    "providers": [
        {
            "provider": "ted",
            "segment": "pragmatist",
            "threshold": 50,
            "preferences": [
                {
                    "attribute": "weight",
                    "purpose": "billing",
                    "visibility": "all",
                    "granularity": "existential",
                    "retention": "all" if False else "indefinite",
                }
            ],
            "sensitivities": {
                "weight": {"value": 3, "granularity": 5, "retention": 2}
            },
        },
        {
            "provider": "immortal",
            "preferences": [
                {
                    "attribute": "weight",
                    "purpose": "billing",
                    "visibility": 0,
                    "granularity": 0,
                    "retention": 0,
                }
            ],
        },
    ],
}


class TestParsePopulation:
    def test_providers_parsed(self, taxonomy):
        population = parse_population(DOC, taxonomy)
        assert population.ids() == ("ted", "immortal")
        ted = population.get("ted")
        assert ted.threshold == 50.0
        assert ted.segment == "pragmatist"
        assert ted.preferences.entries[0].tuple == PrivacyTuple(
            "billing", 4, 1, 4
        )
        assert ted.sensitivity["weight"] == DimensionSensitivity(
            3.0, 1.0, 5.0, 2.0
        )

    def test_missing_threshold_means_never_defaults(self, taxonomy):
        population = parse_population(DOC, taxonomy)
        assert population.get("immortal").threshold == math.inf

    def test_attribute_sensitivities(self, taxonomy):
        population = parse_population(DOC, taxonomy)
        assert population.attribute_sensitivities.weight("weight") == 4.0

    def test_missing_providers_rejected(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            parse_population({"attribute_sensitivities": {}}, taxonomy)

    def test_unknown_provider_key_rejected(self, taxonomy):
        doc = {
            "providers": [
                {"provider": "x", "preferences": [], "age": 30}
            ]
        }
        with pytest.raises(PolicyDocumentError):
            parse_population(doc, taxonomy)

    def test_unknown_sensitivity_key_rejected(self, taxonomy):
        doc = {
            "providers": [
                {
                    "provider": "x",
                    "preferences": [],
                    "sensitivities": {"w": {"weirdness": 1}},
                }
            ]
        }
        with pytest.raises(PolicyDocumentError):
            parse_population(doc, taxonomy)


class TestRoundTrips:
    def test_document_round_trip(self, taxonomy):
        population = parse_population(DOC, taxonomy)
        document = population_to_dict(population, taxonomy)
        again = parse_population(document, taxonomy)
        assert again.ids() == population.ids()
        for provider_id in population.ids():
            original = population.get(provider_id)
            restored = again.get(provider_id)
            assert restored.preferences == original.preferences
            assert restored.threshold == original.threshold
            assert restored.segment == original.segment
            assert restored.sensitivity == original.sensitivity
        assert (
            again.attribute_sensitivities == population.attribute_sensitivities
        )

    def test_json_round_trip(self, taxonomy):
        population = parse_population(DOC, taxonomy)
        text = population_to_json(population, taxonomy)
        again = population_from_json(text, taxonomy)
        assert again.ids() == population.ids()

    def test_paper_population_round_trips(self, paper_population):
        from repro.taxonomy import TaxonomyBuilder

        # The Table 1 preference offsets reach rank 5; use ladders deep
        # enough to hold them.
        deep = (
            TaxonomyBuilder()
            .with_purposes(["pr"])
            .with_visibility([f"v{i}" for i in range(6)])
            .with_granularity([f"g{i}" for i in range(6)])
            .with_retention([f"r{i}" for i in range(6)])
            .build()
        )
        document = population_to_dict(paper_population)
        again = parse_population(document, deep)
        assert again.ids() == paper_population.ids()
        for provider in paper_population:
            restored = again.get(provider.provider_id)
            assert restored.threshold == provider.threshold
            assert restored.preferences == provider.preferences


class TestPreferenceDocuments:
    """The shared population -> PreferenceDocument extraction helper."""

    def test_one_document_per_provider(self):
        from repro.policy_lang import preference_documents

        documents = preference_documents(DOC)
        assert [d.provider for d in documents] == ["ted", "immortal"]

    def test_documents_carry_preferences_verbatim(self):
        from repro.policy_lang import preference_documents

        documents = preference_documents(DOC)
        spec = documents[0].preferences[0]
        assert spec.attribute == "weight"
        assert spec.visibility == "all"

    def test_attributes_provided_defaults_to_none(self):
        from repro.policy_lang import preference_documents

        documents = preference_documents(DOC)
        assert documents[0].attributes_provided is None

    def test_explicit_attributes_provided_preserved(self):
        from repro.policy_lang import preference_documents

        doc = {
            "providers": [
                {
                    "provider": "x",
                    "attributes_provided": ["weight", "age"],
                    "preferences": [],
                }
            ]
        }
        (document,) = preference_documents(doc)
        assert set(document.attributes_provided) == {"weight", "age"}

    def test_empty_population_yields_no_documents(self):
        from repro.policy_lang import preference_documents

        assert preference_documents({"providers": []}) == ()

    def test_non_mapping_document_raises(self):
        from repro.policy_lang import preference_documents

        with pytest.raises(PolicyDocumentError):
            preference_documents(["not", "a", "mapping"])

    def test_non_mapping_entry_raises(self):
        from repro.policy_lang import preference_documents

        with pytest.raises(PolicyDocumentError):
            preference_documents({"providers": ["nope"]})

    def test_missing_provider_id_raises(self):
        from repro.exceptions import PrivacyModelError
        from repro.policy_lang import preference_documents

        with pytest.raises(PrivacyModelError):
            preference_documents({"providers": [{"preferences": []}]})

    def test_empty_population_parses_and_lints_clean(self, taxonomy):
        population = parse_population({"providers": []}, taxonomy)
        assert len(population) == 0

"""Unit tests for span tracing: nesting, error capture, rendering."""

from __future__ import annotations

import logging
import threading

import pytest

from repro.obs import Tracer


class TestNesting:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("sweep.run", steps=3):
            with tracer.span("sweep.step", k=0):
                pass
            with tracer.span("sweep.step", k=1):
                pass
        [root] = tracer.roots
        assert root.name == "sweep.run"
        assert [child.name for child in root.children] == [
            "sweep.step",
            "sweep.step",
        ]
        assert [child.attributes["k"] for child in root.children] == [0, 1]

    def test_sequential_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_stamped_on_exit(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        [root] = tracer.roots
        assert root.duration is not None and root.duration >= 0
        assert root.children[0].duration is not None
        assert root.children[0].duration <= root.duration

    def test_exception_recorded_and_propagated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        [root] = tracer.roots
        assert root.error == "RuntimeError"
        assert root.duration is not None

    def test_annotate_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("run") as span:
            span.annotate(rows=5)
        [root] = tracer.roots
        assert root.attributes["rows"] == 5

    def test_threads_get_their_own_stacks(self):
        tracer = Tracer()

        def worker(tag):
            with tracer.span("worker", tag=tag):
                pass

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker spans opened on other threads become roots of their own
        # trees, never children of this thread's open span.
        [main_root] = [r for r in tracer.roots if r.name == "main"]
        assert main_root.children == []
        assert sum(1 for r in tracer.roots if r.name == "worker") == 4


class TestRendering:
    def _tracer(self) -> Tracer:
        tracer = Tracer()
        with tracer.span("sweep.run", steps=2):
            with tracer.span("sweep.step", k=0):
                pass
            with tracer.span("sweep.step", k=1):
                pass
        return tracer

    def test_tree_text_layout(self):
        lines = self._tracer().tree_text().splitlines()
        assert lines[0].startswith("sweep.run")
        assert "(steps=2)" in lines[0]
        assert lines[1].startswith("|-- sweep.step")
        assert lines[2].startswith("`-- sweep.step")

    def test_empty_tracer_renders_empty(self):
        assert Tracer().tree_text() == ""

    def test_as_dict_shape(self):
        [document] = [
            root
            for root in self._tracer().as_dict()
        ]
        assert document["name"] == "sweep.run"
        assert document["attributes"] == {"steps": 2}
        assert document["duration_seconds"] >= 0
        assert len(document["children"]) == 2
        assert "error" not in document

    def test_debug_log_emitted_per_span(self, caplog):
        tracer = Tracer()
        with caplog.at_level(logging.DEBUG, logger="repro.obs"):
            with tracer.span("engine.violations", providers=3):
                pass
        [record] = [
            record
            for record in caplog.records
            if getattr(record, "span_name", None) == "engine.violations"
        ]
        assert record.span_duration >= 0
        assert record.span_error is None

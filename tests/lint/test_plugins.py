"""Tests for the external rule registration (plugin) API."""

from __future__ import annotations

import pytest

from repro.exceptions import LintConfigurationError
from repro.lint import (
    Diagnostic,
    Layer,
    Severity,
    SourceLocation,
    get_rule,
    lint_documents,
    rules_fingerprint,
    unregister_rule,
)
from repro.lint import plugins
from repro.lint.plugins import (
    lint_rule,
    load_entry_point_rules,
    plugin_load_errors,
    registered_rule,
    reset_plugins,
)


def noop_check(ctx, emit):
    pass


def taxonomy_nag(ctx, emit):
    emit(SourceLocation("taxonomy"), "the taxonomy displeases this plugin")


@pytest.fixture(autouse=True)
def _pristine_plugin_state():
    reset_plugins()
    yield
    reset_plugins()


class TestLintRuleDecorator:
    def test_registers_with_string_enums(self):
        lint_rule(
            "ACME001",
            title="purpose naming",
            severity="warning",
            layer="population",
            description="d",
            scope="provider",
        )(noop_check)
        try:
            info = get_rule("ACME001")
            assert info.severity is Severity.WARNING
            assert info.layer is Layer.POPULATION
            assert info.scope == "provider"
        finally:
            assert unregister_rule("ACME001")

    def test_collision_with_builtin_code_raises(self):
        with pytest.raises(LintConfigurationError):
            lint_rule(
                "PVL001",
                title="imposter",
                description="d",
            )(noop_check)

    def test_plugin_rule_reaches_reports_and_gating(self, taxonomy):
        with registered_rule(
            "ACME002",
            taxonomy_nag,
            title="taxonomy nag",
            severity="error",
            description="d",
        ):
            report = lint_documents(taxonomy)
            assert report.codes() == ("ACME002",)
            assert report.exit_code() == 1
            # Select/ignore treat plugin codes like any PVL code.
            assert not lint_documents(taxonomy, ignore=["ACME002"])
        # Context manager unregistered the rule on exit.
        report = lint_documents(taxonomy)
        assert not report
        with pytest.raises(LintConfigurationError):
            get_rule("ACME002")

    def test_registration_changes_rules_fingerprint(self):
        before = rules_fingerprint()
        with registered_rule(
            "ACME003", noop_check, title="t", description="d"
        ):
            assert rules_fingerprint() != before
        assert rules_fingerprint() == before


class FakeEntryPoint:
    def __init__(self, name, target):
        self.name = name
        self._target = target

    def load(self):
        if isinstance(self._target, Exception):
            raise self._target
        return self._target


class TestEntryPointLoading:
    def test_loads_callable_entry_points(self, monkeypatch, taxonomy):
        def register():
            lint_rule(
                "ACME010", title="t", severity="info", description="d"
            )(taxonomy_nag)

        monkeypatch.setattr(
            plugins,
            "_entry_points",
            lambda: [FakeEntryPoint("acme", register)],
        )
        try:
            assert load_entry_point_rules() == ("acme",)
            assert plugin_load_errors() == ()
            assert get_rule("ACME010").title == "t"
            # Idempotent: a second call does not reload.
            assert load_entry_point_rules() == ()
        finally:
            unregister_rule("ACME010")

    def test_broken_plugin_is_recorded_not_fatal(self, monkeypatch, taxonomy):
        def register_ok():
            lint_rule(
                "ACME011", title="t", severity="info", description="d"
            )(noop_check)

        monkeypatch.setattr(
            plugins,
            "_entry_points",
            lambda: [
                FakeEntryPoint("broken", ImportError("no such module")),
                FakeEntryPoint("ok", register_ok),
            ],
        )
        try:
            assert load_entry_point_rules() == ("ok",)
            errors = plugin_load_errors()
            assert len(errors) == 1
            assert errors[0][0] == "broken"
            assert "no such module" in errors[0][1]
            # The linter still runs after a failed plugin load.
            assert lint_documents(taxonomy).codes() == ()
        finally:
            unregister_rule("ACME011")

    def test_metadata_backend_failure_disables_plugins_only(
        self, monkeypatch
    ):
        def explode():
            raise RuntimeError("metadata backend down")

        monkeypatch.setattr(plugins, "_entry_points", explode)
        assert load_entry_point_rules() == ()
        assert plugin_load_errors() == (
            ("<entry-points>", "metadata backend down"),
        )

    def test_force_reload(self, monkeypatch):
        calls = []
        monkeypatch.setattr(
            plugins,
            "_entry_points",
            lambda: calls.append(1) or [],
        )
        assert load_entry_point_rules() == ()
        assert load_entry_point_rules() == ()
        assert load_entry_point_rules(force=True) == ()
        assert len(calls) == 2


class TestDiagnosticRoundTrip:
    def test_from_dict_round_trips(self):
        diagnostic = Diagnostic(
            code="PVL001",
            severity=Severity.ERROR,
            message="m",
            location=SourceLocation(
                "policy", name="p", index=2, field="purpose"
            ),
            payload={"purpose": "resale"},
        )
        assert Diagnostic.from_dict(diagnostic.as_dict()) == diagnostic

"""Unit tests for the one-time population compilation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    DefaultModel,
    DimensionSensitivity,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
)
from repro.exceptions import UnknownProviderError, ValidationError
from repro.perf import RANK_AXES, CompiledPopulation


@pytest.fixture()
def small_population() -> Population:
    alice = Provider(
        preferences=ProviderPreferences(
            "alice",
            [
                ("weight", PrivacyTuple("billing", 2, 1, 2)),
                ("weight", PrivacyTuple("research", 1, 1, 1)),
                ("name", PrivacyTuple("billing", 3, 3, 3)),
            ],
        ),
        sensitivity={
            "weight": DimensionSensitivity(
                value=2.0, visibility=1.5, granularity=1.0, retention=0.5
            )
        },
        threshold=5.0,
        segment="pragmatist",
    )
    # Bob supplies "weight" but states no preference for it at all: every
    # purpose column on "weight" completes him with an implicit zero.
    bob = Provider(
        preferences=ProviderPreferences(
            "bob",
            [("name", PrivacyTuple("billing", 1, 1, 1))],
            attributes_provided=["name", "weight"],
        ),
        threshold=math.inf,
    )
    return Population([alice, bob], attribute_sensitivities={"weight": 3.0})


class TestConstruction:
    def test_rejects_non_population(self):
        with pytest.raises(ValidationError):
            CompiledPopulation(["not a population"])  # type: ignore[arg-type]

    def test_rank_axes_order(self):
        assert RANK_AXES == ("visibility", "granularity", "retention")

    def test_ids_follow_population_order(self, small_population):
        compiled = CompiledPopulation(small_population)
        assert compiled.ids == ("alice", "bob")
        assert len(compiled) == 2
        assert compiled.row_of("bob") == 1

    def test_row_of_unknown_provider_raises(self, small_population):
        compiled = CompiledPopulation(small_population)
        with pytest.raises(UnknownProviderError):
            compiled.row_of("mallory")

    def test_thresholds_and_segments(self, small_population):
        compiled = CompiledPopulation(small_population)
        assert compiled.thresholds.tolist() == [5.0, math.inf]
        assert compiled.segments == ("pragmatist", None)
        assert compiled.strict is True

    def test_default_model_override_changes_thresholds(self, small_population):
        compiled = CompiledPopulation(
            small_population,
            default_model=DefaultModel(
                {"alice": 1.0}, default_threshold=2.0, strict=False
            ),
        )
        assert compiled.thresholds.tolist() == [1.0, 2.0]
        assert compiled.strict is False


class TestWeights:
    def test_attribute_weights_shape_and_values(self, small_population):
        compiled = CompiledPopulation(small_population)
        weights = compiled.attribute_weights("weight")
        assert weights.shape == (2, 3)
        # Alice: Sigma^weight=3, value=2 -> base 6; per-dim 1.5/1.0/0.5.
        assert weights[0].tolist() == [9.0, 6.0, 3.0]
        # Bob has no sensitivity record: everything neutral -> 3x1x1.
        assert weights[1].tolist() == [3.0, 3.0, 3.0]

    def test_attribute_weights_cached(self, small_population):
        compiled = CompiledPopulation(small_population)
        assert compiled.attribute_weights("name") is compiled.attribute_weights(
            "name"
        )


class TestColumns:
    def test_explicit_rows(self, small_population):
        compiled = CompiledPopulation(small_population)
        column = compiled.column("weight", "billing")
        assert column.n_rows == 1
        assert column.row_providers.tolist() == [0]
        assert column.row_ranks.tolist() == [[2, 1, 2]]
        assert column.row_weights.tolist() == [[9.0, 6.0, 3.0]]

    def test_implicit_completion_only_for_suppliers_without_entry(
        self, small_population
    ):
        compiled = CompiledPopulation(small_population)
        # Bob supplied "weight" with no preference: implicit on any purpose.
        assert compiled.column("weight", "billing").implicit_providers.tolist() == [1]
        assert compiled.column("weight", "research").implicit_providers.tolist() == [1]
        # Both explicitly cover ("name", "billing"): nobody is implicit.
        assert compiled.column("name", "billing").n_implicit == 0
        # Neither covers ("name", "research"): both are implicit.
        assert compiled.column("name", "research").implicit_providers.tolist() == [0, 1]

    def test_unknown_attribute_column_is_empty(self, small_population):
        compiled = CompiledPopulation(small_population)
        column = compiled.column("fingerprint", "billing")
        assert column.n_rows == 0
        assert column.n_implicit == 0

    def test_columns_cached(self, small_population):
        compiled = CompiledPopulation(small_population)
        assert compiled.column("weight", "billing") is compiled.column(
            "weight", "billing"
        )

    def test_several_rows_per_provider(self, small_population):
        # Alice holds two "weight" tuples for different purposes; within
        # one column only the matching one appears.
        compiled = CompiledPopulation(small_population)
        research = compiled.column("weight", "research")
        assert research.row_ranks.tolist() == [[1, 1, 1]]

    def test_row_weights_aligned_with_rows(self, small_population):
        compiled = CompiledPopulation(small_population)
        column = compiled.column("name", "billing")
        weights = compiled.attribute_weights("name")
        assert np.array_equal(
            column.row_weights, weights[column.row_providers]
        )

"""Unit tests for HousePolicy (Eqs. 2-4) and widening."""

from __future__ import annotations

import pytest

from repro.core import Dimension, HousePolicy, PolicyEntry, PrivacyTuple
from repro.exceptions import ValidationError


@pytest.fixture()
def policy() -> HousePolicy:
    return HousePolicy(
        [
            ("weight", PrivacyTuple("billing", 2, 2, 2)),
            ("weight", PrivacyTuple("research", 1, 1, 3)),
            ("age", PrivacyTuple("billing", 1, 1, 1)),
        ],
        name="test-policy",
    )


class TestConstruction:
    def test_accepts_pairs_and_entries(self):
        entry = PolicyEntry("age", PrivacyTuple("billing", 1, 1, 1))
        policy = HousePolicy([entry, ("weight", PrivacyTuple("billing", 2, 2, 2))])
        assert len(policy) == 2

    def test_deduplicates_exact_duplicates(self):
        pair = ("weight", PrivacyTuple("billing", 2, 2, 2))
        policy = HousePolicy([pair, pair])
        assert len(policy) == 1

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            HousePolicy(["weight"])  # type: ignore[list-item]

    def test_empty_policy_is_legal(self):
        assert len(HousePolicy([])) == 0

    def test_same_attribute_multiple_purposes_kept(self, policy):
        assert len(policy.for_attribute("weight")) == 2


class TestAccessors:
    def test_for_attribute_is_eq4(self, policy):
        weight_entries = policy.for_attribute("weight")
        assert all(e.attribute == "weight" for e in weight_entries)
        assert len(weight_entries) == 2

    def test_for_attribute_missing_is_empty(self, policy):
        assert policy.for_attribute("height") == ()

    def test_for_purpose(self, policy):
        billing = policy.for_purpose("billing")
        assert {e.attribute for e in billing} == {"weight", "age"}

    def test_attributes_sorted(self, policy):
        assert policy.attributes() == ("age", "weight")

    def test_purposes_sorted(self, policy):
        assert policy.purposes() == ("billing", "research")

    def test_iteration_preserves_order(self, policy):
        attributes = [e.attribute for e in policy]
        assert attributes == ["weight", "weight", "age"]

    def test_contains(self, policy):
        entry = PolicyEntry("age", PrivacyTuple("billing", 1, 1, 1))
        assert entry in policy

    def test_equality_is_set_based(self):
        a = HousePolicy(
            [
                ("x", PrivacyTuple("p", 1, 1, 1)),
                ("y", PrivacyTuple("p", 2, 2, 2)),
            ]
        )
        b = HousePolicy(
            [
                ("y", PrivacyTuple("p", 2, 2, 2)),
                ("x", PrivacyTuple("p", 1, 1, 1)),
            ],
            name="other-name",
        )
        assert a == b
        assert hash(a) == hash(b)


class TestDerivation:
    def test_with_entries_appends(self, policy):
        extra = ("height", PrivacyTuple("billing", 1, 1, 1))
        wider = policy.with_entries([extra])
        assert len(wider) == len(policy) + 1
        assert len(policy) == 3  # original untouched

    def test_without_attribute(self, policy):
        narrower = policy.without_attribute("weight")
        assert narrower.attributes() == ("age",)

    def test_widened_shifts_ranks(self, policy):
        wider = policy.widened({Dimension.VISIBILITY: 1})
        for before, after in zip(policy, wider):
            assert after.tuple.visibility == before.tuple.visibility + 1
            assert after.tuple.granularity == before.tuple.granularity
            assert after.tuple.retention == before.tuple.retention

    def test_widened_negative_narrows_and_floors(self, policy):
        narrower = policy.widened({Dimension.GRANULARITY: -10})
        assert all(e.tuple.granularity == 0 for e in narrower)

    def test_widened_scoped_to_attributes(self, policy):
        wider = policy.widened({Dimension.RETENTION: 2}, attributes=["age"])
        for entry in wider:
            original = 1 if entry.attribute == "age" else None
            if entry.attribute == "age":
                assert entry.tuple.retention == 3
        untouched = [e for e in wider if e.attribute == "weight"]
        assert {e.tuple.retention for e in untouched} == {2, 3}

    def test_widened_scoped_to_purposes(self, policy):
        wider = policy.widened({Dimension.VISIBILITY: 1}, purposes=["research"])
        research = [e for e in wider if e.purpose == "research"]
        billing = [e for e in wider if e.purpose == "billing"]
        assert all(e.tuple.visibility == 2 for e in research)
        assert {e.tuple.visibility for e in billing} == {1, 2}

    def test_widened_rejects_purpose_dimension(self, policy):
        with pytest.raises(ValidationError):
            policy.widened({Dimension.PURPOSE: 1})  # type: ignore[dict-item]

    def test_widened_default_name_suffix(self, policy):
        assert policy.widened({Dimension.VISIBILITY: 1}).name == "test-policy widened"

    def test_widened_custom_name(self, policy):
        assert (
            policy.widened({Dimension.VISIBILITY: 1}, name="v2").name == "v2"
        )

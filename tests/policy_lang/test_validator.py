"""Unit tests for semantic document validation."""

from __future__ import annotations

import pytest

from repro.exceptions import PolicyDocumentError
from repro.policy_lang import validate_policy_document, validate_preference_document
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing"])


def _rule(**overrides):
    rule = {
        "attribute": "weight",
        "purpose": "billing",
        "visibility": "house",
        "granularity": "partial",
        "retention": "short-term",
    }
    rule.update(overrides)
    return rule


class TestPolicyValidation:
    def test_valid_document_no_problems(self, taxonomy):
        assert validate_policy_document({"rules": [_rule()]}, taxonomy) == []

    def test_unknown_purpose_reported(self, taxonomy):
        problems = validate_policy_document(
            {"rules": [_rule(purpose="resale")]}, taxonomy
        )
        assert len(problems) == 1
        assert "resale" in problems[0]

    def test_unknown_level_reported(self, taxonomy):
        problems = validate_policy_document(
            {"rules": [_rule(visibility="galaxy")]}, taxonomy
        )
        assert len(problems) == 1
        assert "galaxy" in problems[0]

    def test_multiple_problems_all_reported(self, taxonomy):
        problems = validate_policy_document(
            {
                "rules": [
                    _rule(purpose="resale"),
                    _rule(granularity="atomic", retention=99),
                ]
            },
            taxonomy,
        )
        assert len(problems) == 3

    def test_rule_index_in_context(self, taxonomy):
        problems = validate_policy_document(
            {"rules": [_rule(), _rule(purpose="bad")]}, taxonomy
        )
        assert "rule 1" in problems[0]

    def test_strict_raises(self, taxonomy):
        with pytest.raises(PolicyDocumentError):
            validate_policy_document(
                {"rules": [_rule(purpose="bad")]}, taxonomy, strict=True
            )

    def test_strict_valid_does_not_raise(self, taxonomy):
        assert (
            validate_policy_document({"rules": [_rule()]}, taxonomy, strict=True)
            == []
        )


class TestLegacyStringCompatibility:
    """The validate_* wrappers must reproduce the historical strings."""

    def test_policy_problem_string_is_verbatim_legacy(self, taxonomy):
        problems = validate_policy_document(
            {"name": "x", "rules": [_rule(purpose="resale")]}, taxonomy
        )
        assert problems == ["policy 'x' rule 0: unknown purpose 'resale'"]

    def test_unnamed_policy_uses_default_name(self, taxonomy):
        problems = validate_policy_document(
            {"rules": [_rule(purpose="resale")]}, taxonomy
        )
        assert len(problems) == 1
        assert problems[0].startswith("policy ")
        assert "rule 0: unknown purpose 'resale'" in problems[0]

    def test_preference_problem_string_is_verbatim_legacy(self, taxonomy):
        problems = validate_preference_document(
            {"provider": "alice", "preferences": [_rule(purpose="resale")]},
            taxonomy,
        )
        assert problems == [
            "preferences of 'alice' entry 0: unknown purpose 'resale'"
        ]

    def test_problems_stay_in_per_entry_check_order(self, taxonomy):
        # Legacy behaviour: per entry, purpose before level problems;
        # entries in document order.
        problems = validate_policy_document(
            {
                "name": "x",
                "rules": [
                    _rule(visibility="galaxy"),
                    _rule(purpose="resale", retention="forever"),
                ],
            },
            taxonomy,
        )
        assert [p.split(":")[0] for p in problems] == [
            "policy 'x' rule 0",
            "policy 'x' rule 1",
            "policy 'x' rule 1",
        ]
        assert "galaxy" in problems[0]
        assert "resale" in problems[1]
        assert "forever" in problems[2]

    def test_duplicate_policy_rules_are_not_legacy_problems(self, taxonomy):
        # Duplicates are a lint-only warning (PVL004); the historical
        # validator never reported them and the wrapper must not start to.
        assert (
            validate_policy_document(
                {"rules": [_rule(), _rule()]}, taxonomy
            )
            == []
        )

    def test_duplicate_preferences_are_not_legacy_problems(self, taxonomy):
        doc = {"provider": "alice", "preferences": [_rule(), _rule()]}
        assert validate_preference_document(doc, taxonomy) == []


class TestPreferenceValidation:
    def test_valid_document(self, taxonomy):
        doc = {"provider": "alice", "preferences": [_rule()]}
        assert validate_preference_document(doc, taxonomy) == []

    def test_preference_outside_attributes_provided_reported(self, taxonomy):
        doc = {
            "provider": "alice",
            "attributes_provided": ["age"],
            "preferences": [_rule()],
        }
        problems = validate_preference_document(doc, taxonomy)
        assert any("attributes_provided" in p for p in problems)

    def test_out_of_range_rank_reported(self, taxonomy):
        doc = {"provider": "alice", "preferences": [_rule(retention=42)]}
        problems = validate_preference_document(doc, taxonomy)
        assert len(problems) == 1

    def test_strict_raises(self, taxonomy):
        doc = {"provider": "alice", "preferences": [_rule(purpose="nope")]}
        with pytest.raises(PolicyDocumentError):
            validate_preference_document(doc, taxonomy, strict=True)

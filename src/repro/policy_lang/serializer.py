"""Serialize model objects back into policy-language documents.

Serialisation is the inverse of :mod:`repro.policy_lang.parser`:
``parse_policy(policy_to_dict(p, t), t) == p`` for every policy expressible
in the taxonomy (a property the test suite checks with hypothesis).  When a
taxonomy is supplied, ordered ranks are rendered as level names for
readability; without one, raw integer ranks are emitted.
"""

from __future__ import annotations

import json

from ..core.dimensions import Dimension
from ..core.policy import HousePolicy
from ..core.preferences import ProviderPreferences
from ..core.sensitivity import SensitivityModel
from ..core.tuples import PrivacyTuple
from ..taxonomy.builder import Taxonomy


def _tuple_fields(
    privacy_tuple: PrivacyTuple, taxonomy: Taxonomy | None
) -> dict[str, str | int]:
    """Render one tuple's four dimension values (names when possible)."""
    if taxonomy is None:
        return {
            "purpose": privacy_tuple.purpose,
            "visibility": privacy_tuple.visibility,
            "granularity": privacy_tuple.granularity,
            "retention": privacy_tuple.retention,
        }
    described = taxonomy.describe(privacy_tuple)
    return {
        "purpose": described["purpose"],
        "visibility": described["visibility"],
        "granularity": described["granularity"],
        "retention": described["retention"],
    }


def policy_to_dict(
    policy: HousePolicy, taxonomy: Taxonomy | None = None
) -> dict:
    """Render a :class:`HousePolicy` as a policy document dict."""
    return {
        "name": policy.name,
        "rules": [
            {"attribute": entry.attribute, **_tuple_fields(entry.tuple, taxonomy)}
            for entry in policy
        ],
    }


def policy_to_json(
    policy: HousePolicy, taxonomy: Taxonomy | None = None, *, indent: int = 2
) -> str:
    """Render a :class:`HousePolicy` as a JSON string."""
    return json.dumps(policy_to_dict(policy, taxonomy), indent=indent)


def preferences_to_dict(
    preferences: ProviderPreferences, taxonomy: Taxonomy | None = None
) -> dict:
    """Render a :class:`ProviderPreferences` as a preference document dict."""
    return {
        "provider": preferences.provider_id,
        "attributes_provided": sorted(preferences.attributes_provided),
        "preferences": [
            {"attribute": entry.attribute, **_tuple_fields(entry.tuple, taxonomy)}
            for entry in preferences
        ],
    }


def preferences_to_json(
    preferences: ProviderPreferences,
    taxonomy: Taxonomy | None = None,
    *,
    indent: int = 2,
) -> str:
    """Render a :class:`ProviderPreferences` as a JSON string."""
    return json.dumps(preferences_to_dict(preferences, taxonomy), indent=indent)


def sensitivities_to_dict(model: SensitivityModel) -> dict:
    """Render a :class:`SensitivityModel` as a sensitivity document dict.

    Only explicit weights appear; neutral defaults stay implicit, so the
    round-trip is stable.
    """
    providers: dict = {}
    explicit = model.explicit_providers()
    for provider_id in sorted(explicit, key=repr):
        record = explicit[provider_id]
        providers[provider_id] = {
            attribute: {
                "value": sens.value,
                "visibility": sens.dimension_weight(Dimension.VISIBILITY),
                "granularity": sens.dimension_weight(Dimension.GRANULARITY),
                "retention": sens.dimension_weight(Dimension.RETENTION),
            }
            for attribute, sens in sorted(record.per_attribute.items())
        }
    return {
        "attributes": model.attributes.as_dict(),
        "providers": providers,
    }

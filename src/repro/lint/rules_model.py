"""Cross-document model rules (``PVL101``-``PVL110``).

The paper's central observation is that violations are decidable from the
documents alone: a house policy tuple exceeding a provider preference
tuple (Definition 1) is detectable before any data is collected, and
alpha-PPDB certification (Definition 3) is a static property of the
policy/population pair.  These rules perform that static reasoning.  They
deliberately reuse the dynamic machinery (:func:`violation_indicator`,
:func:`certify_alpha_ppdb`) entry-by-entry, so the linter can never
disagree with a live :class:`~repro.core.engine.ViolationEngine`.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Hashable

from ..core.policy import HousePolicy
from ..core.ppdb import certify_alpha_ppdb
from ..core.violation import violation_indicator
from .diagnostics import SourceLocation, Severity
from .registry import Layer, LintContext, rule


@rule(
    "PVL101",
    title="guaranteed violation",
    severity=Severity.ERROR,
    layer=Layer.MODEL,
    description=(
        "A policy rule exceeds the preferences (explicit or implicit-zero) "
        "of every provider supplying its attribute: deploying it violates "
        "that entire population segment with probability 1."
    ),
)
def check_guaranteed_violation(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.policy is None or ctx.population is None or not len(ctx.population):
        return
    population_ids = set(ctx.population.ids())
    for index, entry in enumerate(ctx.policy.entries):
        suppliers = [
            provider
            for provider in ctx.population
            if entry.attribute in provider.preferences.attributes_provided
        ]
        if not suppliers:
            continue
        single = HousePolicy([entry], name=ctx.policy.name)
        violated: list[Hashable] = [
            provider.provider_id
            for provider in suppliers
            if violation_indicator(provider.preferences, single)
        ]
        if len(violated) != len(suppliers):
            continue
        forces_pw_one = set(violated) == population_ids
        message = (
            f"rule guarantees a violation for all {len(violated)} "
            f"provider(s) supplying {entry.attribute!r} under purpose "
            f"{entry.purpose!r}"
        )
        if forces_pw_one:
            message += "; the policy forces P(W) = 1"
        emit(
            SourceLocation("policy", name=ctx.policy.name, index=index),
            message,
            attribute=entry.attribute,
            purpose=entry.purpose,
            violated_providers=[str(p) for p in violated],
            n_suppliers=len(suppliers),
            forces_violation_probability_one=forces_pw_one,
        )


@rule(
    "PVL102",
    title="shadowed policy rule",
    severity=Severity.WARNING,
    layer=Layer.MODEL,
    description=(
        "A policy rule is dominated by another rule on the same attribute "
        "and purpose: every violation it can cause, the wider rule already "
        "causes, and keeping both double-counts severity."
    ),
)
def check_shadowed_rule(ctx: LintContext, emit: Callable[..., None]) -> None:
    if ctx.policy is None:
        return
    entries = ctx.policy.entries
    for index, entry in enumerate(entries):
        for other_index, other in enumerate(entries):
            if other_index == index:
                continue
            if other.attribute != entry.attribute:
                continue
            if other.tuple == entry.tuple:
                continue
            if other.tuple.dominates(entry.tuple):
                emit(
                    SourceLocation("policy", name=ctx.policy.name, index=index),
                    f"rule is shadowed by rule {other_index}: "
                    f"{other.tuple} dominates {entry.tuple} for "
                    f"{entry.attribute!r}",
                    attribute=entry.attribute,
                    purpose=entry.purpose,
                    shadowed_by=other_index,
                )
                break


@rule(
    "PVL103",
    title="unreachable purpose",
    severity=Severity.INFO,
    layer=Layer.MODEL,
    description=(
        "The taxonomy registers a purpose no policy rule uses; providers "
        "can state preferences for it but nothing can ever violate them."
    ),
)
def check_unreachable_purpose(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.policy_doc is None:
        return
    used = {spec.purpose for spec in ctx.policy_doc.rules}
    for purpose in sorted(ctx.taxonomy.purposes.purposes - used):
        emit(
            SourceLocation("taxonomy", field="purpose"),
            f"purpose {purpose!r} is registered but unused by policy "
            f"{ctx.policy_doc.name!r}",
            purpose=purpose,
            policy=ctx.policy_doc.name,
        )


@rule(
    "PVL104",
    title="zero sensitivity weight",
    severity=Severity.WARNING,
    layer=Layer.MODEL,
    scope="mixed",
    description=(
        "A sensitivity weight of 0 silences every violation on the datum: "
        "Violation_i stays 0 no matter how far the policy exceeds the "
        "preference, so default thresholds can never trip."
    ),
)
def check_zero_sensitivity(ctx: LintContext, emit: Callable[..., None]) -> None:
    for attribute, weight in sorted(ctx.attribute_sensitivities.items()):
        if weight == 0:
            emit(
                SourceLocation("population", field="attribute_sensitivities"),
                f"attribute sensitivity Sigma^{attribute} is 0; violations "
                f"of {attribute!r} carry no severity for any provider",
                attribute=attribute,
                field="attribute_sensitivities",
            )
    if ctx.population is None:
        return
    for provider in ctx.population:
        for attribute, record in sorted(provider.sensitivity.items()):
            zeroed = [
                name
                for name in ("value", "visibility", "granularity", "retention")
                if getattr(record, name) == 0
            ]
            for name in zeroed:
                emit(
                    SourceLocation(
                        "population",
                        name=str(provider.provider_id),
                        field="sensitivities",
                    ),
                    f"sensitivity {name!r} for {attribute!r} is 0; "
                    f"exceedances on that datum contribute no severity",
                    attribute=attribute,
                    field=name,
                )


@rule(
    "PVL105",
    title="dead policy rule",
    severity=Severity.INFO,
    layer=Layer.MODEL,
    description=(
        "A policy rule covers an attribute no provider in the population "
        "supplies; it cannot affect any outcome (collecting nothing "
        "violates nobody)."
    ),
)
def check_dead_policy_rule(ctx: LintContext, emit: Callable[..., None]) -> None:
    if ctx.policy is None or ctx.population is None:
        return
    supplied: set[str] = set()
    for provider in ctx.population:
        supplied |= provider.preferences.attributes_provided
    empty = not len(ctx.population)
    reported: set[str] = set()
    for index, entry in enumerate(ctx.policy.entries):
        if entry.attribute in supplied or entry.attribute in reported:
            continue
        reported.add(entry.attribute)
        reason = (
            "the population is empty"
            if empty
            else "no provider supplies it"
        )
        emit(
            SourceLocation("policy", name=ctx.policy.name, index=index),
            f"rule covers attribute {entry.attribute!r} but {reason}; "
            f"it cannot affect any outcome",
            attribute=entry.attribute,
            population_empty=empty,
        )


@rule(
    "PVL106",
    title="inert preference",
    severity=Severity.INFO,
    layer=Layer.MODEL,
    scope="provider",
    description=(
        "A provider states a preference for an attribute the policy never "
        "collects; the preference can never be violated (nor honoured)."
    ),
)
def check_inert_preference(ctx: LintContext, emit: Callable[..., None]) -> None:
    if ctx.policy is None:
        return
    covered = set(ctx.policy.attributes())
    for location, spec, _document in ctx.iter_preference_specs():
        if spec.attribute not in covered:
            emit(
                SourceLocation(
                    "population",
                    name=location.name,
                    index=location.index,
                    field="attribute",
                ),
                f"preference for {spec.attribute!r} is inert: the policy "
                f"has no rule for that attribute",
                attribute=spec.attribute,
            )


@rule(
    "PVL107",
    title="dominated preference",
    severity=Severity.WARNING,
    layer=Layer.MODEL,
    scope="provider",
    description=(
        "A provider holds two preferences for the same attribute and "
        "purpose where one dominates the other; the looser tuple never "
        "changes w_i but double-counts severity when both are exceeded."
    ),
)
def check_dominated_preference(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    for document in ctx.preference_docs:
        specs = document.preferences
        for index, spec in enumerate(specs):
            for other_index, other in enumerate(specs):
                if other_index == index or other == spec:
                    continue
                if (other.attribute, other.purpose) != (
                    spec.attribute,
                    spec.purpose,
                ):
                    continue
                if _spec_dominates(ctx, spec, other):
                    emit(
                        SourceLocation(
                            "population",
                            name=str(document.provider),
                            index=index,
                        ),
                        f"preference dominates entry {other_index} for "
                        f"{spec.attribute!r} @ {spec.purpose!r}; the "
                        f"stricter entry alone decides w_i",
                        attribute=spec.attribute,
                        purpose=spec.purpose,
                        dominates=other_index,
                    )
                    break


def _spec_dominates(ctx: LintContext, spec, other) -> bool:
    """Whether *spec*'s tuple dominates *other*'s, resolving level names."""
    try:
        left = ctx.taxonomy.tuple(
            spec.purpose, spec.visibility, spec.granularity, spec.retention
        )
        right = ctx.taxonomy.tuple(
            other.purpose, other.visibility, other.granularity, other.retention
        )
    except Exception:
        return False  # unresolvable specs are PVL001/PVL002's business
    return left != right and left.dominates(right)


@rule(
    "PVL110",
    title="static alpha-PPDB failure",
    severity=Severity.ERROR,
    layer=Layer.MODEL,
    description=(
        "Definition 3 evaluated statically: the fraction of providers the "
        "policy violates already exceeds alpha, so the deployment cannot "
        "be an alpha-PPDB.  The witness segment is attached."
    ),
)
def check_static_alpha_ppdb(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if (
        ctx.config.alpha is None
        or ctx.policy is None
        or ctx.population is None
    ):
        return
    certificate = certify_alpha_ppdb(ctx.population, ctx.policy, ctx.config.alpha)
    if certificate.satisfied:
        return
    emit(
        SourceLocation("policy", name=ctx.policy.name),
        f"alpha-PPDB fails statically: P(W) = "
        f"{certificate.violation_probability:.4f} > alpha = "
        f"{certificate.alpha:g} "
        f"({len(certificate.violated_providers)}/{certificate.n_providers} "
        f"providers violated)",
        alpha=certificate.alpha,
        violation_probability=certificate.violation_probability,
        violated_providers=[str(p) for p in certificate.violated_providers],
        n_providers=certificate.n_providers,
    )
